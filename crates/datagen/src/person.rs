//! Person generation (first pass of Figure 2.2).
//!
//! Each person is generated from an independent derived PRNG stream, so
//! the pass parallelises trivially without affecting determinism.

use snb_core::datetime::{Date, DateTime, MILLIS_PER_DAY};
use snb_core::model::{Gender, OrganisationId, PersonId, TagId};
use snb_core::rng::Rng;

use crate::dictionaries::{
    StaticWorld, COUNTRIES, EMAIL_PROVIDERS, FEMALE_NAMES, MALE_NAMES, SURNAMES,
};
use crate::graph::RawPerson;
use crate::GeneratorConfig;

/// RNG stream tags for the person pass.
const TAG_PERSON: u64 = 1;

/// Generates all persons.
pub fn generate_persons(config: &GeneratorConfig, world: &StaticWorld) -> Vec<RawPerson> {
    (0..config.persons).map(|i| generate_person(config, world, i)).collect()
}

/// Iterator over persons in fixed-size chunks.
///
/// Every person is an independent function of `(seed, index)`, so chunked
/// generation is bit-identical to [`generate_persons`] while letting an
/// ingester (e.g. `snb-store`'s streaming builder) consume one chunk at
/// a time instead of materialising the whole vector.
pub fn person_chunks<'a>(
    config: &'a GeneratorConfig,
    world: &'a StaticWorld,
    chunk: usize,
) -> impl Iterator<Item = Vec<RawPerson>> + 'a {
    let chunk = chunk.max(1) as u64;
    let n = config.persons;
    (0..n.div_ceil(chunk)).map(move |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        (lo..hi).map(|i| generate_person(config, world, i)).collect()
    })
}

/// Generates person `i` deterministically from `(seed, i)`.
pub fn generate_person(config: &GeneratorConfig, world: &StaticWorld, i: u64) -> RawPerson {
    let mut rng = Rng::derive(config.seed, i, TAG_PERSON);
    let id = PersonId(i);

    let country = world.country_sampler.sample(&mut rng);
    let spec = &COUNTRIES[country];
    let city = *rng.pick(&world.city_places[country]);

    let gender = if rng.chance(0.5) { Gender::Male } else { Gender::Female };
    let (pool, ranks) = match gender {
        Gender::Male => (MALE_NAMES, &world.male_name_ranks[country]),
        Gender::Female => (FEMALE_NAMES, &world.female_name_ranks[country]),
    };
    let first_name = pool[ranks[world.name_rank_sampler.sample(&mut rng)] as usize];
    let last_name = SURNAMES
        [world.surname_ranks[country][world.name_rank_sampler.sample(&mut rng)] as usize];

    // Birthday: uniform over 1980-01-01 .. 1995-12-31.
    let bday_lo = Date::from_ymd(1980, 1, 1).0;
    let bday_hi = Date::from_ymd(1995, 12, 31).0;
    let birthday = Date(rng.range_i64(bday_lo as i64, bday_hi as i64) as i32);

    // Join date: skewed toward the start of the window so most persons
    // can accumulate activity; leave the last 5% of the window free so
    // dependent activity stays representable.
    let window_days = (config.end.0 - config.start.0) as i64;
    let join_frac = rng.next_f64().powf(2.2); // front-loaded
    let join_day = (join_frac * (window_days as f64 * 0.95)) as i64;
    let creation_date = DateTime(
        config.start.at_midnight().0
            + join_day * MILLIS_PER_DAY
            + rng.range_i64(0, MILLIS_PER_DAY - 1),
    );

    let location_ip = random_ip(spec.ip_prefix, &mut rng);
    let browser = world.browser_sampler.sample(&mut rng) as u8;

    // Languages: the country's languages, plus English with probability
    // 0.4 if not already spoken.
    let mut languages: Vec<u8> = spec
        .languages
        .iter()
        .map(|l| world.languages.iter().position(|x| x == l).expect("language in dictionary") as u8)
        .collect();
    let en = world.languages.iter().position(|&x| x == "en").expect("en in dictionary") as u8;
    if !languages.contains(&en) && rng.chance(0.4) {
        languages.push(en);
    }

    // Emails: 1..=3 addresses over distinct providers.
    let email_count = 1 + rng.geometric(0.6).min(2) as usize;
    let providers = rng.sample_indices(EMAIL_PROVIDERS.len(), email_count);
    let emails: Vec<String> = providers
        .iter()
        .map(|&p| {
            format!(
                "{}.{}{}@{}",
                first_name.to_lowercase(),
                last_name.to_lowercase(),
                i,
                EMAIL_PROVIDERS[p]
            )
        })
        .collect();

    // Interests: country-correlated tags, Zipf-many.
    let interest_count = 1 + rng.geometric(0.22).min(23) as usize;
    let mut interests: Vec<TagId> = Vec::with_capacity(interest_count);
    let mut guard = 0;
    while interests.len() < interest_count && guard < interest_count * 10 {
        let t = world.sample_tag_for_country(country, &mut rng);
        if !interests.contains(&t) {
            interests.push(t);
        }
        guard += 1;
    }

    // University: 80% studied in their home country; class year is
    // birthday + 18 .. birthday + 24.
    let study_at = if rng.chance(0.8) && !world.universities_by_country[country].is_empty() {
        let u = *rng.pick(&world.universities_by_country[country]);
        let class_year = birthday.year() + rng.range_i64(18, 24) as i32;
        Some((OrganisationId(u as u64), class_year))
    } else {
        None
    };

    // Work: 0..=2 companies, mostly in the home country.
    let job_count = rng.geometric(0.55).min(2) as usize;
    let mut work_at = Vec::with_capacity(job_count);
    for _ in 0..job_count {
        let work_country = if rng.chance(0.9) { country } else { rng.index(COUNTRIES.len()) };
        if world.companies_by_country[work_country].is_empty() {
            continue;
        }
        let c = *rng.pick(&world.companies_by_country[work_country]);
        let cid = OrganisationId((world.universities.len() + c) as u64);
        if work_at.iter().any(|&(existing, _)| existing == cid) {
            continue;
        }
        let work_from = birthday.year() + rng.range_i64(20, 30) as i32;
        work_at.push((cid, work_from));
    }

    RawPerson {
        id,
        first_name,
        last_name,
        gender,
        birthday,
        creation_date,
        location_ip,
        browser,
        city,
        country,
        languages,
        emails,
        interests,
        study_at,
        work_at,
    }
}

/// An IPv4 address inside a country's synthetic `/8` block.
fn random_ip(prefix: u8, rng: &mut Rng) -> String {
    format!(
        "{}.{}.{}.{}",
        prefix,
        rng.next_bounded(256),
        rng.next_bounded(256),
        rng.next_bounded(254) + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::scale::ScaleFactor;

    fn small_world() -> (GeneratorConfig, StaticWorld) {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 300;
        let w = StaticWorld::build(c.seed);
        (c, w)
    }

    #[test]
    fn persons_have_sequential_ids() {
        let (c, w) = small_world();
        let ps = generate_persons(&c, &w);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.id, PersonId(i as u64));
        }
    }

    #[test]
    fn attributes_are_in_range() {
        let (c, w) = small_world();
        for p in generate_persons(&c, &w) {
            assert!(!p.first_name.is_empty() && !p.last_name.is_empty());
            assert!((1980..=1995).contains(&p.birthday.year()));
            assert!(p.creation_date >= c.start.at_midnight());
            assert!(p.creation_date < c.end.at_midnight());
            assert!(!p.emails.is_empty() && p.emails.len() <= 3);
            assert!(!p.languages.is_empty());
            assert!(!p.interests.is_empty());
            assert!(p.country < COUNTRIES.len());
            // IP prefix matches the home country block.
            let prefix: u8 = p.location_ip.split('.').next().unwrap().parse().unwrap();
            assert_eq!(prefix, COUNTRIES[p.country].ip_prefix);
            // Class year is plausible.
            if let Some((_, y)) = p.study_at {
                assert!((p.birthday.year() + 18..=p.birthday.year() + 24).contains(&y));
            }
            // No duplicate interests.
            let mut ints = p.interests.clone();
            ints.sort_unstable();
            ints.dedup();
            assert_eq!(ints.len(), p.interests.len());
        }
    }

    #[test]
    fn country_distribution_is_skewed() {
        let (mut c, w) = small_world();
        c.persons = 2000;
        let ps = generate_persons(&c, &w);
        let mut counts = vec![0usize; COUNTRIES.len()];
        for p in &ps {
            counts[p.country] += 1;
        }
        // China + India together should clearly dominate the tail.
        assert!(counts[0] + counts[1] > counts[COUNTRIES.len() - 1] * 10);
    }

    #[test]
    fn names_correlate_with_country() {
        // Persons of the same country share top-ranked names more often
        // than persons of different countries — the correlation the
        // dictionary model exists to produce.
        let (mut c, w) = small_world();
        c.persons = 3000;
        let ps = generate_persons(&c, &w);
        let top_name = |country: usize| -> String {
            use std::collections::HashMap;
            let mut freq: HashMap<&str, usize> = HashMap::new();
            for p in ps.iter().filter(|p| p.country == country) {
                *freq.entry(p.first_name).or_default() += 1;
            }
            freq.into_iter().max_by_key(|&(_, c)| c).map(|(n, _)| n.to_string()).unwrap_or_default()
        };
        // Compare the two most populous countries: their modal names
        // should differ (independent rank permutations).
        let a = top_name(0);
        let b = top_name(1);
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "both countries share modal name {a}");
    }
}
