//! CSV serializers (spec §2.3.4.2).
//!
//! Four variants are supported, matching spec Tables 2.13–2.16:
//!
//! * **CsvBasic** — every entity, relation and multi-valued attribute in
//!   its own file;
//! * **CsvMergeForeign** — 1-to-1 / N-to-1 relations merged into the
//!   entity files as foreign-key columns;
//! * **CsvComposite** — like CsvBasic but multi-valued attributes
//!   (`Person.email`, `Person.speaks`) stored as `;`-separated composite
//!   values inside `person_*.csv`;
//! * **CsvCompositeMergeForeign** — both of the above.
//!
//! Files use `|` as the field separator and `;` for composites, one
//! header line, and are split into `static/` and `dynamic/`
//! subdirectories of the output root — all per spec. Only records
//! created strictly before the bulk/stream cut are serialized; the tail
//! belongs to the update streams (see [`crate::stream`]).

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use snb_core::datetime::DateTime;
use snb_core::model::MessageKind;
use snb_core::SnbResult;

use crate::dictionaries::{StaticWorld, BROWSERS, COUNTRIES, TAGS, TAG_CLASSES};
use crate::graph::RawGraph;

/// The serializer variant to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsvVariant {
    /// Spec Table 2.13 (33 files).
    Basic,
    /// Spec Table 2.14 (20 files).
    MergeForeign,
    /// Spec Table 2.15 (31 files).
    Composite,
    /// Spec Table 2.16 (18 files).
    CompositeMergeForeign,
}

impl CsvVariant {
    fn merge_foreign(self) -> bool {
        matches!(self, CsvVariant::MergeForeign | CsvVariant::CompositeMergeForeign)
    }

    fn composite(self) -> bool {
        matches!(self, CsvVariant::Composite | CsvVariant::CompositeMergeForeign)
    }
}

struct Csv {
    w: BufWriter<File>,
}

impl Csv {
    fn create(dir: &Path, name: &str, header: &str) -> SnbResult<Csv> {
        let mut w = BufWriter::new(File::create(dir.join(name))?);
        writeln!(w, "{header}")?;
        Ok(Csv { w })
    }

    fn row(&mut self, fields: &[&str]) -> SnbResult<()> {
        writeln!(self.w, "{}", fields.join("|"))?;
        Ok(())
    }
}

/// Serializes the bulk-load dataset (records before `cut`) under
/// `root/social_network/{static,dynamic}`. Returns the list of files
/// written (relative paths), so callers/tests can check the layout
/// against the spec's file tables.
pub fn serialize(
    graph: &RawGraph,
    world: &StaticWorld,
    variant: CsvVariant,
    cut: DateTime,
    root: &Path,
) -> SnbResult<Vec<String>> {
    let base = root.join("social_network");
    let static_dir = base.join("static");
    let dynamic_dir = base.join("dynamic");
    fs::create_dir_all(&static_dir)?;
    fs::create_dir_all(&dynamic_dir)?;
    let mut files = Vec::new();
    let mut track = |sub: &str, name: &str| files.push(format!("{sub}/{name}"));

    write_static(world, variant, &static_dir, &mut track)?;
    write_dynamic(graph, world, variant, cut, &dynamic_dir, &mut track)?;
    Ok(files)
}

fn write_static(
    world: &StaticWorld,
    variant: CsvVariant,
    dir: &Path,
    track: &mut impl FnMut(&str, &str),
) -> SnbResult<()> {
    // organisation_0_0.csv
    let uni_count = world.universities.len();
    if variant.merge_foreign() {
        let mut f = Csv::create(dir, "organisation_0_0.csv", "id|type|name|url|place")?;
        for (i, u) in world.universities.iter().enumerate() {
            f.row(&[
                &i.to_string(),
                "university",
                &u.name,
                &format!("http://dbpedia.org/resource/{}", u.name),
                &u.city.0.to_string(),
            ])?;
        }
        for (i, (name, country)) in world.companies.iter().enumerate() {
            f.row(&[
                &(uni_count + i).to_string(),
                "company",
                name,
                &format!("http://dbpedia.org/resource/{name}"),
                &world.country_place[*country].0.to_string(),
            ])?;
        }
        track("static", "organisation_0_0.csv");
    } else {
        let mut f = Csv::create(dir, "organisation_0_0.csv", "id|type|name|url")?;
        let mut loc =
            Csv::create(dir, "organisation_isLocatedIn_place_0_0.csv", "Organisation.id|Place.id")?;
        for (i, u) in world.universities.iter().enumerate() {
            f.row(&[
                &i.to_string(),
                "university",
                &u.name,
                &format!("http://dbpedia.org/resource/{}", u.name),
            ])?;
            loc.row(&[&i.to_string(), &u.city.0.to_string()])?;
        }
        for (i, (name, country)) in world.companies.iter().enumerate() {
            let id = uni_count + i;
            f.row(&[
                &id.to_string(),
                "company",
                name,
                &format!("http://dbpedia.org/resource/{name}"),
            ])?;
            loc.row(&[&id.to_string(), &world.country_place[*country].0.to_string()])?;
        }
        track("static", "organisation_0_0.csv");
        track("static", "organisation_isLocatedIn_place_0_0.csv");
    }

    // place_0_0.csv (+ isPartOf)
    {
        let header =
            if variant.merge_foreign() { "id|name|url|type|isPartOf" } else { "id|name|url|type" };
        let mut f = Csv::create(dir, "place_0_0.csv", header)?;
        let mut part = if variant.merge_foreign() {
            None
        } else {
            Some(Csv::create(dir, "place_isPartOf_place_0_0.csv", "Place.id|Place.id")?)
        };
        for (pid, name) in world.place_names.iter().enumerate() {
            let kind = if pid < world.continent_place.len() {
                "continent"
            } else if pid < world.continent_place.len() + world.country_place.len() {
                "country"
            } else {
                "city"
            };
            let parent: Option<u64> = if kind == "country" {
                let ci = pid - world.continent_place.len();
                Some(world.continent_place[COUNTRIES[ci].continent].0)
            } else if kind == "city" {
                world
                    .country_of_city(snb_core::model::PlaceId(pid as u64))
                    .map(|ci| world.country_place[ci].0)
            } else {
                None
            };
            let url = format!("http://dbpedia.org/resource/{name}");
            if variant.merge_foreign() {
                let parent_s = parent.map(|p| p.to_string()).unwrap_or_default();
                f.row(&[&pid.to_string(), name, &url, kind, &parent_s])?;
            } else {
                f.row(&[&pid.to_string(), name, &url, kind])?;
                if let (Some(part), Some(parent)) = (part.as_mut(), parent) {
                    part.row(&[&pid.to_string(), &parent.to_string()])?;
                }
            }
        }
        track("static", "place_0_0.csv");
        if !variant.merge_foreign() {
            track("static", "place_isPartOf_place_0_0.csv");
        }
    }

    // tag_0_0.csv (+ hasType)
    {
        let header = if variant.merge_foreign() { "id|name|url|hasType" } else { "id|name|url" };
        let mut f = Csv::create(dir, "tag_0_0.csv", header)?;
        let mut ht = if variant.merge_foreign() {
            None
        } else {
            Some(Csv::create(dir, "tag_hasType_tagclass_0_0.csv", "Tag.id|TagClass.id")?)
        };
        for (ti, &(name, class)) in TAGS.iter().enumerate() {
            let url = format!("http://dbpedia.org/resource/{name}");
            if variant.merge_foreign() {
                f.row(&[&ti.to_string(), name, &url, &class.to_string()])?;
            } else {
                f.row(&[&ti.to_string(), name, &url])?;
                ht.as_mut().unwrap().row(&[&ti.to_string(), &class.to_string()])?;
            }
        }
        track("static", "tag_0_0.csv");
        if !variant.merge_foreign() {
            track("static", "tag_hasType_tagclass_0_0.csv");
        }
    }

    // tagclass_0_0.csv (+ isSubclassOf)
    {
        let header =
            if variant.merge_foreign() { "id|name|url|isSubclassOf" } else { "id|name|url" };
        let mut f = Csv::create(dir, "tagclass_0_0.csv", header)?;
        let mut sub = if variant.merge_foreign() {
            None
        } else {
            Some(Csv::create(
                dir,
                "tagclass_isSubclassOf_tagclass_0_0.csv",
                "TagClass.id|TagClass.id",
            )?)
        };
        for (ci, &(name, parent)) in TAG_CLASSES.iter().enumerate() {
            let url = format!("http://dbpedia.org/ontology/{name}");
            if variant.merge_foreign() {
                let p = if ci == 0 { String::new() } else { parent.to_string() };
                f.row(&[&ci.to_string(), name, &url, &p])?;
            } else {
                f.row(&[&ci.to_string(), name, &url])?;
                if ci != 0 {
                    sub.as_mut().unwrap().row(&[&ci.to_string(), &parent.to_string()])?;
                }
            }
        }
        track("static", "tagclass_0_0.csv");
        if !variant.merge_foreign() {
            track("static", "tagclass_isSubclassOf_tagclass_0_0.csv");
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn write_dynamic(
    graph: &RawGraph,
    world: &StaticWorld,
    variant: CsvVariant,
    cut: DateTime,
    dir: &Path,
    track: &mut impl FnMut(&str, &str),
) -> SnbResult<()> {
    let in_bulk = |t: DateTime| t < cut;

    // --- person files ---
    {
        let mut header =
            "id|firstName|lastName|gender|birthday|creationDate|locationIP|browserUsed".to_string();
        if variant.merge_foreign() {
            header.push_str("|place");
        }
        if variant.composite() {
            header.push_str("|language|email");
        }
        let mut f = Csv::create(dir, "person_0_0.csv", &header)?;
        let mut located = if variant.merge_foreign() {
            None
        } else {
            Some(Csv::create(dir, "person_isLocatedIn_place_0_0.csv", "Person.id|Place.id")?)
        };
        let (mut speaks, mut email) = if variant.composite() {
            (None, None)
        } else {
            (
                Some(Csv::create(dir, "person_speaks_language_0_0.csv", "Person.id|language")?),
                Some(Csv::create(dir, "person_email_emailaddress_0_0.csv", "Person.id|email")?),
            )
        };
        let mut interest = Csv::create(dir, "person_hasInterest_tag_0_0.csv", "Person.id|Tag.id")?;
        let mut study = Csv::create(
            dir,
            "person_studyAt_organisation_0_0.csv",
            "Person.id|Organisation.id|classYear",
        )?;
        let mut work = Csv::create(
            dir,
            "person_workAt_organisation_0_0.csv",
            "Person.id|Organisation.id|workFrom",
        )?;
        for p in graph.persons.iter().filter(|p| in_bulk(p.creation_date)) {
            let id = p.id.0.to_string();
            let langs: Vec<&str> =
                p.languages.iter().map(|&l| world.languages[l as usize]).collect();
            let mut fields: Vec<String> = vec![
                id.clone(),
                p.first_name.to_string(),
                p.last_name.to_string(),
                p.gender.as_str().to_string(),
                p.birthday.to_string(),
                p.creation_date.to_string(),
                p.location_ip.clone(),
                BROWSERS[p.browser as usize].0.to_string(),
            ];
            if variant.merge_foreign() {
                fields.push(p.city.0.to_string());
            }
            if variant.composite() {
                fields.push(langs.join(";"));
                fields.push(p.emails.join(";"));
            }
            let refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
            f.row(&refs)?;
            if let Some(located) = located.as_mut() {
                located.row(&[&id, &p.city.0.to_string()])?;
            }
            if let Some(speaks) = speaks.as_mut() {
                for l in &langs {
                    speaks.row(&[&id, l])?;
                }
            }
            if let Some(email) = email.as_mut() {
                for e in &p.emails {
                    email.row(&[&id, e])?;
                }
            }
            for t in &p.interests {
                interest.row(&[&id, &t.0.to_string()])?;
            }
            if let Some((org, year)) = p.study_at {
                study.row(&[&id, &org.0.to_string(), &year.to_string()])?;
            }
            for (org, from) in &p.work_at {
                work.row(&[&id, &org.0.to_string(), &from.to_string()])?;
            }
        }
        track("dynamic", "person_0_0.csv");
        if !variant.merge_foreign() {
            track("dynamic", "person_isLocatedIn_place_0_0.csv");
        }
        if !variant.composite() {
            track("dynamic", "person_speaks_language_0_0.csv");
            track("dynamic", "person_email_emailaddress_0_0.csv");
        }
        track("dynamic", "person_hasInterest_tag_0_0.csv");
        track("dynamic", "person_studyAt_organisation_0_0.csv");
        track("dynamic", "person_workAt_organisation_0_0.csv");
    }

    // person_knows_person
    {
        let mut f =
            Csv::create(dir, "person_knows_person_0_0.csv", "Person.id|Person.id|creationDate")?;
        for k in graph.knows.iter().filter(|k| in_bulk(k.creation_date)) {
            f.row(&[&k.a.0.to_string(), &k.b.0.to_string(), &k.creation_date.to_string()])?;
        }
        track("dynamic", "person_knows_person_0_0.csv");
    }

    // --- forum files ---
    {
        let header = if variant.merge_foreign() {
            "id|title|creationDate|moderator"
        } else {
            "id|title|creationDate"
        };
        let mut f = Csv::create(dir, "forum_0_0.csv", header)?;
        let mut moderator = if variant.merge_foreign() {
            None
        } else {
            Some(Csv::create(dir, "forum_hasModerator_person_0_0.csv", "Forum.id|Person.id")?)
        };
        let mut member =
            Csv::create(dir, "forum_hasMember_person_0_0.csv", "Forum.id|Person.id|joinDate")?;
        let mut ftag = Csv::create(dir, "forum_hasTag_tag_0_0.csv", "Forum.id|Tag.id")?;
        for fo in graph.forums.iter().filter(|f| in_bulk(f.creation_date)) {
            let id = fo.id.0.to_string();
            if variant.merge_foreign() {
                f.row(&[
                    &id,
                    &fo.title,
                    &fo.creation_date.to_string(),
                    &fo.moderator.0.to_string(),
                ])?;
            } else {
                f.row(&[&id, &fo.title, &fo.creation_date.to_string()])?;
                moderator.as_mut().unwrap().row(&[&id, &fo.moderator.0.to_string()])?;
            }
            for t in &fo.tags {
                ftag.row(&[&id, &t.0.to_string()])?;
            }
        }
        for m in graph.memberships.iter().filter(|m| in_bulk(m.join_date)) {
            member.row(&[
                &m.forum.0.to_string(),
                &m.person.0.to_string(),
                &m.join_date.to_string(),
            ])?;
        }
        track("dynamic", "forum_0_0.csv");
        if !variant.merge_foreign() {
            track("dynamic", "forum_hasModerator_person_0_0.csv");
        }
        track("dynamic", "forum_hasMember_person_0_0.csv");
        track("dynamic", "forum_hasTag_tag_0_0.csv");
    }

    // --- post files ---
    {
        let mut header =
            "id|imageFile|creationDate|locationIP|browserUsed|language|content|length".to_string();
        if variant.merge_foreign() {
            header.push_str("|creator|Forum.id|place");
        }
        let mut f = Csv::create(dir, "post_0_0.csv", &header)?;
        let (mut creator, mut container, mut located) = if variant.merge_foreign() {
            (None, None, None)
        } else {
            (
                Some(Csv::create(dir, "post_hasCreator_person_0_0.csv", "Post.id|Person.id")?),
                Some(Csv::create(dir, "forum_containerOf_post_0_0.csv", "Forum.id|Post.id")?),
                Some(Csv::create(dir, "post_isLocatedIn_place_0_0.csv", "Post.id|Place.id")?),
            )
        };
        let mut ptag = Csv::create(dir, "post_hasTag_tag_0_0.csv", "Post.id|Tag.id")?;
        for m in graph
            .messages
            .iter()
            .filter(|m| m.kind == MessageKind::Post && in_bulk(m.creation_date))
        {
            let id = m.id.0.to_string();
            let lang =
                m.language.map(|l| world.languages[l as usize].to_string()).unwrap_or_default();
            let image = m.image_file.clone().unwrap_or_default();
            let mut fields: Vec<String> = vec![
                id.clone(),
                image,
                m.creation_date.to_string(),
                m.location_ip.clone(),
                BROWSERS[m.browser as usize].0.to_string(),
                lang,
                m.content.clone(),
                m.length.to_string(),
            ];
            if variant.merge_foreign() {
                fields.push(m.creator.0.to_string());
                fields.push(m.forum.expect("post has forum").0.to_string());
                fields.push(m.country.0.to_string());
            }
            let refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
            f.row(&refs)?;
            if let Some(creator) = creator.as_mut() {
                creator.row(&[&id, &m.creator.0.to_string()])?;
            }
            if let Some(container) = container.as_mut() {
                container.row(&[&m.forum.expect("post has forum").0.to_string(), &id])?;
            }
            if let Some(located) = located.as_mut() {
                located.row(&[&id, &m.country.0.to_string()])?;
            }
            for t in &m.tags {
                ptag.row(&[&id, &t.0.to_string()])?;
            }
        }
        track("dynamic", "post_0_0.csv");
        if !variant.merge_foreign() {
            track("dynamic", "post_hasCreator_person_0_0.csv");
            track("dynamic", "forum_containerOf_post_0_0.csv");
            track("dynamic", "post_isLocatedIn_place_0_0.csv");
        }
        track("dynamic", "post_hasTag_tag_0_0.csv");
    }

    // --- comment files ---
    {
        let mut header = "id|creationDate|locationIP|browserUsed|content|length".to_string();
        if variant.merge_foreign() {
            header.push_str("|creator|place|replyOfPost|replyOfComment");
        }
        let mut f = Csv::create(dir, "comment_0_0.csv", &header)?;
        let (mut creator, mut located, mut reply_post, mut reply_comment) = if variant
            .merge_foreign()
        {
            (None, None, None, None)
        } else {
            (
                Some(Csv::create(
                    dir,
                    "comment_hasCreator_person_0_0.csv",
                    "Comment.id|Person.id",
                )?),
                Some(Csv::create(dir, "comment_isLocatedIn_place_0_0.csv", "Comment.id|Place.id")?),
                Some(Csv::create(dir, "comment_replyOf_post_0_0.csv", "Comment.id|Post.id")?),
                Some(Csv::create(dir, "comment_replyOf_comment_0_0.csv", "Comment.id|Comment.id")?),
            )
        };
        let mut ctag = Csv::create(dir, "comment_hasTag_tag_0_0.csv", "Comment.id|Tag.id")?;
        for m in graph
            .messages
            .iter()
            .filter(|m| m.kind == MessageKind::Comment && in_bulk(m.creation_date))
        {
            let id = m.id.0.to_string();
            let parent = m.reply_of.expect("comment has parent");
            let parent_is_post = graph.messages[parent.0 as usize].kind == MessageKind::Post;
            let mut fields: Vec<String> = vec![
                id.clone(),
                m.creation_date.to_string(),
                m.location_ip.clone(),
                BROWSERS[m.browser as usize].0.to_string(),
                m.content.clone(),
                m.length.to_string(),
            ];
            if variant.merge_foreign() {
                fields.push(m.creator.0.to_string());
                fields.push(m.country.0.to_string());
                if parent_is_post {
                    fields.push(parent.0.to_string());
                    fields.push(String::new());
                } else {
                    fields.push(String::new());
                    fields.push(parent.0.to_string());
                }
            }
            let refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
            f.row(&refs)?;
            if let Some(creator) = creator.as_mut() {
                creator.row(&[&id, &m.creator.0.to_string()])?;
            }
            if let Some(located) = located.as_mut() {
                located.row(&[&id, &m.country.0.to_string()])?;
            }
            if parent_is_post {
                if let Some(rp) = reply_post.as_mut() {
                    rp.row(&[&id, &parent.0.to_string()])?;
                }
            } else if let Some(rc) = reply_comment.as_mut() {
                rc.row(&[&id, &parent.0.to_string()])?;
            }
            for t in &m.tags {
                ctag.row(&[&id, &t.0.to_string()])?;
            }
        }
        track("dynamic", "comment_0_0.csv");
        if !variant.merge_foreign() {
            track("dynamic", "comment_hasCreator_person_0_0.csv");
            track("dynamic", "comment_isLocatedIn_place_0_0.csv");
            track("dynamic", "comment_replyOf_post_0_0.csv");
            track("dynamic", "comment_replyOf_comment_0_0.csv");
        }
        track("dynamic", "comment_hasTag_tag_0_0.csv");
    }

    // --- likes ---
    {
        let mut post_likes =
            Csv::create(dir, "person_likes_post_0_0.csv", "Person.id|Post.id|creationDate")?;
        let mut comment_likes =
            Csv::create(dir, "person_likes_comment_0_0.csv", "Person.id|Comment.id|creationDate")?;
        for l in graph.likes.iter().filter(|l| in_bulk(l.creation_date)) {
            let row =
                [l.person.0.to_string(), l.message.0.to_string(), l.creation_date.to_string()];
            let refs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
            match graph.messages[l.message.0 as usize].kind {
                MessageKind::Post => post_likes.row(&refs)?,
                MessageKind::Comment => comment_likes.row(&refs)?,
            }
        }
        track("dynamic", "person_likes_post_0_0.csv");
        track("dynamic", "person_likes_comment_0_0.csv");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratorConfig;
    use snb_core::scale::ScaleFactor;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("snb_ser_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn small() -> (GeneratorConfig, RawGraph, StaticWorld) {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 50;
        let w = StaticWorld::build(c.seed);
        let g = crate::generate(&c);
        (c, g, w)
    }

    #[test]
    fn basic_variant_writes_spec_files() {
        let (c, g, w) = small();
        let dir = tmpdir("basic");
        let files = serialize(&g, &w, CsvVariant::Basic, c.stream_cut(), &dir).unwrap();
        // Spec Table 2.13 lists 33 files.
        assert_eq!(files.len(), 33, "files: {files:?}");
        for f in &files {
            let p = dir.join("social_network").join(f);
            assert!(p.exists(), "missing {f}");
            let content = fs::read_to_string(&p).unwrap();
            assert!(content.lines().count() >= 1, "empty file {f}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_foreign_variant_writes_20_files() {
        let (c, g, w) = small();
        let dir = tmpdir("mf");
        let files = serialize(&g, &w, CsvVariant::MergeForeign, c.stream_cut(), &dir).unwrap();
        assert_eq!(files.len(), 20, "files: {files:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn composite_variants_file_counts() {
        let (c, g, w) = small();
        let dir = tmpdir("comp");
        let files = serialize(&g, &w, CsvVariant::Composite, c.stream_cut(), &dir).unwrap();
        assert_eq!(files.len(), 31, "files: {files:?}");
        let files =
            serialize(&g, &w, CsvVariant::CompositeMergeForeign, c.stream_cut(), &dir).unwrap();
        assert_eq!(files.len(), 18, "files: {files:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bulk_cut_excludes_tail_records() {
        let (c, g, w) = small();
        let cut = c.stream_cut();
        let dir = tmpdir("cut");
        serialize(&g, &w, CsvVariant::Basic, cut, &dir).unwrap();
        let person_csv =
            fs::read_to_string(dir.join("social_network/dynamic/person_0_0.csv")).unwrap();
        let rows = person_csv.lines().count() - 1;
        let expected = g.persons.iter().filter(|p| p.creation_date < cut).count();
        assert_eq!(rows, expected);
        assert!(rows <= g.persons.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn person_rows_have_expected_field_count() {
        let (c, g, w) = small();
        let dir = tmpdir("fields");
        serialize(&g, &w, CsvVariant::Composite, c.stream_cut(), &dir).unwrap();
        let csv = fs::read_to_string(dir.join("social_network/dynamic/person_0_0.csv")).unwrap();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let n = header.split('|').count();
        assert_eq!(n, 10); // 8 scalar + language + email composites
        for line in lines {
            assert_eq!(line.split('|').count(), n, "row: {line}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
