//! The raw in-memory social network produced by the generator.
//!
//! This is a flat, serialisation-oriented representation (vectors of
//! records); `snb-store` turns it into the columnar/CSR form queries run
//! against.

use snb_core::datetime::{Date, DateTime};
use snb_core::model::{
    ForumId, ForumKind, Gender, MessageId, MessageKind, OrganisationId, PersonId, PlaceId, TagId,
};

/// A generated Person (spec Table 2.5 plus its relations).
#[derive(Clone, Debug)]
pub struct RawPerson {
    /// Person id.
    pub id: PersonId,
    /// First name (country- and gender-correlated).
    pub first_name: &'static str,
    /// Surname (country-correlated).
    pub last_name: &'static str,
    /// Gender.
    pub gender: Gender,
    /// Birthday (day precision).
    pub birthday: Date,
    /// Date the person joined the network.
    pub creation_date: DateTime,
    /// IP address drawn from the home country's block.
    pub location_ip: String,
    /// Browser dictionary index (into [`crate::dictionaries::BROWSERS`]).
    pub browser: u8,
    /// Home city.
    pub city: PlaceId,
    /// Country index of the home city (into `COUNTRIES`; denormalised
    /// for the generator's own correlation passes).
    pub country: usize,
    /// Language indices into `StaticWorld::languages`.
    pub languages: Vec<u8>,
    /// Email addresses.
    pub emails: Vec<String>,
    /// Tags the person is interested in.
    pub interests: Vec<TagId>,
    /// University studied at with graduation class year, if any.
    pub study_at: Option<(OrganisationId, i32)>,
    /// Companies worked at with start year.
    pub work_at: Vec<(OrganisationId, i32)>,
}

/// An undirected `knows` edge with its creation date and the correlation
/// dimension (0 = study, 1 = interest, 2 = random) that produced it —
/// the dimension is generator metadata used by experiment E2, not part
/// of the benchmark schema.
#[derive(Clone, Copy, Debug)]
pub struct RawKnows {
    /// One endpoint (always the smaller person id).
    pub a: PersonId,
    /// Other endpoint.
    pub b: PersonId,
    /// Date the friendship was established.
    pub creation_date: DateTime,
    /// Correlation dimension that generated the edge.
    pub dimension: u8,
}

/// A generated Forum (wall, album or group).
#[derive(Clone, Debug)]
pub struct RawForum {
    /// Forum id.
    pub id: ForumId,
    /// Flavour (wall / album / group), distinguished by title per spec.
    pub kind: ForumKind,
    /// Title.
    pub title: String,
    /// Creation timestamp.
    pub creation_date: DateTime,
    /// Moderator.
    pub moderator: PersonId,
    /// Topics of the forum.
    pub tags: Vec<TagId>,
}

/// A forum membership (`hasMember` with `joinDate`).
#[derive(Clone, Copy, Debug)]
pub struct RawMembership {
    /// The forum.
    pub forum: ForumId,
    /// The member.
    pub person: PersonId,
    /// Join date.
    pub join_date: DateTime,
}

/// A generated Message — Posts and Comments share this record; `kind`
/// discriminates and Comment-only/Post-only fields are optional.
#[derive(Clone, Debug)]
pub struct RawMessage {
    /// Message id (one id space across Posts and Comments so `replyOf`
    /// can address either; the spec permits per-type id reuse but does
    /// not require it).
    pub id: MessageId,
    /// Post or Comment.
    pub kind: MessageKind,
    /// Creation timestamp.
    pub creation_date: DateTime,
    /// Author.
    pub creator: PersonId,
    /// Country the message was issued from.
    pub country: PlaceId,
    /// IP within the author's country block.
    pub location_ip: String,
    /// Browser dictionary index.
    pub browser: u8,
    /// Textual content; empty iff this is an image post.
    pub content: String,
    /// Content length (spec: length of content; for image posts the
    /// length of the image file name is not counted — length is 0).
    pub length: u32,
    /// Image file name (Posts only; mutually exclusive with content).
    pub image_file: Option<String>,
    /// Language (Posts only).
    pub language: Option<u8>,
    /// Containing forum (Posts only).
    pub forum: Option<ForumId>,
    /// Message this Comment replies to (Comments only).
    pub reply_of: Option<MessageId>,
    /// Root Post of the thread (Posts: self).
    pub root_post: MessageId,
    /// Topics.
    pub tags: Vec<TagId>,
}

/// A `likes` edge.
#[derive(Clone, Copy, Debug)]
pub struct RawLike {
    /// The person issuing the like.
    pub person: PersonId,
    /// The liked message.
    pub message: MessageId,
    /// When the like was issued.
    pub creation_date: DateTime,
}

/// The complete generated network (static + dynamic).
#[derive(Default)]
pub struct RawGraph {
    /// Persons.
    pub persons: Vec<RawPerson>,
    /// `knows` edges (each undirected edge stored once, a < b).
    pub knows: Vec<RawKnows>,
    /// Forums.
    pub forums: Vec<RawForum>,
    /// Forum memberships.
    pub memberships: Vec<RawMembership>,
    /// Posts and comments, ordered by id.
    pub messages: Vec<RawMessage>,
    /// Likes.
    pub likes: Vec<RawLike>,
}

impl RawGraph {
    /// Number of Post messages.
    pub fn post_count(&self) -> usize {
        self.messages.iter().filter(|m| m.kind == MessageKind::Post).count()
    }

    /// Number of Comment messages.
    pub fn comment_count(&self) -> usize {
        self.messages.len() - self.post_count()
    }

    /// Total node count including static entities (for experiment E1).
    pub fn node_count(
        &self,
        static_places: usize,
        static_tags: usize,
        static_tag_classes: usize,
        static_orgs: usize,
    ) -> u64 {
        (self.persons.len()
            + self.forums.len()
            + self.messages.len()
            + static_places
            + static_tags
            + static_tag_classes
            + static_orgs) as u64
    }

    /// Total edge count (every relation instance, message tags included).
    pub fn edge_count(&self) -> u64 {
        let person_edges: usize = self
            .persons
            .iter()
            .map(|p| {
                1 // isLocatedIn
                    + p.interests.len()
                    + p.study_at.iter().count()
                    + p.work_at.len()
            })
            .sum();
        let forum_edges: usize =
            self.forums.iter().map(|f| 1 + f.tags.len()).sum::<usize>() + self.memberships.len();
        let message_edges: usize = self
            .messages
            .iter()
            .map(|m| {
                // hasCreator + isLocatedIn + hasTag* + (containerOf | replyOf)
                2 + m.tags.len() + 1
            })
            .sum();
        (self.knows.len() + person_edges + forum_edges + message_edges + self.likes.len()) as u64
    }
}
