//! Update streams (spec §2.3.4.3).
//!
//! Records created at or after the bulk/stream cut (the last ~10% of
//! simulated time) are not serialized into the dataset; they become
//! *insert events* IU 1–8, each carrying the event's timestamp `t` and a
//! *dependant timestamp* `t_d` — the latest creation time of any dynamic
//! entity the event references. The driver must not schedule an event
//! before its dependency has been applied.
//!
//! Two stream files are emitted per spec: `updateStream_0_0_person.csv`
//! (IU 1 only) and `updateStream_0_0_forum.csv` (IU 2–8).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use snb_core::datetime::DateTime;
use snb_core::model::MessageKind;
use snb_core::SnbResult;

use crate::dictionaries::{StaticWorld, BROWSERS};
use crate::graph::{RawForum, RawGraph, RawKnows, RawLike, RawMembership, RawMessage, RawPerson};

/// One insert operation (IU 1–8).
#[derive(Clone, Debug)]
pub enum UpdateEvent {
    /// IU 1 — add Person node with its static edges.
    AddPerson(RawPerson),
    /// IU 2 — add like to Post.
    AddLikePost(RawLike),
    /// IU 3 — add like to Comment.
    AddLikeComment(RawLike),
    /// IU 4 — add Forum node.
    AddForum(RawForum),
    /// IU 5 — add Forum membership.
    AddMembership(RawMembership),
    /// IU 6 — add Post node.
    AddPost(RawMessage),
    /// IU 7 — add Comment node.
    AddComment(RawMessage),
    /// IU 8 — add friendship.
    AddKnows(RawKnows),
}

impl UpdateEvent {
    /// The spec's operation id (Table 2.18).
    pub fn operation_id(&self) -> u8 {
        match self {
            UpdateEvent::AddPerson(_) => 1,
            UpdateEvent::AddLikePost(_) => 2,
            UpdateEvent::AddLikeComment(_) => 3,
            UpdateEvent::AddForum(_) => 4,
            UpdateEvent::AddMembership(_) => 5,
            UpdateEvent::AddPost(_) => 6,
            UpdateEvent::AddComment(_) => 7,
            UpdateEvent::AddKnows(_) => 8,
        }
    }
}

/// An event with its schedule metadata (spec Table 2.17).
#[derive(Clone, Debug)]
pub struct TimedEvent {
    /// Event time `t` (the simulated time the action happened).
    pub timestamp: DateTime,
    /// Dependant time `t_d`: latest creation time among referenced
    /// dynamic entities.
    pub dependent: DateTime,
    /// The operation payload.
    pub event: UpdateEvent,
}

/// Builds the sorted update-event streams for everything at/after `cut`.
pub fn build_update_streams(graph: &RawGraph, cut: DateTime) -> Vec<TimedEvent> {
    let person_created: Vec<DateTime> = graph.persons.iter().map(|p| p.creation_date).collect();
    let forum_created: Vec<DateTime> = graph.forums.iter().map(|f| f.creation_date).collect();
    let message_created: Vec<(DateTime, MessageKind)> =
        graph.messages.iter().map(|m| (m.creation_date, m.kind)).collect();
    build_update_streams_dense(graph, &person_created, &forum_created, &message_created, cut)
}

/// [`build_update_streams`] with the creation-date lookups passed in as
/// dense id-indexed slices (generator ids are sequential, so `id.0` is
/// the index).
///
/// This is the streaming-ingest entry point: the caller materialises
/// only the *tail* records (the ~10% at/after `cut`) in `tail`, plus the
/// three creation-date vectors covering **all** entities — a dependant
/// timestamp may reference a bulk entity the tail graph doesn't hold.
/// The vectors cost a few bytes per entity instead of a full
/// [`RawMessage`] per message.
pub fn build_update_streams_dense(
    tail: &RawGraph,
    person_created: &[DateTime],
    forum_created: &[DateTime],
    message_created: &[(DateTime, MessageKind)],
    cut: DateTime,
) -> Vec<TimedEvent> {
    let zero = DateTime(0);

    let mut events = Vec::new();
    for p in tail.persons.iter().filter(|p| p.creation_date >= cut) {
        events.push(TimedEvent {
            timestamp: p.creation_date,
            dependent: zero,
            event: UpdateEvent::AddPerson(p.clone()),
        });
    }
    for k in tail.knows.iter().filter(|k| k.creation_date >= cut) {
        events.push(TimedEvent {
            timestamp: k.creation_date,
            dependent: person_created[k.a.0 as usize].max(person_created[k.b.0 as usize]),
            event: UpdateEvent::AddKnows(*k),
        });
    }
    for f in tail.forums.iter().filter(|f| f.creation_date >= cut) {
        events.push(TimedEvent {
            timestamp: f.creation_date,
            dependent: person_created[f.moderator.0 as usize],
            event: UpdateEvent::AddForum(f.clone()),
        });
    }
    for m in tail.memberships.iter().filter(|m| m.join_date >= cut) {
        events.push(TimedEvent {
            timestamp: m.join_date,
            dependent: person_created[m.person.0 as usize]
                .max(forum_created[m.forum.0 as usize]),
            event: UpdateEvent::AddMembership(*m),
        });
    }
    for m in tail.messages.iter().filter(|m| m.creation_date >= cut) {
        let (dependent, event) = match m.kind {
            MessageKind::Post => {
                let dep = person_created[m.creator.0 as usize]
                    .max(forum_created[m.forum.expect("post has forum").0 as usize]);
                (dep, UpdateEvent::AddPost(m.clone()))
            }
            MessageKind::Comment => {
                let parent = m.reply_of.expect("comment has parent");
                let dep = person_created[m.creator.0 as usize]
                    .max(message_created[parent.0 as usize].0);
                (dep, UpdateEvent::AddComment(m.clone()))
            }
        };
        events.push(TimedEvent { timestamp: m.creation_date, dependent, event });
    }
    for l in tail.likes.iter().filter(|l| l.creation_date >= cut) {
        let (msg_created, kind) = message_created[l.message.0 as usize];
        let dependent = person_created[l.person.0 as usize].max(msg_created);
        let event = match kind {
            MessageKind::Post => UpdateEvent::AddLikePost(*l),
            MessageKind::Comment => UpdateEvent::AddLikeComment(*l),
        };
        events.push(TimedEvent { timestamp: l.creation_date, dependent, event });
    }
    // Sort by time; ties are broken so dependencies apply first: node
    // inserts before edge inserts, posts before comments, and comments
    // by ascending id (a comment's parent always has a smaller id, so id
    // order respects reply order at equal timestamps).
    events.sort_by_key(|e| {
        let (priority, entity): (u8, u64) = match &e.event {
            UpdateEvent::AddPerson(p) => (0, p.id.0),
            UpdateEvent::AddForum(f) => (1, f.id.0),
            UpdateEvent::AddPost(m) => (2, m.id.0),
            UpdateEvent::AddComment(m) => (3, m.id.0),
            UpdateEvent::AddMembership(m) => (4, m.person.0),
            UpdateEvent::AddKnows(k) => (4, k.a.0),
            UpdateEvent::AddLikePost(l) | UpdateEvent::AddLikeComment(l) => (5, l.message.0),
        };
        (e.timestamp, priority, entity)
    });
    events
}

/// Writes the two update-stream CSVs under `root` (spec layout:
/// `social_network/updateStream_0_0_{person,forum}.csv`). Timestamps are
/// epoch milliseconds like the official streams.
pub fn write_update_streams(
    events: &[TimedEvent],
    world: &StaticWorld,
    graph: &RawGraph,
    root: &Path,
) -> SnbResult<()> {
    let base = root.join("social_network");
    std::fs::create_dir_all(&base)?;
    let mut person_w = BufWriter::new(File::create(base.join("updateStream_0_0_person.csv"))?);
    let mut forum_w = BufWriter::new(File::create(base.join("updateStream_0_0_forum.csv"))?);

    for ev in events {
        let prefix = format!("{}|{}|{}", ev.timestamp.0, ev.dependent.0, ev.event.operation_id());
        match &ev.event {
            UpdateEvent::AddPerson(p) => {
                let langs: Vec<&str> =
                    p.languages.iter().map(|&l| world.languages[l as usize]).collect();
                let tag_ids: Vec<String> = p.interests.iter().map(|t| t.0.to_string()).collect();
                let study = p.study_at.map(|(o, y)| format!("{},{y}", o.0)).unwrap_or_default();
                let work: Vec<String> =
                    p.work_at.iter().map(|(o, y)| format!("{},{y}", o.0)).collect();
                writeln!(
                    person_w,
                    "{prefix}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
                    p.id.0,
                    p.first_name,
                    p.last_name,
                    p.gender.as_str(),
                    p.birthday,
                    p.creation_date.0,
                    p.location_ip,
                    BROWSERS[p.browser as usize].0,
                    p.city.0,
                    langs.join(";"),
                    p.emails.join(";"),
                    tag_ids.join(";"),
                    study,
                    work.join(";"),
                )?;
            }
            UpdateEvent::AddLikePost(l) | UpdateEvent::AddLikeComment(l) => {
                writeln!(forum_w, "{prefix}|{}|{}|{}", l.person.0, l.message.0, l.creation_date.0)?;
            }
            UpdateEvent::AddForum(f) => {
                let tags: Vec<String> = f.tags.iter().map(|t| t.0.to_string()).collect();
                writeln!(
                    forum_w,
                    "{prefix}|{}|{}|{}|{}|{}",
                    f.id.0,
                    f.title,
                    f.creation_date.0,
                    f.moderator.0,
                    tags.join(";"),
                )?;
            }
            UpdateEvent::AddMembership(m) => {
                writeln!(forum_w, "{prefix}|{}|{}|{}", m.person.0, m.forum.0, m.join_date.0)?;
            }
            UpdateEvent::AddPost(m) => {
                let tags: Vec<String> = m.tags.iter().map(|t| t.0.to_string()).collect();
                let lang =
                    m.language.map(|l| world.languages[l as usize].to_string()).unwrap_or_default();
                writeln!(
                    forum_w,
                    "{prefix}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
                    m.id.0,
                    m.image_file.clone().unwrap_or_default(),
                    m.creation_date.0,
                    m.location_ip,
                    BROWSERS[m.browser as usize].0,
                    lang,
                    m.content,
                    m.length,
                    m.creator.0,
                    m.forum.expect("post has forum").0,
                    m.country.0,
                    tags.join(";"),
                )?;
            }
            UpdateEvent::AddComment(m) => {
                let tags: Vec<String> = m.tags.iter().map(|t| t.0.to_string()).collect();
                let parent = m.reply_of.expect("comment has parent");
                let parent_is_post = graph.messages[parent.0 as usize].kind == MessageKind::Post;
                let (reply_post, reply_comment) =
                    if parent_is_post { (parent.0 as i64, -1) } else { (-1, parent.0 as i64) };
                writeln!(
                    forum_w,
                    "{prefix}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
                    m.id.0,
                    m.creation_date.0,
                    m.location_ip,
                    BROWSERS[m.browser as usize].0,
                    m.content,
                    m.length,
                    m.creator.0,
                    m.country.0,
                    reply_post,
                    reply_comment,
                    tags.join(";"),
                )?;
            }
            UpdateEvent::AddKnows(k) => {
                writeln!(forum_w, "{prefix}|{}|{}|{}", k.a.0, k.b.0, k.creation_date.0)?;
            }
        }
    }
    person_w.flush()?;
    forum_w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratorConfig;
    use snb_core::scale::ScaleFactor;

    fn gen() -> (GeneratorConfig, RawGraph) {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 100;
        let g = crate::generate(&c);
        (c, g)
    }

    #[test]
    fn events_are_sorted_and_after_cut() {
        let (c, g) = gen();
        let cut = c.stream_cut();
        let events = build_update_streams(&g, cut);
        assert!(!events.is_empty(), "no tail events at all");
        for w in events.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        for e in &events {
            assert!(e.timestamp >= cut);
        }
    }

    #[test]
    fn dependencies_precede_events() {
        let (c, g) = gen();
        let events = build_update_streams(&g, c.stream_cut());
        for e in &events {
            assert!(e.dependent <= e.timestamp, "dependency after event: {e:?}");
        }
    }

    #[test]
    fn bulk_plus_stream_covers_everything() {
        let (c, g) = gen();
        let cut = c.stream_cut();
        let events = build_update_streams(&g, cut);
        let streamed_persons =
            events.iter().filter(|e| matches!(e.event, UpdateEvent::AddPerson(_))).count();
        let bulk_persons = g.persons.iter().filter(|p| p.creation_date < cut).count();
        assert_eq!(streamed_persons + bulk_persons, g.persons.len());
        let streamed_msgs = events
            .iter()
            .filter(|e| matches!(e.event, UpdateEvent::AddPost(_) | UpdateEvent::AddComment(_)))
            .count();
        let bulk_msgs = g.messages.iter().filter(|m| m.creation_date < cut).count();
        assert_eq!(streamed_msgs + bulk_msgs, g.messages.len());
    }

    #[test]
    fn stream_files_have_spec_prefix() {
        let (c, g) = gen();
        let w = StaticWorld::build(c.seed);
        let events = build_update_streams(&g, c.stream_cut());
        let dir = std::env::temp_dir().join(format!("snb_stream_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_update_streams(&events, &w, &g, &dir).unwrap();
        let forum =
            std::fs::read_to_string(dir.join("social_network/updateStream_0_0_forum.csv")).unwrap();
        for line in forum.lines().take(50) {
            let fields: Vec<&str> = line.split('|').collect();
            assert!(fields.len() >= 4);
            let t: i64 = fields[0].parse().unwrap();
            let td: i64 = fields[1].parse().unwrap();
            let op: u8 = fields[2].parse().unwrap();
            assert!(td <= t);
            assert!((2..=8).contains(&op), "person op in forum stream");
        }
        let person =
            std::fs::read_to_string(dir.join("social_network/updateStream_0_0_person.csv"))
                .unwrap();
        for line in person.lines() {
            let op: u8 = line.split('|').nth(2).unwrap().parse().unwrap();
            assert_eq!(op, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
