#![warn(missing_docs)]

//! # snb-datagen
//!
//! Deterministic, correlated social-network generator reproducing the
//! LDBC SNB Datagen (spec §2.3.3):
//!
//! * persons with country/gender-correlated attributes drawn from the
//!   property-dictionary model (dictionary `D`, ranking `R`, probability
//!   `F`);
//! * `knows` edges generated along **three correlation dimensions**
//!   (study location/era, interests, random noise) by sorting persons on
//!   a similarity key and picking partners at geometric rank-distance
//!   within a window — this reproduces the homophily / triangle excess
//!   the spec calls out;
//! * a Facebook-like degree distribution, with per-person activity
//!   volume correlated with degree;
//! * forums (walls / albums / groups), posts (uniform background +
//!   *flashmob events*), comment trees, likes, tag enrichment through a
//!   tag-correlation matrix;
//! * CSV serializers (CsvBasic, CsvMergeForeign, CsvComposite,
//!   CsvCompositeMergeForeign — spec Tables 2.13–2.16);
//! * update streams: the last ~10% of simulated time is withheld from
//!   the bulk dataset and emitted as insert events IU 1–8 (spec §2.3.4).
//!
//! Everything is a deterministic function of [`GeneratorConfig::seed`].

pub mod activity;
pub mod dictionaries;
pub mod graph;
pub mod knows;
pub mod person;
pub mod serializer;
pub mod stream;
pub mod turtle;

use snb_core::datetime::Date;
use snb_core::scale::ScaleFactor;

pub use activity::{generate_activity_into, ActivitySink};
pub use graph::RawGraph;
pub use person::person_chunks;

/// Parameters of a generation run (spec §2.3.3: "Three parameters
/// determine the generated data: the number of persons, the number of
/// years simulated, and the starting year of simulation").
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Number of persons.
    pub persons: u64,
    /// First simulated day.
    pub start: Date,
    /// One-past-last simulated day.
    pub end: Date,
    /// Master seed; the whole dataset is a function of it.
    pub seed: u64,
    /// Mean `knows` degree (the Facebook-like distribution is scaled to
    /// this mean).
    pub mean_knows_degree: f64,
    /// Hard degree cap.
    pub max_knows_degree: usize,
    /// Similarity-window width for the correlated edge passes.
    pub window: usize,
    /// Mean wall/group posts contributed per person per unit of degree.
    pub activity_scale: f64,
    /// Number of flashmob events per 100 persons.
    pub flashmob_per_100_persons: f64,
    /// Fraction of posts attached to flashmob events.
    pub flashmob_post_fraction: f64,
}

impl GeneratorConfig {
    /// The configuration for a named scale factor with spec defaults
    /// (3 years starting 2010).
    pub fn for_scale(sf: ScaleFactor) -> Self {
        let (start, end) = ScaleFactor::default_window();
        GeneratorConfig {
            persons: sf.persons,
            start,
            end,
            seed: 53_1389, // arbitrary fixed default; override per run
            mean_knows_degree: 15.0,
            max_knows_degree: 1000,
            window: 100,
            activity_scale: 1.6,
            flashmob_per_100_persons: 2.0,
            flashmob_post_fraction: 0.3,
        }
    }

    /// Convenience: configuration for a scale factor looked up by name.
    pub fn for_scale_name(name: &str) -> Option<Self> {
        ScaleFactor::by_name(name).map(Self::for_scale)
    }

    /// Sets the seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The timestamp splitting bulk data from the update streams:
    /// `start + BULK_FRACTION * (end - start)` (spec §2.3.4).
    pub fn stream_cut(&self) -> snb_core::datetime::DateTime {
        let total = (self.end.0 - self.start.0) as f64;
        let cut_days = (total * ScaleFactor::BULK_FRACTION) as i32;
        self.start.plus_days(cut_days).at_midnight()
    }
}

/// Runs the full generation pipeline and returns the raw network.
///
/// The passes mirror Figure 2.2 of the spec: load dictionaries →
/// generate persons → three correlated `knows` passes → activity
/// (forums, posts, comments, likes) → (serialisation is the caller's
/// choice, see [`serializer`]).
pub fn generate(config: &GeneratorConfig) -> RawGraph {
    let world = dictionaries::StaticWorld::build(config.seed);
    let mut graph =
        RawGraph { persons: person::generate_persons(config, &world), ..RawGraph::default() };
    graph.knows = knows::generate_knows(config, &graph.persons);
    activity::generate_activity(config, &world, &mut graph);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> GeneratorConfig {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 60;
        c
    }

    #[test]
    fn generation_is_deterministic() {
        let c = tiny_config();
        let g1 = generate(&c);
        let g2 = generate(&c);
        assert_eq!(g1.persons.len(), g2.persons.len());
        assert_eq!(g1.knows.len(), g2.knows.len());
        assert_eq!(g1.messages.len(), g2.messages.len());
        assert_eq!(g1.likes.len(), g2.likes.len());
        for (a, b) in g1.persons.iter().zip(&g2.persons) {
            assert_eq!(a.first_name, b.first_name);
            assert_eq!(a.creation_date, b.creation_date);
        }
        for (a, b) in g1.messages.iter().zip(&g2.messages) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.creation_date, b.creation_date);
            assert_eq!(a.content, b.content);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let c1 = tiny_config();
        let c2 = tiny_config().with_seed(999);
        let g1 = generate(&c1);
        let g2 = generate(&c2);
        let names1: Vec<_> = g1.persons.iter().map(|p| p.first_name).collect();
        let names2: Vec<_> = g2.persons.iter().map(|p| p.first_name).collect();
        assert_ne!(names1, names2);
    }

    #[test]
    fn stream_cut_is_90_percent() {
        let c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.1").unwrap());
        let cut = c.stream_cut();
        let total = (c.end.0 - c.start.0) as f64;
        let frac = (cut.date().0 - c.start.0) as f64 / total;
        assert!((frac - 0.9).abs() < 0.01, "cut fraction {frac}");
    }

    #[test]
    fn temporal_integrity() {
        // Every record's timestamp must dominate its dependencies,
        // otherwise the bulk/stream split would dangle references.
        let g = generate(&tiny_config());
        use std::collections::HashMap;
        let person_created: HashMap<_, _> =
            g.persons.iter().map(|p| (p.id, p.creation_date)).collect();
        let msg: HashMap<_, _> = g.messages.iter().map(|m| (m.id, m)).collect();
        let forum_created: HashMap<_, _> =
            g.forums.iter().map(|f| (f.id, f.creation_date)).collect();
        for k in &g.knows {
            assert!(k.creation_date >= person_created[&k.a]);
            assert!(k.creation_date >= person_created[&k.b]);
        }
        for f in &g.forums {
            assert!(f.creation_date >= person_created[&f.moderator]);
        }
        for m in &g.memberships {
            assert!(m.join_date >= forum_created[&m.forum]);
            assert!(m.join_date >= person_created[&m.person]);
        }
        for m in &g.messages {
            assert!(m.creation_date >= person_created[&m.creator]);
            if let Some(parent) = m.reply_of {
                assert!(m.creation_date >= msg[&parent].creation_date);
            }
            if let Some(forum) = m.forum {
                assert!(m.creation_date >= forum_created[&forum]);
            }
        }
        for l in &g.likes {
            assert!(l.creation_date >= msg[&l.message].creation_date);
            assert!(l.creation_date >= person_created[&l.person]);
        }
    }
}
