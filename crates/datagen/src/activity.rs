//! Activity generation: forums, posts, comment trees, likes
//! (Figure 2.2 step 6 — "person activities").
//!
//! Reproduced characteristics (spec §2.3.3.2):
//!
//! * activity volume is correlated with friend count — "people with a
//!   larger number of friends have a higher activity";
//! * post timestamps mix a uniform background with *flashmob events*:
//!   random (tag, time, intensity) triples generated up front; flashmob
//!   posts cluster around their event's time and carry its tag;
//! * message tags start from the forum's topics / author's interests and
//!   are enriched through the tag-correlation matrix;
//! * three forum flavours: personal walls (members = friends), image
//!   albums (image posts by the owner), topical groups (members drawn
//!   from the moderator's neighbourhood plus interest-correlated
//!   strangers).
//!
//! The pass is *sink-driven*: every record is emitted through
//! [`ActivitySink`] the moment it is generated, in a deterministic
//! order (forum, then its memberships, then each message immediately
//! followed by its likes). [`RawGraph`] implements the sink by pushing
//! (the classic materialising path used by [`crate::generate`]);
//! `snb-store`'s streaming builder implements it to ingest records
//! directly into columnar form without ever holding the raw activity in
//! memory. Both paths observe the identical record sequence, so the
//! resulting stores are equal.

use rustc_hash::FxHashMap;
use snb_core::datetime::{DateTime, MILLIS_PER_DAY, MILLIS_PER_HOUR};
use snb_core::model::{ForumId, ForumKind, MessageId, MessageKind, PersonId, TagId};
use snb_core::rng::Rng;

use crate::dictionaries::{StaticWorld, COUNTRIES, FILLER_WORDS, TAGS};
use crate::graph::{RawForum, RawGraph, RawKnows, RawLike, RawMembership, RawMessage, RawPerson};
use crate::GeneratorConfig;

const TAG_FLASHMOB: u64 = 20;
const TAG_FORUM: u64 = 21;
const TAG_GROUP: u64 = 22;
const TAG_POST: u64 = 23;

/// Receiver of generated activity records.
///
/// Records arrive in dependency order: a forum strictly before its
/// memberships and messages; a message strictly before its replies and
/// likes; message ids strictly increasing. Consumers may therefore
/// resolve every reference against records they have already seen.
pub trait ActivitySink {
    /// A new forum (wall / album / group).
    fn forum(&mut self, f: RawForum);
    /// A forum membership (its forum has already been emitted).
    fn membership(&mut self, m: RawMembership);
    /// A post or comment (its forum/parent has already been emitted).
    fn message(&mut self, m: RawMessage);
    /// A like (its message has already been emitted).
    fn like(&mut self, l: RawLike);
}

/// The materialising sink: plain pushes into the raw vectors.
impl ActivitySink for RawGraph {
    fn forum(&mut self, f: RawForum) {
        self.forums.push(f);
    }
    fn membership(&mut self, m: RawMembership) {
        self.memberships.push(m);
    }
    fn message(&mut self, m: RawMessage) {
        self.messages.push(m);
    }
    fn like(&mut self, l: RawLike) {
        self.likes.push(l);
    }
}

/// A flashmob event: a topic spike at a point in simulated time.
#[derive(Clone, Copy, Debug)]
pub struct Flashmob {
    /// The trending tag.
    pub tag: TagId,
    /// Peak time.
    pub time: DateTime,
    /// Relative intensity (weight when choosing which event a flashmob
    /// post belongs to).
    pub intensity: f64,
}

/// Generates the flashmob event list for a run.
pub fn generate_flashmobs(config: &GeneratorConfig, world: &StaticWorld) -> Vec<Flashmob> {
    let count = ((config.persons as f64 / 100.0) * config.flashmob_per_100_persons).ceil().max(1.0)
        as usize;
    let mut rng = Rng::derive(config.seed, 0, TAG_FLASHMOB);
    let start = config.start.at_midnight().0;
    let end = config.end.at_midnight().0 - MILLIS_PER_DAY;
    (0..count)
        .map(|_| {
            let country = rng.index(COUNTRIES.len());
            Flashmob {
                tag: world.sample_tag_for_country(country, &mut rng),
                time: DateTime(rng.range_i64(start, end)),
                // Intensity: heavy-tailed so a few events dominate.
                intensity: rng.next_f64().powi(2) * 10.0 + 0.5,
            }
        })
        .collect()
}

struct ActivityState<'a> {
    config: &'a GeneratorConfig,
    world: &'a StaticWorld,
    flashmobs: Vec<Flashmob>,
    flashmob_weights: snb_core::dist::CumulativeTable,
    friends: Vec<Vec<u32>>,
    friend_since: FxHashMap<(u32, u32), DateTime>,
    next_forum: u64,
    next_message: u64,
    end_millis: i64,
}

/// Populates `graph` with forums, memberships, messages and likes
/// (the materialising wrapper over [`generate_activity_into`]).
pub fn generate_activity(config: &GeneratorConfig, world: &StaticWorld, graph: &mut RawGraph) {
    let persons = std::mem::take(&mut graph.persons);
    let knows = std::mem::take(&mut graph.knows);
    generate_activity_into(config, world, &persons, &knows, graph);
    graph.persons = persons;
    graph.knows = knows;
}

/// Generates all activity, emitting each record through `sink` the
/// moment it exists. Only `persons` and `knows` need to be materialised
/// (both are O(persons), tiny next to the message volume); the
/// forums/messages/likes stream through without accumulating.
pub fn generate_activity_into<S: ActivitySink>(
    config: &GeneratorConfig,
    world: &StaticWorld,
    persons: &[RawPerson],
    knows: &[RawKnows],
    sink: &mut S,
) {
    let n = persons.len();
    let mut friends: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut friend_since = FxHashMap::default();
    for k in knows {
        friends[k.a.0 as usize].push(k.b.0 as u32);
        friends[k.b.0 as usize].push(k.a.0 as u32);
        friend_since.insert((k.a.0 as u32, k.b.0 as u32), k.creation_date);
        friend_since.insert((k.b.0 as u32, k.a.0 as u32), k.creation_date);
    }

    let flashmobs = generate_flashmobs(config, world);
    let flashmob_weights = snb_core::dist::CumulativeTable::new(
        &flashmobs.iter().map(|f| f.intensity).collect::<Vec<_>>(),
    );

    let mut state = ActivityState {
        config,
        world,
        flashmobs,
        flashmob_weights,
        friends,
        friend_since,
        next_forum: 0,
        next_message: 0,
        end_millis: config.end.at_midnight().0 - 1,
    };

    generate_walls(&mut state, persons, sink);
    generate_albums(&mut state, persons, sink);
    generate_groups(&mut state, persons, sink);
}

impl ActivityState<'_> {
    fn alloc_forum(&mut self) -> ForumId {
        let id = ForumId(self.next_forum);
        self.next_forum += 1;
        id
    }

    fn alloc_message(&mut self) -> MessageId {
        let id = MessageId(self.next_message);
        self.next_message += 1;
        id
    }

    /// Clamps a timestamp into `(lo, end_of_window]`.
    fn clamp(&self, t: i64, lo: i64) -> DateTime {
        DateTime(t.max(lo).min(self.end_millis))
    }

    /// A timestamp in `[lo, end)`, front-biased (cubic) so activity
    /// concentrates soon after its enabling event — this keeps the
    /// record volume before the 90%-of-time stream cut near 90%, the
    /// spec's bulk/stream proportion (§2.3.4).
    fn uniform_after(&self, rng: &mut Rng, lo: i64) -> DateTime {
        if lo >= self.end_millis {
            DateTime(self.end_millis)
        } else {
            let u = rng.next_f64();
            let span = (self.end_millis - lo) as f64;
            DateTime(lo + (span * u * u * u) as i64)
        }
    }
}

/// Tags for a message: seed tags from the forum/person, enriched with
/// correlated tags through the tag matrix.
fn enrich_tags(world: &StaticWorld, seed_tags: &[TagId], rng: &mut Rng, max: usize) -> Vec<TagId> {
    let mut tags = Vec::with_capacity(max.min(4));
    if !seed_tags.is_empty() {
        tags.push(*rng.pick(seed_tags));
    }
    // With decreasing probability, walk the correlation matrix.
    while !tags.is_empty() && tags.len() < max && rng.chance(0.45) {
        let base = *rng.pick(&tags);
        let corr = &world.tag_correlations[base.0 as usize];
        if corr.is_empty() {
            break;
        }
        let cand = *rng.pick(corr);
        if !tags.contains(&cand) {
            tags.push(cand);
        } else {
            break;
        }
    }
    tags
}

/// Synthesises message content about `tag` with the BI 1 length mixture
/// (short / one-liner / tweet / long).
fn make_content(tag: Option<TagId>, rng: &mut Rng) -> (String, u32) {
    let target: usize = match rng.next_f64() {
        x if x < 0.30 => rng.range_i64(10, 39) as usize,
        x if x < 0.65 => rng.range_i64(40, 79) as usize,
        x if x < 0.90 => rng.range_i64(80, 159) as usize,
        _ => rng.range_i64(160, 500) as usize,
    };
    let mut s = String::with_capacity(target + 24);
    if let Some(t) = tag {
        s.push_str("About ");
        s.push_str(TAGS[t.0 as usize].0);
        s.push_str(": ");
    }
    while s.len() < target {
        s.push_str(FILLER_WORDS[rng.index(FILLER_WORDS.len())]);
        s.push(' ');
    }
    s.truncate(target);
    let len = s.len() as u32;
    (s, len)
}

/// Personal walls: one per person, members are the person's friends.
fn generate_walls<S: ActivitySink>(
    state: &mut ActivityState<'_>,
    persons: &[RawPerson],
    sink: &mut S,
) {
    for pi in 0..persons.len() {
        let (person_id, person_created, title) = {
            let person = &persons[pi];
            (
                person.id,
                person.creation_date,
                format!("Wall of {} {}", person.first_name, person.last_name),
            )
        };
        let mut rng = Rng::derive(state.config.seed, person_id.0, TAG_FORUM);
        let forum_id = state.alloc_forum();
        let creation =
            state.clamp(person_created.0 + rng.range_i64(0, MILLIS_PER_HOUR), person_created.0);
        let mut tags: Vec<TagId> = persons[pi].interests.iter().copied().take(3).collect();
        tags.dedup();
        let forum = RawForum {
            id: forum_id,
            kind: ForumKind::Wall,
            title,
            creation_date: creation,
            moderator: person_id,
            tags,
        };
        sink.forum(forum.clone());

        // Friends join the wall when the friendship forms.
        let mut members: Vec<(PersonId, DateTime)> = Vec::new();
        for &f in &state.friends[pi] {
            let since = state.friend_since[&(pi as u32, f)];
            let join = state.clamp(since.0 + rng.range_i64(0, MILLIS_PER_DAY), creation.0);
            members.push((PersonId(f as u64), join));
        }
        for &(person_m, join_date) in &members {
            sink.membership(RawMembership { forum: forum_id, person: person_m, join_date });
        }

        // Wall posts: by the owner (moderator posts without membership,
        // spec §2.3.2 note) and by members; volume scales with degree.
        let owner_posts =
            1 + rng.geometric(1.0 / (state.config.activity_scale * 2.0 + 1.0)) as usize;
        for _ in 0..owner_posts {
            make_post(state, persons, sink, &forum, person_id, creation, &mut rng, false);
        }
        for &(member, join) in &members {
            let mean = state.config.activity_scale * 0.5;
            let cnt = rng.geometric(1.0 / (mean + 1.0)) as usize;
            for _ in 0..cnt {
                make_post(state, persons, sink, &forum, member, join, &mut rng, false);
            }
        }
    }
}

/// Image albums: 0..=2 per person; only the owner posts (image posts).
fn generate_albums<S: ActivitySink>(
    state: &mut ActivityState<'_>,
    persons: &[RawPerson],
    sink: &mut S,
) {
    for pi in 0..persons.len() {
        let person = &persons[pi];
        let (person_id, person_created, first, last) =
            (person.id, person.creation_date, person.first_name, person.last_name);
        let mut rng = Rng::derive(state.config.seed, person_id.0, TAG_FORUM + 100);
        let albums = rng.geometric(0.5).min(2) as usize;
        for ai in 0..albums {
            let forum_id = state.alloc_forum();
            let creation = state.uniform_after(&mut rng, person_created.0);
            let tags = enrich_tags(state.world, &person.interests, &mut rng, 2);
            let forum = RawForum {
                id: forum_id,
                kind: ForumKind::Album,
                title: format!("Album {ai} of {first} {last}"),
                creation_date: creation,
                moderator: person_id,
                tags,
            };
            sink.forum(forum.clone());
            // A subset of friends follows the album.
            let fr = &state.friends[pi];
            let take = rng.index(fr.len().min(8) + 1);
            for &f in fr.iter().take(take) {
                let join = state
                    .uniform_after(&mut rng, creation.0.max(persons[f as usize].creation_date.0));
                sink.membership(RawMembership {
                    forum: forum_id,
                    person: PersonId(f as u64),
                    join_date: join,
                });
            }
            let photos = 3 + rng.geometric(0.2).min(17) as usize;
            for _ in 0..photos {
                make_post(state, persons, sink, &forum, person_id, creation, &mut rng, true);
            }
        }
    }
}

/// Topical groups: ~1 per 10 persons; members come from the moderator's
/// neighbourhood plus interest-correlated strangers.
fn generate_groups<S: ActivitySink>(
    state: &mut ActivityState<'_>,
    persons: &[RawPerson],
    sink: &mut S,
) {
    let n = persons.len();
    if n == 0 {
        return;
    }
    let group_count = (n / 10).max(1);
    // Interest index: tag -> persons interested.
    let mut by_interest: FxHashMap<TagId, Vec<u32>> = FxHashMap::default();
    for (pi, p) in persons.iter().enumerate() {
        for &t in &p.interests {
            by_interest.entry(t).or_default().push(pi as u32);
        }
    }

    for gi in 0..group_count {
        let mut rng = Rng::derive(state.config.seed, gi as u64, TAG_GROUP);
        let moderator_ix = rng.index(n);
        let (moderator_id, moderator_created, topic) = {
            let moderator = &persons[moderator_ix];
            let topic = if moderator.interests.is_empty() {
                state.world.sample_tag_for_country(moderator.country, &mut rng)
            } else {
                *rng.pick(&moderator.interests)
            };
            (moderator.id, moderator.creation_date, topic)
        };
        let forum_id = state.alloc_forum();
        let creation = state.uniform_after(&mut rng, moderator_created.0);
        let tags = enrich_tags(state.world, &[topic], &mut rng, 3);
        let forum = RawForum {
            id: forum_id,
            kind: ForumKind::Group,
            title: format!("Group for {} in {}", TAGS[topic.0 as usize].0, gi),
            creation_date: creation,
            moderator: moderator_id,
            tags,
        };
        sink.forum(forum.clone());

        // Candidate members: moderator's friends + persons sharing the
        // topic interest.
        let mut candidates: Vec<u32> = state.friends[moderator_ix].clone();
        if let Some(interested) = by_interest.get(&topic) {
            candidates.extend_from_slice(interested);
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&c| c as usize != moderator_ix);
        let want = (3 + rng.geometric(0.08)).min(60).min(candidates.len() as u64) as usize;
        let chosen = rng.sample_indices(candidates.len(), want);
        let mut members: Vec<(PersonId, DateTime)> = vec![(moderator_id, creation)];
        for ci in chosen {
            let pix = candidates[ci] as usize;
            let join = state.uniform_after(&mut rng, creation.0.max(persons[pix].creation_date.0));
            members.push((persons[pix].id, join));
        }
        for &(person_m, join_date) in &members {
            sink.membership(RawMembership { forum: forum_id, person: person_m, join_date });
        }

        // Group posts by members, volume scaled by their degree.
        for &(member, join) in &members {
            let deg = state.friends[member.0 as usize].len() as f64;
            let mean = state.config.activity_scale * (1.0 + deg).ln() * 0.4;
            let cnt = rng.geometric(1.0 / (mean + 1.0)) as usize;
            for _ in 0..cnt {
                make_post(state, persons, sink, &forum, member, join, &mut rng, false);
            }
        }
    }
}

/// Creates one Post (plus its comment tree) in `forum` by `author`,
/// no earlier than `not_before`.
#[allow(clippy::too_many_arguments)]
fn make_post<S: ActivitySink>(
    state: &mut ActivityState<'_>,
    persons: &[RawPerson],
    sink: &mut S,
    forum: &RawForum,
    author: PersonId,
    not_before: DateTime,
    rng: &mut Rng,
    image: bool,
) {
    let author_rec = &persons[author.0 as usize];
    let lo = not_before.0.max(forum.creation_date.0).max(author_rec.creation_date.0);

    // Flashmob or uniform background (spec: both kinds of activity)?
    let (creation, flash_tag) =
        if !image && !state.flashmobs.is_empty() && rng.chance(state.config.flashmob_post_fraction)
        {
            let ev = state.flashmobs[state.flashmob_weights.sample(rng)];
            if ev.time.0 >= lo {
                // Cluster within ±36h of the event peak.
                let jitter = rng.range_i64(-36 * MILLIS_PER_HOUR, 36 * MILLIS_PER_HOUR);
                (state.clamp(ev.time.0 + jitter, lo), Some(ev.tag))
            } else {
                (state.uniform_after(rng, lo), None)
            }
        } else {
            (state.uniform_after(rng, lo), None)
        };

    let mut tags = enrich_tags(state.world, &forum.tags, rng, 3);
    if let Some(ft) = flash_tag {
        if !tags.contains(&ft) {
            tags.insert(0, ft);
        }
    }
    if tags.is_empty() {
        tags.push(state.world.sample_tag_for_country(author_rec.country, rng));
    }

    let id = state.alloc_message();
    // Most messages are issued from home; ~5% while travelling (the
    // official generator correlates but does not fix message location).
    let country = if rng.chance(0.05) {
        state.world.country_place[rng.index(COUNTRIES.len())]
    } else {
        state.world.country_place[author_rec.country]
    };
    let (content, length, image_file, language) = if image {
        (String::new(), 0u32, Some(format!("photo{}.jpg", id.0)), None)
    } else {
        let (c, l) = make_content(tags.first().copied(), rng);
        (c, l, None, Some(author_rec.languages[0]))
    };
    let post_tags = tags.clone();
    let post = RawMessage {
        id,
        kind: MessageKind::Post,
        creation_date: creation,
        creator: author,
        country,
        location_ip: author_rec.location_ip.clone(),
        browser: author_rec.browser,
        content,
        length,
        image_file,
        language,
        forum: Some(forum.id),
        reply_of: None,
        root_post: id,
        tags,
    };
    sink.message(post);
    emit_likes(state, persons, sink, id, MessageKind::Post, author, creation);

    if !image {
        make_comment_tree(state, persons, sink, id, id, author, author, &post_tags, creation, 0, rng);
    }
}

/// Recursively generates the comment tree under `parent`.
///
/// Parent metadata (`post_creator`, `parent_author`, `parent_tags`) is
/// threaded down the recursion rather than read back out of the emitted
/// records — this is what lets the pass stream: the sink never has to
/// answer lookups.
#[allow(clippy::too_many_arguments)]
fn make_comment_tree<S: ActivitySink>(
    state: &mut ActivityState<'_>,
    persons: &[RawPerson],
    sink: &mut S,
    parent: MessageId,
    root_post: MessageId,
    post_creator: PersonId,
    parent_author: PersonId,
    parent_tags: &[TagId],
    parent_time: DateTime,
    depth: u32,
    rng: &mut Rng,
) {
    if depth >= 6 {
        return;
    }
    // Branching decays with depth; root posts get the most replies.
    let mean = match depth {
        0 => 1.2,
        1 => 0.7,
        _ => 0.35,
    };
    let replies = rng.geometric(1.0 / (mean + 1.0)) as usize;
    if replies == 0 {
        return;
    }
    for _ in 0..replies {
        // Replier: a friend of the post creator or the forum moderator's
        // neighbourhood — approximate with friends of the parent author,
        // falling back to the moderator.
        let candidates = &state.friends[parent_author.0 as usize];
        let replier_ix = if candidates.is_empty() || rng.chance(0.2) {
            post_creator.0 as usize
        } else {
            *rng.pick(candidates) as usize
        };
        let replier = &persons[replier_ix];
        let lo = parent_time.0.max(replier.creation_date.0);
        // Replies cluster after the parent: geometric hours. If the
        // delay would spill past the simulation window, fall back to a
        // uniform draw so timestamps don't pile up on the boundary.
        let delay = (rng.geometric(0.05) as i64 + 1) * MILLIS_PER_HOUR / 4;
        let creation = if lo + delay > state.end_millis {
            state.uniform_after(rng, lo)
        } else {
            state.clamp(lo + delay, lo)
        };

        // Comment tags: subset of the parent's plus correlated ones.
        let mut tags = Vec::new();
        if !parent_tags.is_empty() && rng.chance(0.7) {
            tags.push(*rng.pick(parent_tags));
        }
        let enriched = enrich_tags(state.world, &tags, rng, 2);
        if !enriched.is_empty() {
            tags = enriched;
        }

        let id = state.alloc_message();
        let (content, length) = make_content(tags.first().copied(), rng);
        let comment_country = if rng.chance(0.05) {
            state.world.country_place[rng.index(COUNTRIES.len())]
        } else {
            state.world.country_place[replier.country]
        };
        let comment_tags = tags.clone();
        let replier_id = replier.id;
        let comment = RawMessage {
            id,
            kind: MessageKind::Comment,
            creation_date: creation,
            creator: replier_id,
            country: comment_country,
            location_ip: replier.location_ip.clone(),
            browser: replier.browser,
            content,
            length,
            image_file: None,
            language: None,
            forum: None,
            reply_of: Some(parent),
            root_post,
            tags,
        };
        sink.message(comment);
        emit_likes(state, persons, sink, id, MessageKind::Comment, replier_id, creation);
        make_comment_tree(
            state,
            persons,
            sink,
            id,
            root_post,
            post_creator,
            replier_id,
            &comment_tags,
            creation,
            depth + 1,
            rng,
        );
    }
}

/// Likes for one freshly created message: count scales with thread
/// popularity; likers come from the creator's neighbourhood. Each
/// message's like stream is an independent RNG derived from its id, so
/// emitting inline here produces the identical sequence the
/// pre-streaming layout produced with a dedicated pass over messages in
/// id order.
fn emit_likes<S: ActivitySink>(
    state: &ActivityState<'_>,
    persons: &[RawPerson],
    sink: &mut S,
    id: MessageId,
    kind: MessageKind,
    creator: PersonId,
    created: DateTime,
) {
    let mut rng = Rng::derive(state.config.seed, id.0, TAG_POST + 50);
    let mean = match kind {
        MessageKind::Post => 1.8,
        MessageKind::Comment => 0.5,
    };
    let count = rng.geometric(1.0 / (mean + 1.0)) as usize;
    if count == 0 {
        return;
    }
    let candidates = &state.friends[creator.0 as usize];
    if candidates.is_empty() {
        return;
    }
    let take = count.min(candidates.len());
    let chosen = rng.sample_indices(candidates.len(), take);
    for ci in chosen {
        let liker = &persons[candidates[ci] as usize];
        let lo = created.0.max(liker.creation_date.0);
        let delay = (rng.geometric(0.08) as i64 + 1) * MILLIS_PER_HOUR;
        let creation_date = if lo + delay > state.end_millis {
            state.uniform_after(&mut rng, lo)
        } else {
            state.clamp(lo + delay, lo)
        };
        sink.like(RawLike { person: liker.id, message: id, creation_date });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::scale::ScaleFactor;

    fn gen() -> RawGraph {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 120;
        crate::generate(&c)
    }

    #[test]
    fn every_person_has_a_wall() {
        let g = gen();
        let walls = g.forums.iter().filter(|f| f.kind == ForumKind::Wall).count();
        assert_eq!(walls, g.persons.len());
    }

    #[test]
    fn posts_are_in_forums_and_comments_are_not() {
        let g = gen();
        let mut posts = 0;
        let mut comments = 0;
        for m in &g.messages {
            match m.kind {
                MessageKind::Post => {
                    posts += 1;
                    assert!(m.forum.is_some());
                    assert!(m.reply_of.is_none());
                    assert_eq!(m.root_post, m.id);
                }
                MessageKind::Comment => {
                    comments += 1;
                    assert!(m.forum.is_none());
                    assert!(m.reply_of.is_some());
                    assert_ne!(m.root_post, m.id);
                }
            }
        }
        assert!(posts > 0 && comments > 0, "posts {posts} comments {comments}");
    }

    #[test]
    fn image_posts_have_no_content_and_vice_versa() {
        let g = gen();
        let mut images = 0;
        for m in &g.messages {
            match &m.image_file {
                Some(f) => {
                    images += 1;
                    assert!(m.content.is_empty(), "image post with content");
                    assert_eq!(m.length, 0);
                    assert!(f.ends_with(".jpg"));
                }
                None => {
                    assert!(!m.content.is_empty(), "text message without content");
                    assert_eq!(m.length as usize, m.content.len());
                }
            }
        }
        assert!(images > 0, "no image posts generated");
    }

    #[test]
    fn reply_trees_are_well_formed() {
        let g = gen();
        let by_id: FxHashMap<MessageId, &RawMessage> =
            g.messages.iter().map(|m| (m.id, m)).collect();
        for m in &g.messages {
            if let Some(parent) = m.reply_of {
                // Walk to the root; must terminate at a Post equal to
                // root_post.
                let mut cur = parent;
                let mut steps = 0;
                loop {
                    let rec = by_id[&cur];
                    match rec.reply_of {
                        Some(p) => cur = p,
                        None => break,
                    }
                    steps += 1;
                    assert!(steps < 100, "reply cycle");
                }
                assert_eq!(cur, m.root_post);
                assert_eq!(by_id[&cur].kind, MessageKind::Post);
            }
        }
    }

    #[test]
    fn likes_reference_existing_messages() {
        let g = gen();
        assert!(!g.likes.is_empty());
        let max_msg = g.messages.len() as u64;
        for l in &g.likes {
            assert!(l.message.0 < max_msg);
            assert!((l.person.0 as usize) < g.persons.len());
        }
        // No duplicate (person, message) likes.
        let mut pairs: Vec<(u64, u64)> =
            g.likes.iter().map(|l| (l.person.0, l.message.0)).collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(before, pairs.len(), "duplicate likes");
    }

    #[test]
    fn flashmob_events_concentrate_activity() {
        // Posts carrying a flashmob tag near its event time should make
        // that tag's temporal variance lower than the uniform background.
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 200;
        c.flashmob_post_fraction = 0.5;
        let world = StaticWorld::build(c.seed);
        let flashmobs = generate_flashmobs(&c, &world);
        assert!(!flashmobs.is_empty());
        let g = crate::generate(&c);
        // At least some posts must land within 2 days of some event peak
        // while sharing its tag.
        let mut hits = 0;
        for m in g.messages.iter().filter(|m| m.kind == MessageKind::Post) {
            for ev in &flashmobs {
                if m.tags.contains(&ev.tag)
                    && (m.creation_date.0 - ev.time.0).abs() <= 2 * MILLIS_PER_DAY
                {
                    hits += 1;
                    break;
                }
            }
        }
        assert!(hits > 5, "flashmob clustering not observed: {hits}");
    }

    #[test]
    fn membership_pairs_unique_per_forum() {
        let g = gen();
        let mut pairs: Vec<(u64, u64)> =
            g.memberships.iter().map(|m| (m.forum.0, m.person.0)).collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(before, pairs.len(), "duplicate memberships");
    }

    #[test]
    fn activity_correlates_with_degree() {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 400;
        let g = crate::generate(&c);
        let mut degree = vec![0usize; g.persons.len()];
        for k in &g.knows {
            degree[k.a.0 as usize] += 1;
            degree[k.b.0 as usize] += 1;
        }
        let mut msgs = vec![0usize; g.persons.len()];
        for m in &g.messages {
            msgs[m.creator.0 as usize] += 1;
        }
        // Compare mean messages for the top-degree quartile vs bottom.
        let mut idx: Vec<usize> = (0..g.persons.len()).collect();
        idx.sort_by_key(|&i| degree[i]);
        let q = g.persons.len() / 4;
        let low: f64 = idx[..q].iter().map(|&i| msgs[i] as f64).sum::<f64>() / q as f64;
        let high: f64 =
            idx[idx.len() - q..].iter().map(|&i| msgs[i] as f64).sum::<f64>() / q as f64;
        assert!(high > low * 1.5, "high-degree activity {high} vs low {low}");
    }

    /// The sink contract: forums precede their memberships/messages,
    /// parents precede replies, messages precede their likes, and
    /// message ids are emitted in strictly increasing order.
    #[test]
    fn sink_emission_order_is_dependency_safe() {
        use std::collections::HashSet;
        #[derive(Default)]
        struct OrderCheck {
            forums: HashSet<u64>,
            messages: HashSet<u64>,
            last_message: Option<u64>,
        }
        impl ActivitySink for OrderCheck {
            fn forum(&mut self, f: RawForum) {
                assert!(self.forums.insert(f.id.0), "forum {:?} emitted twice", f.id);
            }
            fn membership(&mut self, m: RawMembership) {
                assert!(self.forums.contains(&m.forum.0), "membership before forum");
            }
            fn message(&mut self, m: RawMessage) {
                if let Some(last) = self.last_message {
                    assert!(m.id.0 > last, "message ids not increasing");
                }
                self.last_message = Some(m.id.0);
                if let Some(f) = m.forum {
                    assert!(self.forums.contains(&f.0), "post before its forum");
                }
                if let Some(p) = m.reply_of {
                    assert!(self.messages.contains(&p.0), "comment before its parent");
                }
                assert!(self.messages.contains(&m.root_post.0) || m.root_post == m.id);
                self.messages.insert(m.id.0);
            }
            fn like(&mut self, l: RawLike) {
                assert!(self.messages.contains(&l.message.0), "like before message");
            }
        }

        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 150;
        let world = StaticWorld::build(c.seed);
        let persons = crate::person::generate_persons(&c, &world);
        let knows = crate::knows::generate_knows(&c, &persons);
        let mut check = OrderCheck::default();
        generate_activity_into(&c, &world, &persons, &knows, &mut check);
        assert!(check.messages.len() > 100);
    }
}
