//! `knows`-edge generation along three correlation dimensions
//! (spec §2.3.3.2, Figure 2.2 steps 3–5).
//!
//! The algorithm is the spec's windowed similarity procedure:
//!
//! 1. every person gets a target degree from the Facebook-like
//!    distribution, split across the three dimensions (study ≈ 45%,
//!    interests ≈ 45%, random ≈ 10% — "a predictable (but not fixed)
//!    average split between the reasons for creating edges");
//! 2. for each dimension, persons are sorted by a similarity key;
//! 3. walking the sorted array, each person picks partners at a
//!    geometric rank-distance within a window `W`, so similar persons
//!    (nearby in the sort) connect with high probability and distant
//!    ones almost never — reproducing homophily and its triangle excess.

use rustc_hash::FxHashSet;
use snb_core::datetime::{DateTime, MILLIS_PER_DAY};
use snb_core::dist::FacebookDegree;
use snb_core::rng::Rng;

use crate::graph::{RawKnows, RawPerson};
use crate::GeneratorConfig;

/// RNG stream tags for the knows passes.
const TAG_DEGREE: u64 = 10;
const TAG_DIM_BASE: u64 = 11;

/// Fraction of a person's degree budget assigned to each dimension.
const DIMENSION_SPLIT: [f64; 3] = [0.45, 0.45, 0.10];

/// Generates the full `knows` edge set.
pub fn generate_knows(config: &GeneratorConfig, persons: &[RawPerson]) -> Vec<RawKnows> {
    let n = persons.len();
    if n < 2 {
        return Vec::new();
    }
    let degree_dist =
        FacebookDegree::new(config.mean_knows_degree, config.max_knows_degree.min(n - 1).max(1));

    // Target degree per person (Facebook-like), split across dimensions.
    let mut budgets: Vec<[u32; 3]> = Vec::with_capacity(n);
    for p in persons {
        let mut rng = Rng::derive(config.seed, p.id.0, TAG_DEGREE);
        let d = degree_dist.sample(&mut rng) as f64;
        let mut split = [0u32; 3];
        for (dim, frac) in DIMENSION_SPLIT.iter().enumerate() {
            split[dim] = (d * frac).round() as u32;
        }
        if split.iter().all(|&s| s == 0) {
            split[2] = 1;
        }
        budgets.push(split);
    }

    let mut edges = Vec::new();
    let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
    for dim in 0..3u8 {
        run_dimension(config, persons, dim, &mut budgets, &mut seen, &mut edges);
    }
    top_up(config, persons, &mut budgets, &mut seen, &mut edges);
    edges
}

/// Final pass: whatever degree budget the windowed passes could not
/// place (window exhaustion at the array ends, partner budgets running
/// dry) is spent on uniformly random partners. Each placed edge is
/// attributed to the dimension that still held the most leftover budget
/// across the pair, so the reported dimension split keeps reflecting
/// *why* the edge was wanted. This keeps the realised mean close to the
/// configured mean without distorting the correlated structure.
fn top_up(
    config: &GeneratorConfig,
    persons: &[RawPerson],
    budgets: &mut [[u32; 3]],
    seen: &mut FxHashSet<(u64, u64)>,
    edges: &mut Vec<RawKnows>,
) {
    let mut leftover: Vec<u32> = budgets
        .iter()
        .enumerate()
        .filter(|(_, b)| b.iter().sum::<u32>() > 0)
        .map(|(i, _)| i as u32)
        .collect();
    let mut remaining: Vec<u32> = budgets.iter().map(|b| b.iter().sum()).collect();
    let mut rng = Rng::derive(config.seed, 0, 999);
    let total_budget: u64 = remaining.iter().map(|&r| r as u64).sum();
    let mut attempts = (total_budget * 6).max(leftover.len() as u64 * 16) as usize;
    while leftover.len() >= 2 && attempts > 0 {
        attempts -= 1;
        let i = rng.index(leftover.len());
        let mut j = rng.index(leftover.len());
        if i == j {
            j = (j + 1) % leftover.len();
        }
        let (pi, qi) = (leftover[i] as usize, leftover[j] as usize);
        let (a, b) = if persons[pi].id.0 < persons[qi].id.0 {
            (persons[pi].id, persons[qi].id)
        } else {
            (persons[qi].id, persons[pi].id)
        };
        if !seen.insert((a.0, b.0)) {
            continue;
        }
        // Attribute the edge to the dimension with the most leftover
        // budget across the pair; decrement each endpoint from its own
        // largest remaining dimension.
        let dimension = (0..3u8)
            .max_by_key(|&d| budgets[pi][d as usize] + budgets[qi][d as usize])
            .expect("three dimensions");
        for ix in [pi, qi] {
            let d = (0..3).max_by_key(|&d| budgets[ix][d]).expect("three dimensions");
            budgets[ix][d] = budgets[ix][d].saturating_sub(1);
        }
        remaining[pi] -= 1;
        remaining[qi] -= 1;
        let lo = persons[pi].creation_date.0.max(persons[qi].creation_date.0);
        let hi = config.end.at_midnight().0 - MILLIS_PER_DAY;
        let creation_date = DateTime(if lo >= hi {
            lo
        } else {
            // Front-biased: friendships tend to form soon after the
            // later person joins, keeping ~90% of edges before the
            // bulk/stream cut.
            let u = rng.next_f64();
            lo + ((hi - lo) as f64 * u * u * u) as i64
        });
        edges.push(RawKnows { a, b, creation_date, dimension });
        // Drop exhausted persons; remove the higher index first so the
        // lower one stays valid (lo_ix < hi_ix always, since i != j).
        let (hi_ix, lo_ix) = if i > j { (i, j) } else { (j, i) };
        if remaining[leftover[hi_ix] as usize] == 0 {
            leftover.swap_remove(hi_ix);
        }
        if remaining[leftover[lo_ix] as usize] == 0 {
            leftover.swap_remove(lo_ix);
        }
    }
    for b in budgets.iter_mut() {
        *b = [0; 3];
    }
}

/// The similarity key for a person in a given dimension. Persons with
/// equal/adjacent keys end up adjacent after sorting.
fn similarity_key(p: &RawPerson, dim: u8, seed: u64) -> u64 {
    match dim {
        0 => {
            // Study dimension: country, then university, then class year.
            let uni = p.study_at.map(|(u, _)| u.0 + 1).unwrap_or(0);
            let year = p.study_at.map(|(_, y)| y as u64).unwrap_or(0);
            // Tie-break with a per-person hash so equal keys are in a
            // deterministic but non-id order.
            let tie = Rng::derive(seed, p.id.0, 1000 + dim as u64).next_u64() >> 48;
            (p.country as u64) << 48 | uni << 32 | year << 16 | tie & 0xFFFF
        }
        1 => {
            // Interest dimension: dominant interest tag, then country.
            let tag = p.interests.iter().map(|t| t.0).min().unwrap_or(u64::MAX >> 16);
            let tie = Rng::derive(seed, p.id.0, 1000 + dim as u64).next_u64() >> 48;
            tag << 24 | (p.country as u64) << 16 | tie & 0xFFFF
        }
        _ => {
            // Random dimension: uniform noise.
            Rng::derive(seed, p.id.0, 1000 + dim as u64).next_u64()
        }
    }
}

/// Runs one sorted-window pass for dimension `dim`.
fn run_dimension(
    config: &GeneratorConfig,
    persons: &[RawPerson],
    dim: u8,
    budgets: &mut [[u32; 3]],
    seen: &mut FxHashSet<(u64, u64)>,
    edges: &mut Vec<RawKnows>,
) {
    let n = persons.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut keys: Vec<u64> = persons.iter().map(|p| similarity_key(p, dim, config.seed)).collect();
    order.sort_unstable_by_key(|&i| keys[i as usize]);
    // keys no longer needed in sorted form.
    keys.clear();

    let window = config.window.min(n - 1).max(1);
    // Geometric distance distribution: mean distance ~ window / 8 so
    // most picks are close neighbours but the tail reaches window edge.
    let p_geom = 1.0 / (window as f64 / 8.0 + 1.0);
    let di = dim as usize;

    for pos in 0..n {
        let pi = order[pos] as usize;
        let want = budgets[pi][di];
        if want == 0 {
            continue;
        }
        let mut rng = Rng::derive(config.seed, persons[pi].id.0, TAG_DIM_BASE + dim as u64);
        // Try a bounded number of picks; each pick selects a partner at
        // geometric distance ahead in the sorted order.
        let mut made = 0u32;
        let attempts = want as usize * 12 + 16;
        for _ in 0..attempts {
            if made >= want {
                break;
            }
            let dist = (rng.geometric(p_geom) + 1) as usize;
            // Pick ahead or behind in the similarity order.
            let qpos = if rng.chance(0.5) {
                pos.checked_add(dist).filter(|&q| q < n)
            } else {
                pos.checked_sub(dist)
            };
            let Some(qpos) = qpos else { continue };
            if dist > window {
                continue;
            }
            let qi = order[qpos] as usize;
            if budgets[qi][di] == 0 {
                continue;
            }
            let (a, b) = if persons[pi].id.0 < persons[qi].id.0 {
                (persons[pi].id, persons[qi].id)
            } else {
                (persons[qi].id, persons[pi].id)
            };
            if !seen.insert((a.0, b.0)) {
                continue;
            }
            budgets[pi][di] -= 1;
            budgets[qi][di] -= 1;
            made += 1;
            // Friendship date: after both joined, uniform up to window
            // end minus a safety day.
            let lo = persons[pi].creation_date.0.max(persons[qi].creation_date.0);
            let hi = config.end.at_midnight().0 - MILLIS_PER_DAY;
            let creation_date = DateTime(if lo >= hi {
                lo
            } else {
                // Front-biased: friendships tend to form soon after the
                // later person joins, keeping ~90% of edges before the
                // bulk/stream cut.
                let u = rng.next_f64();
                lo + ((hi - lo) as f64 * u * u * u) as i64
            });
            edges.push(RawKnows { a, b, creation_date, dimension: dim });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionaries::StaticWorld;
    use crate::person::generate_persons;
    use snb_core::scale::ScaleFactor;

    fn make(n: u64) -> (GeneratorConfig, Vec<RawPerson>) {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = n;
        let w = StaticWorld::build(c.seed);
        let p = generate_persons(&c, &w);
        (c, p)
    }

    fn adjacency(n: usize, edges: &[RawKnows]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for e in edges {
            adj[e.a.0 as usize].push(e.b.0 as usize);
            adj[e.b.0 as usize].push(e.a.0 as usize);
        }
        adj
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let (c, p) = make(500);
        let edges = generate_knows(&c, &p);
        assert!(!edges.is_empty());
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            assert_ne!(e.a, e.b, "self loop");
            assert!(e.a.0 < e.b.0, "edge not normalised");
            assert!(seen.insert((e.a.0, e.b.0)), "duplicate edge");
        }
    }

    #[test]
    fn mean_degree_near_target() {
        let (mut c, _) = make(1);
        c.persons = 2000;
        let w = StaticWorld::build(c.seed);
        let p = generate_persons(&c, &w);
        let edges = generate_knows(&c, &p);
        let mean = 2.0 * edges.len() as f64 / p.len() as f64;
        // The windowed pass can't always place every requested edge;
        // accept 55-105% of the nominal mean.
        assert!(
            mean > c.mean_knows_degree * 0.55 && mean < c.mean_knows_degree * 1.05,
            "mean degree {mean} vs target {}",
            c.mean_knows_degree
        );
    }

    #[test]
    fn homophily_produces_triangles() {
        // The correlated generator must beat an Erdos–Renyi graph of the
        // same density on triangle count — the spec's homophily claim.
        let (mut c, _) = make(1);
        c.persons = 1200;
        let w = StaticWorld::build(c.seed);
        let p = generate_persons(&c, &w);
        let edges = generate_knows(&c, &p);
        let n = p.len();
        let adj = adjacency(n, &edges);
        let mut sets: Vec<std::collections::HashSet<usize>> =
            adj.iter().map(|v| v.iter().copied().collect()).collect();
        for s in &mut sets {
            s.shrink_to_fit();
        }
        let mut triangles = 0u64;
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                if v <= u {
                    continue;
                }
                for &wv in &adj[v] {
                    if wv > v && sets[u].contains(&wv) {
                        triangles += 1;
                    }
                }
            }
        }
        // Expected triangles in G(n, m) random graph: C(n,3) p^3 with
        // p = 2m / (n(n-1)).
        let m = edges.len() as f64;
        let nf = n as f64;
        let pr = 2.0 * m / (nf * (nf - 1.0));
        let expected_random = nf * (nf - 1.0) * (nf - 2.0) / 6.0 * pr * pr * pr;
        assert!(
            triangles as f64 > 5.0 * expected_random,
            "triangles {triangles} vs random expectation {expected_random}"
        );
    }

    #[test]
    fn edges_split_across_dimensions() {
        let (c, p) = make(800);
        let edges = generate_knows(&c, &p);
        let mut per_dim = [0usize; 3];
        for e in &edges {
            per_dim[e.dimension as usize] += 1;
        }
        assert!(per_dim.iter().all(|&c| c > 0), "some dimension empty: {per_dim:?}");
        // Random dimension should be the smallest share.
        assert!(per_dim[2] < per_dim[0]);
        assert!(per_dim[2] < per_dim[1]);
    }

    #[test]
    fn degree_distribution_has_heavy_tail() {
        let (mut c, _) = make(1);
        c.persons = 2000;
        let w = StaticWorld::build(c.seed);
        let p = generate_persons(&c, &w);
        let edges = generate_knows(&c, &p);
        let adj = adjacency(p.len(), &edges);
        let max_deg = adj.iter().map(|v| v.len()).max().unwrap();
        let mean = 2.0 * edges.len() as f64 / p.len() as f64;
        assert!(max_deg as f64 > 3.0 * mean, "max {max_deg} vs mean {mean}");
    }

    #[test]
    fn deterministic() {
        let (c, p) = make(300);
        let e1 = generate_knows(&c, &p);
        let e2 = generate_knows(&c, &p);
        assert_eq!(e1.len(), e2.len());
        for (a, b) in e1.iter().zip(&e2) {
            assert_eq!((a.a, a.b, a.creation_date.0), (b.a, b.b, b.creation_date.0));
        }
    }
}
