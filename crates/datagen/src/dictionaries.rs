//! Embedded resource dictionaries.
//!
//! The official Datagen ships DBpedia extracts (names per country, tags,
//! companies, IP zones, …; spec Table 2.11). Those files are not
//! redistributable here, so this module embeds *synthetic* dictionaries
//! with the same structure the generator depends on:
//!
//! * a fixed dictionary `D` per property,
//! * a per-country ranking function `R` (a deterministic permutation of
//!   `D` seeded by the country, so rankings differ across countries but
//!   are stable across runs),
//! * a Zipf-shaped probability function `F` over ranks.
//!
//! This preserves the benchmark-relevant behaviour — skew, country
//! correlation of names/tags, a tag-class hierarchy, a tag–tag
//! correlation structure — without the DBpedia payload. The substitution
//! is documented in `DESIGN.md` §2.

use snb_core::dist::RankedSampler;
use snb_core::model::{PlaceId, TagClassId, TagId};
use snb_core::rng::Rng;

/// A continent entry.
pub struct ContinentSpec {
    /// Continent name.
    pub name: &'static str,
}

/// All continents.
pub const CONTINENTS: &[ContinentSpec] = &[
    ContinentSpec { name: "Asia" },
    ContinentSpec { name: "Europe" },
    ContinentSpec { name: "Africa" },
    ContinentSpec { name: "North_America" },
    ContinentSpec { name: "South_America" },
    ContinentSpec { name: "Oceania" },
];

/// A country entry: population weight drives how many Persons live there
/// (spec resource "Countries"), the IP prefix drives `locationIP` (spec
/// resource "IP Zones"), and the language list drives `Person.speaks`.
pub struct CountrySpec {
    /// Country name (underscored like DBpedia labels).
    pub name: &'static str,
    /// Index into [`CONTINENTS`].
    pub continent: usize,
    /// Relative population weight.
    pub population: f64,
    /// First octet of the country's synthetic IPv4 block.
    pub ip_prefix: u8,
    /// Languages spoken, most common first.
    pub languages: &'static [&'static str],
    /// Cities of the country, largest first.
    pub cities: &'static [&'static str],
}

/// All countries. Population weights approximate real relative sizes so
/// person-per-country skew matches the official generator's shape.
pub const COUNTRIES: &[CountrySpec] = &[
    CountrySpec {
        name: "China",
        continent: 0,
        population: 1370.0,
        ip_prefix: 1,
        languages: &["zh"],
        cities: &["Beijing", "Shanghai", "Guangzhou", "Shenzhen", "Chengdu", "Wuhan"],
    },
    CountrySpec {
        name: "India",
        continent: 0,
        population: 1250.0,
        ip_prefix: 2,
        languages: &["hi", "en"],
        cities: &["Mumbai", "Delhi", "Bangalore", "Chennai", "Kolkata", "Hyderabad"],
    },
    CountrySpec {
        name: "United_States",
        continent: 3,
        population: 320.0,
        ip_prefix: 3,
        languages: &["en"],
        cities: &["New_York", "Los_Angeles", "Chicago", "Houston", "Phoenix", "Seattle"],
    },
    CountrySpec {
        name: "Indonesia",
        continent: 0,
        population: 255.0,
        ip_prefix: 4,
        languages: &["id"],
        cities: &["Jakarta", "Surabaya", "Bandung", "Medan"],
    },
    CountrySpec {
        name: "Brazil",
        continent: 4,
        population: 205.0,
        ip_prefix: 5,
        languages: &["pt"],
        cities: &["Sao_Paulo", "Rio_de_Janeiro", "Brasilia", "Salvador"],
    },
    CountrySpec {
        name: "Pakistan",
        continent: 0,
        population: 190.0,
        ip_prefix: 6,
        languages: &["ur", "en"],
        cities: &["Karachi", "Lahore", "Faisalabad"],
    },
    CountrySpec {
        name: "Nigeria",
        continent: 2,
        population: 180.0,
        ip_prefix: 7,
        languages: &["en"],
        cities: &["Lagos", "Kano", "Ibadan"],
    },
    CountrySpec {
        name: "Bangladesh",
        continent: 0,
        population: 160.0,
        ip_prefix: 8,
        languages: &["bn"],
        cities: &["Dhaka", "Chittagong", "Khulna"],
    },
    CountrySpec {
        name: "Russia",
        continent: 1,
        population: 145.0,
        ip_prefix: 9,
        languages: &["ru"],
        cities: &["Moscow", "Saint_Petersburg", "Novosibirsk", "Yekaterinburg"],
    },
    CountrySpec {
        name: "Japan",
        continent: 0,
        population: 127.0,
        ip_prefix: 10,
        languages: &["ja"],
        cities: &["Tokyo", "Osaka", "Nagoya", "Sapporo"],
    },
    CountrySpec {
        name: "Mexico",
        continent: 3,
        population: 120.0,
        ip_prefix: 11,
        languages: &["es"],
        cities: &["Mexico_City", "Guadalajara", "Monterrey"],
    },
    CountrySpec {
        name: "Philippines",
        continent: 0,
        population: 100.0,
        ip_prefix: 12,
        languages: &["tl", "en"],
        cities: &["Manila", "Davao", "Cebu"],
    },
    CountrySpec {
        name: "Vietnam",
        continent: 0,
        population: 92.0,
        ip_prefix: 13,
        languages: &["vi"],
        cities: &["Ho_Chi_Minh_City", "Hanoi", "Da_Nang"],
    },
    CountrySpec {
        name: "Egypt",
        continent: 2,
        population: 90.0,
        ip_prefix: 14,
        languages: &["ar"],
        cities: &["Cairo", "Alexandria", "Giza"],
    },
    CountrySpec {
        name: "Germany",
        continent: 1,
        population: 81.0,
        ip_prefix: 15,
        languages: &["de", "en"],
        cities: &["Berlin", "Hamburg", "Munich", "Cologne"],
    },
    CountrySpec {
        name: "Turkey",
        continent: 0,
        population: 78.0,
        ip_prefix: 16,
        languages: &["tr"],
        cities: &["Istanbul", "Ankara", "Izmir"],
    },
    CountrySpec {
        name: "France",
        continent: 1,
        population: 66.0,
        ip_prefix: 17,
        languages: &["fr"],
        cities: &["Paris", "Marseille", "Lyon", "Toulouse"],
    },
    CountrySpec {
        name: "United_Kingdom",
        continent: 1,
        population: 65.0,
        ip_prefix: 18,
        languages: &["en"],
        cities: &["London", "Birmingham", "Manchester", "Glasgow"],
    },
    CountrySpec {
        name: "Italy",
        continent: 1,
        population: 60.0,
        ip_prefix: 19,
        languages: &["it"],
        cities: &["Rome", "Milan", "Naples", "Turin"],
    },
    CountrySpec {
        name: "South_Africa",
        continent: 2,
        population: 55.0,
        ip_prefix: 20,
        languages: &["en", "af"],
        cities: &["Johannesburg", "Cape_Town", "Durban"],
    },
    CountrySpec {
        name: "South_Korea",
        continent: 0,
        population: 51.0,
        ip_prefix: 21,
        languages: &["ko"],
        cities: &["Seoul", "Busan", "Incheon"],
    },
    CountrySpec {
        name: "Colombia",
        continent: 4,
        population: 48.0,
        ip_prefix: 22,
        languages: &["es"],
        cities: &["Bogota", "Medellin", "Cali"],
    },
    CountrySpec {
        name: "Spain",
        continent: 1,
        population: 46.0,
        ip_prefix: 23,
        languages: &["es"],
        cities: &["Madrid", "Barcelona", "Valencia"],
    },
    CountrySpec {
        name: "Argentina",
        continent: 4,
        population: 43.0,
        ip_prefix: 24,
        languages: &["es"],
        cities: &["Buenos_Aires", "Cordoba", "Rosario"],
    },
    CountrySpec {
        name: "Kenya",
        continent: 2,
        population: 46.0,
        ip_prefix: 25,
        languages: &["sw", "en"],
        cities: &["Nairobi", "Mombasa"],
    },
    CountrySpec {
        name: "Canada",
        continent: 3,
        population: 36.0,
        ip_prefix: 26,
        languages: &["en", "fr"],
        cities: &["Toronto", "Montreal", "Vancouver"],
    },
    CountrySpec {
        name: "Poland",
        continent: 1,
        population: 38.0,
        ip_prefix: 27,
        languages: &["pl"],
        cities: &["Warsaw", "Krakow", "Wroclaw"],
    },
    CountrySpec {
        name: "Australia",
        continent: 5,
        population: 24.0,
        ip_prefix: 28,
        languages: &["en"],
        cities: &["Sydney", "Melbourne", "Brisbane", "Perth"],
    },
    CountrySpec {
        name: "Netherlands",
        continent: 1,
        population: 17.0,
        ip_prefix: 29,
        languages: &["nl", "en"],
        cities: &["Amsterdam", "Rotterdam", "The_Hague"],
    },
    CountrySpec {
        name: "Hungary",
        continent: 1,
        population: 10.0,
        ip_prefix: 30,
        languages: &["hu", "en"],
        cities: &["Budapest", "Debrecen", "Szeged"],
    },
    CountrySpec {
        name: "Sweden",
        continent: 1,
        population: 10.0,
        ip_prefix: 31,
        languages: &["sv", "en"],
        cities: &["Stockholm", "Gothenburg", "Malmo"],
    },
    CountrySpec {
        name: "New_Zealand",
        continent: 5,
        population: 4.7,
        ip_prefix: 32,
        languages: &["en"],
        cities: &["Auckland", "Wellington", "Christchurch"],
    },
];

/// Male first-name pool (global dictionary `D`; countries permute it).
pub const MALE_NAMES: &[&str] = &[
    "Jan", "Wei", "Arjun", "Carlos", "Dmitri", "Hiro", "Ahmed", "John", "Pierre", "Hans", "Luca",
    "Pavel", "Kenji", "Rahul", "Miguel", "Omar", "David", "Peter", "Ivan", "Chen", "Ali", "Jose",
    "Viktor", "Tomas", "Andre", "Sven", "Lars", "Marco", "Adam", "Samuel", "Mehmet", "Otieno",
    "Kwame", "Santiago", "Mateo", "Akira", "Bao", "Duc", "Emil", "Felix", "Gabor", "Henrik",
    "Igor", "Jakob", "Karl", "Leon", "Milan", "Nikola", "Oscar", "Piotr", "Quang", "Ravi",
    "Stefan", "Tariq", "Umar", "Vlad", "Walter", "Xavier", "Yusuf", "Zoltan",
];

/// Female first-name pool.
pub const FEMALE_NAMES: &[&str] = &[
    "Maria",
    "Mei",
    "Priya",
    "Ana",
    "Olga",
    "Yuki",
    "Fatima",
    "Jane",
    "Claire",
    "Greta",
    "Sofia",
    "Elena",
    "Sakura",
    "Anita",
    "Lucia",
    "Layla",
    "Sarah",
    "Petra",
    "Irina",
    "Lin",
    "Aisha",
    "Carmen",
    "Vera",
    "Eva",
    "Amelie",
    "Astrid",
    "Ingrid",
    "Giulia",
    "Hannah",
    "Ruth",
    "Elif",
    "Wanjiru",
    "Abena",
    "Valentina",
    "Camila",
    "Hana",
    "Linh",
    "Thi",
    "Emma",
    "Frida",
    "Eszter",
    "Helga",
    "Katya",
    "Johanna",
    "Karin",
    "Lea",
    "Milena",
    "Nadia",
    "Oksana",
    "Paula",
    "Quyen",
    "Rani",
    "Stella",
    "Tara",
    "Umay",
    "Viola",
    "Wilma",
    "Xenia",
    "Yasmin",
    "Zsofia",
];

/// Surname pool.
pub const SURNAMES: &[&str] = &[
    "Smith",
    "Wang",
    "Kumar",
    "Garcia",
    "Ivanov",
    "Sato",
    "Hassan",
    "Brown",
    "Martin",
    "Muller",
    "Rossi",
    "Petrov",
    "Tanaka",
    "Sharma",
    "Lopez",
    "Ahmed",
    "Jones",
    "Novak",
    "Kowalski",
    "Li",
    "Khan",
    "Fernandez",
    "Sokolov",
    "Svoboda",
    "Dubois",
    "Larsson",
    "Hansen",
    "Ferrari",
    "Nagy",
    "Cohen",
    "Yilmaz",
    "Mwangi",
    "Mensah",
    "Silva",
    "Santos",
    "Yamamoto",
    "Nguyen",
    "Tran",
    "Weber",
    "Fischer",
    "Kovacs",
    "Andersson",
    "Volkov",
    "Schmidt",
    "Becker",
    "Novotny",
    "Horvat",
    "Popescu",
    "Olsen",
    "Wozniak",
    "Pham",
    "Patel",
    "Stefanov",
    "Demir",
    "Rashid",
    "Orlov",
    "Keller",
    "Moreau",
    "Osman",
    "Szabo",
];

/// Company-name stems; each country gets a slice of companies named
/// `<stem>_<country>` (spec resource "Companies by Country").
pub const COMPANY_STEMS: &[&str] = &[
    "Airlines",
    "Telecom",
    "Motors",
    "Energy",
    "Software",
    "Logistics",
    "Foods",
    "Pharma",
    "Textiles",
    "Mining",
    "Construction",
    "Media",
    "Insurance",
    "Shipping",
];

/// University-name patterns; cities get `University_of_<city>` and
/// `<city>_Institute_of_Technology`.
pub const UNIVERSITY_PATTERNS: usize = 2;

/// Browsers with usage weights (spec resource "Browsers").
pub const BROWSERS: &[(&str, f64)] = &[
    ("Firefox", 0.30),
    ("Chrome", 0.30),
    ("Internet Explorer", 0.20),
    ("Safari", 0.12),
    ("Opera", 0.08),
];

/// Email providers (spec resource "Emails").
pub const EMAIL_PROVIDERS: &[&str] =
    &["gmail.com", "yahoo.com", "hotmail.com", "zoho.com", "gmx.com", "mail.ru"];

/// The tag-class tree (spec resources "Tag Classes" / "Tag Hierarchies").
/// `(name, parent index)`; index 0 is the root `Thing` (its parent points
/// at itself and is not emitted).
pub const TAG_CLASSES: &[(&str, usize)] = &[
    ("Thing", 0),
    ("Agent", 0),
    ("Person", 1),
    ("Artist", 2),
    ("MusicalArtist", 3),
    ("Writer", 3),
    ("Politician", 2),
    ("OfficeHolder", 6),
    ("Monarch", 6),
    ("Athlete", 2),
    ("Scientist", 2),
    ("Organisation", 1),
    ("Band", 11),
    ("Company", 11),
    ("Work", 0),
    ("MusicalWork", 14),
    ("Album", 15),
    ("Single", 15),
    ("WrittenWork", 14),
    ("Book", 18),
    ("Film", 14),
    ("Place", 0),
    ("Country", 21),
    ("Settlement", 21),
    ("Event", 0),
    ("SportsEvent", 24),
    ("MilitaryConflict", 24),
];

/// Tags: `(name, class index into TAG_CLASSES)` (spec "Tags by Country").
pub const TAGS: &[(&str, usize)] = &[
    ("Wolfgang_Amadeus_Mozart", 4),
    ("Ludwig_van_Beethoven", 4),
    ("Johann_Sebastian_Bach", 4),
    ("Elvis_Presley", 4),
    ("David_Bowie", 4),
    ("Bob_Dylan", 4),
    ("Frank_Sinatra", 4),
    ("Aretha_Franklin", 4),
    ("Miles_Davis", 4),
    ("Louis_Armstrong", 4),
    ("Johnny_Cash", 4),
    ("Freddie_Mercury", 4),
    ("Michael_Jackson", 4),
    ("Madonna", 4),
    ("Prince", 4),
    ("William_Shakespeare", 5),
    ("Leo_Tolstoy", 5),
    ("Charles_Dickens", 5),
    ("Jane_Austen", 5),
    ("Mark_Twain", 5),
    ("Franz_Kafka", 5),
    ("Pablo_Neruda", 5),
    ("Rabindranath_Tagore", 5),
    ("Haruki_Murakami", 5),
    ("Gabriel_Garcia_Marquez", 5),
    ("Chinua_Achebe", 5),
    ("Mahatma_Gandhi", 6),
    ("Abraham_Lincoln", 7),
    ("Winston_Churchill", 7),
    ("Nelson_Mandela", 7),
    ("Napoleon_Bonaparte", 8),
    ("Julius_Caesar", 8),
    ("Augustus", 8),
    ("Genghis_Khan", 8),
    ("Cleopatra", 8),
    ("Queen_Victoria", 8),
    ("George_Washington", 7),
    ("Simon_Bolivar", 6),
    ("Kwame_Nkrumah", 6),
    ("Sun_Yat-sen", 6),
    ("Muhammad_Ali", 9),
    ("Pele", 9),
    ("Diego_Maradona", 9),
    ("Usain_Bolt", 9),
    ("Serena_Williams", 9),
    ("Roger_Federer", 9),
    ("Sachin_Tendulkar", 9),
    ("Albert_Einstein", 10),
    ("Isaac_Newton", 10),
    ("Marie_Curie", 10),
    ("Charles_Darwin", 10),
    ("Nikola_Tesla", 10),
    ("Alan_Turing", 10),
    ("Galileo_Galilei", 10),
    ("Ada_Lovelace", 10),
    ("The_Beatles", 12),
    ("The_Rolling_Stones", 12),
    ("Queen_(band)", 12),
    ("Pink_Floyd", 12),
    ("Led_Zeppelin", 12),
    ("ABBA", 12),
    ("U2", 12),
    ("Radiohead", 12),
    ("Nirvana", 12),
    ("IBM", 13),
    ("General_Motors", 13),
    ("Toyota", 13),
    ("Siemens", 13),
    ("Samsung", 13),
    ("Abbey_Road", 16),
    ("The_Dark_Side_of_the_Moon", 16),
    ("Thriller_(album)", 16),
    ("Imagine_(song)", 17),
    ("Hey_Jude", 17),
    ("Bohemian_Rhapsody", 17),
    ("War_and_Peace", 19),
    ("Don_Quixote", 19),
    ("Moby-Dick", 19),
    ("Hamlet", 19),
    ("The_Odyssey", 19),
    ("One_Hundred_Years_of_Solitude", 19),
    ("Pride_and_Prejudice", 19),
    ("Casablanca_(film)", 20),
    ("Citizen_Kane", 20),
    ("Seven_Samurai", 20),
    ("The_Godfather", 20),
    ("Metropolis_(film)", 20),
    ("Roman_Empire", 22),
    ("Ottoman_Empire", 22),
    ("British_Empire", 22),
    ("Han_Dynasty", 22),
    ("Athens", 23),
    ("Alexandria", 23),
    ("Kyoto", 23),
    ("Timbuktu", 23),
    ("Olympic_Games", 25),
    ("FIFA_World_Cup", 25),
    ("Tour_de_France", 25),
    ("Wimbledon", 25),
    ("World_War_I", 26),
    ("World_War_II", 26),
    ("Battle_of_Waterloo", 26),
    ("American_Civil_War", 26),
    ("Hundred_Years_War", 26),
];

/// Filler vocabulary for message text (spec resource "Tag Text").
pub const FILLER_WORDS: &[&str] = &[
    "about",
    "maybe",
    "great",
    "photo",
    "from",
    "with",
    "really",
    "think",
    "good",
    "time",
    "world",
    "today",
    "history",
    "music",
    "love",
    "found",
    "right",
    "interesting",
    "new",
    "amazing",
    "thanks",
    "agree",
    "read",
    "heard",
    "seen",
    "best",
    "ever",
    "wonder",
    "true",
];

/// A resolved static world: places, tag classes, tags, organisations —
/// materialised once per generation run.
pub struct StaticWorld {
    /// Place names; index = dense place index.
    pub place_names: Vec<String>,
    /// Place kinds aligned with `place_names`: continents first, then
    /// countries, then cities.
    pub place_is_city: Vec<bool>,
    /// For each country (index into `COUNTRIES`), its PlaceId.
    pub country_place: Vec<PlaceId>,
    /// For each country, the PlaceIds of its cities.
    pub city_places: Vec<Vec<PlaceId>>,
    /// For each continent, its PlaceId.
    pub continent_place: Vec<PlaceId>,
    /// Map city PlaceId -> country index.
    pub city_country: Vec<(PlaceId, usize)>,
    /// Universities: (OrganisationId raw value offset handled by caller).
    pub universities: Vec<UniversitySpecResolved>,
    /// Companies per country: (name, country index).
    pub companies: Vec<(String, usize)>,
    /// For each country, indices into `universities` located there.
    pub universities_by_country: Vec<Vec<usize>>,
    /// For each country, indices into `companies` located there.
    pub companies_by_country: Vec<Vec<usize>>,
    /// Country sampler by population weight.
    pub country_sampler: snb_core::dist::CumulativeTable,
    /// Per-country ranked name sampler (shared shape).
    pub name_rank_sampler: RankedSampler,
    /// Per-country ranked tag sampler (shared shape).
    pub tag_rank_sampler: RankedSampler,
    /// For each country: permutation of male-name indices (rank order).
    pub male_name_ranks: Vec<Vec<u16>>,
    /// For each country: permutation of female-name indices.
    pub female_name_ranks: Vec<Vec<u16>>,
    /// For each country: permutation of surname indices.
    pub surname_ranks: Vec<Vec<u16>>,
    /// For each country: permutation of tag indices (interest ranking).
    pub tag_ranks: Vec<Vec<u16>>,
    /// For each tag: correlated tags, most correlated first (Tag Matrix).
    pub tag_correlations: Vec<Vec<TagId>>,
    /// Browser sampler.
    pub browser_sampler: snb_core::dist::CumulativeTable,
    /// Distinct language codes in dictionary order.
    pub languages: Vec<&'static str>,
}

/// A university resolved to its city.
pub struct UniversitySpecResolved {
    /// Display name.
    pub name: String,
    /// City the university is located in.
    pub city: PlaceId,
    /// Country index of that city.
    pub country: usize,
}

impl StaticWorld {
    /// Materialises the static world. `seed` controls the per-country
    /// ranking permutations (kept equal to the datagen seed so the whole
    /// dataset is one deterministic function of the seed).
    pub fn build(seed: u64) -> StaticWorld {
        // Place ids: continents [0, C), countries [C, C+N), cities after.
        let mut place_names = Vec::new();
        let mut place_is_city = Vec::new();
        let mut continent_place = Vec::new();
        for c in CONTINENTS {
            continent_place.push(PlaceId(place_names.len() as u64));
            place_names.push(c.name.to_string());
            place_is_city.push(false);
        }
        let mut country_place = Vec::new();
        for c in COUNTRIES {
            country_place.push(PlaceId(place_names.len() as u64));
            place_names.push(c.name.to_string());
            place_is_city.push(false);
        }
        let mut city_places = Vec::new();
        let mut city_country = Vec::new();
        for (ci, c) in COUNTRIES.iter().enumerate() {
            let mut ids = Vec::new();
            for city in c.cities {
                let pid = PlaceId(place_names.len() as u64);
                place_names.push(city.to_string());
                place_is_city.push(true);
                city_country.push((pid, ci));
                ids.push(pid);
            }
            city_places.push(ids);
        }

        // Universities: two per first two cities of every country.
        let mut universities = Vec::new();
        let mut universities_by_country = vec![Vec::new(); COUNTRIES.len()];
        for (ci, c) in COUNTRIES.iter().enumerate() {
            for (cix, city) in c.cities.iter().enumerate().take(2) {
                let city_pid = city_places[ci][cix];
                let u1 = UniversitySpecResolved {
                    name: format!("University_of_{city}"),
                    city: city_pid,
                    country: ci,
                };
                universities_by_country[ci].push(universities.len());
                universities.push(u1);
                let u2 = UniversitySpecResolved {
                    name: format!("{city}_Institute_of_Technology"),
                    city: city_pid,
                    country: ci,
                };
                universities_by_country[ci].push(universities.len());
                universities.push(u2);
            }
        }

        // Companies: a rotating subset of stems per country.
        let mut companies = Vec::new();
        let mut companies_by_country = vec![Vec::new(); COUNTRIES.len()];
        for (ci, c) in COUNTRIES.iter().enumerate() {
            for k in 0..6 {
                let stem = COMPANY_STEMS[(ci + k * 5) % COMPANY_STEMS.len()];
                companies_by_country[ci].push(companies.len());
                companies.push((format!("{}_{stem}", c.name), ci));
            }
        }

        let country_sampler = snb_core::dist::CumulativeTable::new(
            &COUNTRIES.iter().map(|c| c.population).collect::<Vec<_>>(),
        );
        let browser_sampler =
            snb_core::dist::CumulativeTable::new(&BROWSERS.iter().map(|b| b.1).collect::<Vec<_>>());

        // Per-country ranking permutations (the ranking function R).
        let perm = |tag: u64, ci: usize, n: usize| -> Vec<u16> {
            let mut idx: Vec<u16> = (0..n as u16).collect();
            let mut rng = Rng::derive(seed, ci as u64, tag);
            rng.shuffle(&mut idx);
            idx
        };
        let male_name_ranks =
            (0..COUNTRIES.len()).map(|ci| perm(101, ci, MALE_NAMES.len())).collect();
        let female_name_ranks =
            (0..COUNTRIES.len()).map(|ci| perm(102, ci, FEMALE_NAMES.len())).collect();
        let surname_ranks = (0..COUNTRIES.len()).map(|ci| perm(103, ci, SURNAMES.len())).collect();
        let tag_ranks = (0..COUNTRIES.len()).map(|ci| perm(104, ci, TAGS.len())).collect();

        // Tag matrix: tags of the same class are strongly correlated;
        // ring-neighbours in the global dictionary weakly so.
        let mut tag_correlations: Vec<Vec<TagId>> = Vec::with_capacity(TAGS.len());
        for (ti, &(_, class)) in TAGS.iter().enumerate() {
            let mut corr: Vec<TagId> = TAGS
                .iter()
                .enumerate()
                .filter(|&(tj, &(_, cj))| tj != ti && cj == class)
                .map(|(tj, _)| TagId(tj as u64))
                .collect();
            for off in [1usize, 2] {
                let n = TAGS.len();
                for cand in [(ti + off) % n, (ti + n - off) % n] {
                    let cid = TagId(cand as u64);
                    if cand != ti && !corr.contains(&cid) {
                        corr.push(cid);
                    }
                }
            }
            tag_correlations.push(corr);
        }

        let mut languages: Vec<&'static str> = Vec::new();
        for c in COUNTRIES {
            for l in c.languages {
                if !languages.contains(l) {
                    languages.push(l);
                }
            }
        }

        StaticWorld {
            place_names,
            place_is_city,
            country_place,
            city_places,
            continent_place,
            city_country,
            universities,
            companies,
            universities_by_country,
            companies_by_country,
            country_sampler,
            name_rank_sampler: RankedSampler::new(MALE_NAMES.len(), 0.9),
            tag_rank_sampler: RankedSampler::new(TAGS.len(), 0.9),
            male_name_ranks,
            female_name_ranks,
            surname_ranks,
            tag_ranks,
            tag_correlations,
            browser_sampler,
            languages,
        }
    }

    /// Total number of places (continents + countries + cities).
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// The country index of a city place id, if it is a city.
    pub fn country_of_city(&self, city: PlaceId) -> Option<usize> {
        self.city_country.iter().find(|(p, _)| *p == city).map(|&(_, c)| c)
    }

    /// Samples a tag correlated with the country ranking (the spec's
    /// country-correlated interests).
    pub fn sample_tag_for_country(&self, country: usize, rng: &mut Rng) -> TagId {
        let rank = self.tag_rank_sampler.sample(rng);
        TagId(self.tag_ranks[country][rank] as u64)
    }

    /// The tag-class id a tag belongs to.
    pub fn tag_class_of(&self, tag: TagId) -> TagClassId {
        TagClassId(TAGS[tag.0 as usize].1 as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_class_indices_are_valid_and_acyclic() {
        for &(_, parent) in TAG_CLASSES {
            assert!(parent < TAG_CLASSES.len());
        }
        // Every class must reach the root by following parents.
        for (i, _) in TAG_CLASSES.iter().enumerate() {
            let mut cur = i;
            let mut steps = 0;
            while cur != 0 {
                cur = TAG_CLASSES[cur].1;
                steps += 1;
                assert!(steps < TAG_CLASSES.len(), "cycle at class {i}");
            }
        }
    }

    #[test]
    fn tags_reference_valid_classes() {
        for &(name, class) in TAGS {
            assert!(class < TAG_CLASSES.len(), "tag {name}");
            // Tags should attach to non-root classes for BI 20 to be
            // meaningful.
            assert_ne!(class, 0, "tag {name} attached to Thing");
        }
    }

    #[test]
    fn static_world_shape() {
        let w = StaticWorld::build(42);
        assert_eq!(w.country_place.len(), COUNTRIES.len());
        assert_eq!(w.continent_place.len(), CONTINENTS.len());
        let cities: usize = COUNTRIES.iter().map(|c| c.cities.len()).sum();
        assert_eq!(w.place_count(), CONTINENTS.len() + COUNTRIES.len() + cities);
        assert!(w.universities.len() >= COUNTRIES.len() * 2);
        assert_eq!(w.companies.len(), COUNTRIES.len() * 6);
        // Every city resolves back to its country.
        for (ci, cities) in w.city_places.iter().enumerate() {
            for &c in cities {
                assert_eq!(w.country_of_city(c), Some(ci));
            }
        }
    }

    #[test]
    fn rankings_are_permutations_and_country_specific() {
        let w = StaticWorld::build(7);
        let mut sorted = w.male_name_ranks[0].clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..MALE_NAMES.len() as u16).collect::<Vec<_>>());
        // Two different countries should rank names differently.
        assert_ne!(w.male_name_ranks[0], w.male_name_ranks[1]);
        // And the permutation is a pure function of the seed.
        let w2 = StaticWorld::build(7);
        assert_eq!(w.male_name_ranks[0], w2.male_name_ranks[0]);
        let w3 = StaticWorld::build(8);
        assert_ne!(
            (0..COUNTRIES.len()).map(|c| w.male_name_ranks[c].clone()).collect::<Vec<_>>(),
            (0..COUNTRIES.len()).map(|c| w3.male_name_ranks[c].clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tag_correlations_exclude_self_and_stay_in_range() {
        let w = StaticWorld::build(1);
        for (ti, corr) in w.tag_correlations.iter().enumerate() {
            assert!(!corr.is_empty(), "tag {ti} has no correlated tags");
            for t in corr {
                assert_ne!(t.0 as usize, ti);
                assert!((t.0 as usize) < TAGS.len());
            }
        }
    }

    #[test]
    fn country_sampler_skews_to_population() {
        let w = StaticWorld::build(3);
        let mut rng = Rng::new(5);
        let mut counts = vec![0usize; COUNTRIES.len()];
        for _ in 0..50_000 {
            counts[w.country_sampler.sample(&mut rng)] += 1;
        }
        // China (weight 1370) must dominate New Zealand (weight 4.7).
        assert!(counts[0] > counts[COUNTRIES.len() - 1] * 20);
    }
}
