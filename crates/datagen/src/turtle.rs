//! Turtle serializer (spec §2.3.4.2): RDF output for SPARQL systems.
//!
//! Emits the two files the spec names — `0_ldbc_socialnet_static_dbp.ttl`
//! (places, tags, tag classes, organisations) and `0_ldbc_socialnet.ttl`
//! (persons, forums, messages and their relations) — using the
//! `ldbc_socialnet` vocabulary namespace style of the official
//! serializer. Only records created strictly before the bulk/stream cut
//! are emitted, mirroring the CSV serializers.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use snb_core::datetime::DateTime;
use snb_core::model::MessageKind;
use snb_core::SnbResult;

use crate::dictionaries::{StaticWorld, BROWSERS, COUNTRIES, TAGS, TAG_CLASSES};
use crate::graph::RawGraph;

const PREFIXES: &str = "\
@prefix snvoc: <http://www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/> .
@prefix sn:    <http://www.ldbc.eu/ldbc_socialnet/1.0/data/> .
@prefix dbp:   <http://dbpedia.org/resource/> .
@prefix xsd:   <http://www.w3.org/2001/XMLSchema#> .
@prefix rdf:   <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs:  <http://www.w3.org/2000/01/rdf-schema#> .
";

/// Escapes a Turtle string literal.
fn ttl_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn dt_literal(dt: snb_core::DateTime) -> String {
    format!("\"{dt}\"^^xsd:dateTime")
}

/// Serializes the static and dynamic graphs as Turtle under
/// `root/social_network/`. Returns the two file names written.
pub fn serialize_turtle(
    graph: &RawGraph,
    world: &StaticWorld,
    cut: DateTime,
    root: &Path,
) -> SnbResult<Vec<String>> {
    let base = root.join("social_network");
    fs::create_dir_all(&base)?;
    write_static(world, &base)?;
    write_dynamic(graph, world, cut, &base)?;
    Ok(vec!["0_ldbc_socialnet_static_dbp.ttl".into(), "0_ldbc_socialnet.ttl".into()])
}

fn write_static(world: &StaticWorld, base: &Path) -> SnbResult<()> {
    let mut w = BufWriter::new(File::create(base.join("0_ldbc_socialnet_static_dbp.ttl"))?);
    writeln!(w, "{PREFIXES}")?;
    for (pid, name) in world.place_names.iter().enumerate() {
        let kind = if pid < world.continent_place.len() {
            "Continent"
        } else if pid < world.continent_place.len() + world.country_place.len() {
            "Country"
        } else {
            "City"
        };
        writeln!(w, "sn:place{pid} rdf:type snvoc:{kind} ;")?;
        writeln!(w, "    snvoc:id \"{pid}\"^^xsd:long ;")?;
        writeln!(w, "    rdfs:label {} .", ttl_str(name))?;
        if kind == "Country" {
            let ci = pid - world.continent_place.len();
            writeln!(
                w,
                "sn:place{pid} snvoc:isPartOf sn:place{} .",
                world.continent_place[COUNTRIES[ci].continent].0
            )?;
        } else if kind == "City" {
            if let Some(ci) = world.country_of_city(snb_core::model::PlaceId(pid as u64)) {
                writeln!(
                    w,
                    "sn:place{pid} snvoc:isPartOf sn:place{} .",
                    world.country_place[ci].0
                )?;
            }
        }
    }
    for (ci, &(name, parent)) in TAG_CLASSES.iter().enumerate() {
        writeln!(w, "sn:tagclass{ci} rdf:type snvoc:TagClass ;")?;
        writeln!(w, "    rdfs:label {} .", ttl_str(name))?;
        if ci != 0 {
            writeln!(w, "sn:tagclass{ci} snvoc:isSubclassOf sn:tagclass{parent} .")?;
        }
    }
    for (ti, &(name, class)) in TAGS.iter().enumerate() {
        writeln!(w, "sn:tag{ti} rdf:type snvoc:Tag ;")?;
        writeln!(w, "    rdfs:label {} ;", ttl_str(name))?;
        writeln!(w, "    snvoc:hasType sn:tagclass{class} .")?;
    }
    for (ui, u) in world.universities.iter().enumerate() {
        writeln!(w, "sn:org{ui} rdf:type snvoc:University ;")?;
        writeln!(w, "    rdfs:label {} ;", ttl_str(&u.name))?;
        writeln!(w, "    snvoc:isLocatedIn sn:place{} .", u.city.0)?;
    }
    let uni_count = world.universities.len();
    for (ci, (name, country)) in world.companies.iter().enumerate() {
        let id = uni_count + ci;
        writeln!(w, "sn:org{id} rdf:type snvoc:Company ;")?;
        writeln!(w, "    rdfs:label {} ;", ttl_str(name))?;
        writeln!(w, "    snvoc:isLocatedIn sn:place{} .", world.country_place[*country].0)?;
    }
    w.flush()?;
    Ok(())
}

fn write_dynamic(
    graph: &RawGraph,
    world: &StaticWorld,
    cut: DateTime,
    base: &Path,
) -> SnbResult<()> {
    let in_bulk = |t: DateTime| t < cut;
    let mut w = BufWriter::new(File::create(base.join("0_ldbc_socialnet.ttl"))?);
    writeln!(w, "{PREFIXES}")?;
    for p in graph.persons.iter().filter(|p| in_bulk(p.creation_date)) {
        let id = p.id.0;
        writeln!(w, "sn:pers{id} rdf:type snvoc:Person ;")?;
        writeln!(w, "    snvoc:id \"{id}\"^^xsd:long ;")?;
        writeln!(w, "    snvoc:firstName {} ;", ttl_str(p.first_name))?;
        writeln!(w, "    snvoc:lastName {} ;", ttl_str(p.last_name))?;
        writeln!(w, "    snvoc:gender {} ;", ttl_str(p.gender.as_str()))?;
        writeln!(w, "    snvoc:birthday \"{}\"^^xsd:date ;", p.birthday)?;
        writeln!(w, "    snvoc:creationDate {} ;", dt_literal(p.creation_date))?;
        writeln!(w, "    snvoc:locationIP {} ;", ttl_str(&p.location_ip))?;
        writeln!(w, "    snvoc:browserUsed {} ;", ttl_str(BROWSERS[p.browser as usize].0))?;
        writeln!(w, "    snvoc:isLocatedIn sn:place{} .", p.city.0)?;
        for e in &p.emails {
            writeln!(w, "sn:pers{id} snvoc:email {} .", ttl_str(e))?;
        }
        for &l in &p.languages {
            writeln!(w, "sn:pers{id} snvoc:speaks {} .", ttl_str(world.languages[l as usize]))?;
        }
        for t in &p.interests {
            writeln!(w, "sn:pers{id} snvoc:hasInterest sn:tag{} .", t.0)?;
        }
        if let Some((org, year)) = p.study_at {
            writeln!(
                w,
                "sn:pers{id} snvoc:studyAt [ snvoc:hasOrganisation sn:org{} ; snvoc:classYear \"{year}\"^^xsd:int ] .",
                org.0
            )?;
        }
        for &(org, from) in &p.work_at {
            writeln!(
                w,
                "sn:pers{id} snvoc:workAt [ snvoc:hasOrganisation sn:org{} ; snvoc:workFrom \"{from}\"^^xsd:int ] .",
                org.0
            )?;
        }
    }
    for k in graph.knows.iter().filter(|k| in_bulk(k.creation_date)) {
        writeln!(
            w,
            "sn:pers{} snvoc:knows [ snvoc:hasPerson sn:pers{} ; snvoc:creationDate {} ] .",
            k.a.0,
            k.b.0,
            dt_literal(k.creation_date)
        )?;
    }
    for f in graph.forums.iter().filter(|f| in_bulk(f.creation_date)) {
        let id = f.id.0;
        writeln!(w, "sn:forum{id} rdf:type snvoc:Forum ;")?;
        writeln!(w, "    snvoc:title {} ;", ttl_str(&f.title))?;
        writeln!(w, "    snvoc:creationDate {} ;", dt_literal(f.creation_date))?;
        writeln!(w, "    snvoc:hasModerator sn:pers{} .", f.moderator.0)?;
        for t in &f.tags {
            writeln!(w, "sn:forum{id} snvoc:hasTag sn:tag{} .", t.0)?;
        }
    }
    for m in graph.memberships.iter().filter(|m| in_bulk(m.join_date)) {
        writeln!(
            w,
            "sn:forum{} snvoc:hasMember [ snvoc:hasPerson sn:pers{} ; snvoc:joinDate {} ] .",
            m.forum.0,
            m.person.0,
            dt_literal(m.join_date)
        )?;
    }
    for m in graph.messages.iter().filter(|m| in_bulk(m.creation_date)) {
        let (node, kind) = match m.kind {
            MessageKind::Post => (format!("sn:post{}", m.id.0), "Post"),
            MessageKind::Comment => (format!("sn:comm{}", m.id.0), "Comment"),
        };
        writeln!(w, "{node} rdf:type snvoc:{kind} ;")?;
        writeln!(w, "    snvoc:id \"{}\"^^xsd:long ;", m.id.0)?;
        writeln!(w, "    snvoc:creationDate {} ;", dt_literal(m.creation_date))?;
        writeln!(w, "    snvoc:locationIP {} ;", ttl_str(&m.location_ip))?;
        writeln!(w, "    snvoc:browserUsed {} ;", ttl_str(BROWSERS[m.browser as usize].0))?;
        writeln!(w, "    snvoc:length \"{}\"^^xsd:int ;", m.length)?;
        writeln!(w, "    snvoc:hasCreator sn:pers{} ;", m.creator.0)?;
        writeln!(w, "    snvoc:isLocatedIn sn:place{} .", m.country.0)?;
        if let Some(img) = &m.image_file {
            writeln!(w, "{node} snvoc:imageFile {} .", ttl_str(img))?;
        } else {
            writeln!(w, "{node} snvoc:content {} .", ttl_str(&m.content))?;
        }
        if let Some(l) = m.language {
            writeln!(w, "{node} snvoc:language {} .", ttl_str(world.languages[l as usize]))?;
        }
        if let Some(f) = m.forum {
            writeln!(w, "sn:forum{} snvoc:containerOf {node} .", f.0)?;
        }
        if let Some(parent) = m.reply_of {
            let parent_kind = graph.messages[parent.0 as usize].kind;
            let parent_node = match parent_kind {
                MessageKind::Post => format!("sn:post{}", parent.0),
                MessageKind::Comment => format!("sn:comm{}", parent.0),
            };
            writeln!(w, "{node} snvoc:replyOf {parent_node} .")?;
        }
        for t in &m.tags {
            writeln!(w, "{node} snvoc:hasTag sn:tag{} .", t.0)?;
        }
    }
    for l in graph.likes.iter().filter(|l| in_bulk(l.creation_date)) {
        let target = match graph.messages[l.message.0 as usize].kind {
            MessageKind::Post => format!("sn:post{}", l.message.0),
            MessageKind::Comment => format!("sn:comm{}", l.message.0),
        };
        writeln!(
            w,
            "sn:pers{} snvoc:likes [ snvoc:hasMessage {target} ; snvoc:creationDate {} ] .",
            l.person.0,
            dt_literal(l.creation_date)
        )?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratorConfig;

    #[test]
    fn turtle_output_is_well_formed_enough() {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 40;
        let world = StaticWorld::build(c.seed);
        let graph = crate::generate(&c);
        let dir = std::env::temp_dir().join(format!("snb_ttl_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let files = serialize_turtle(&graph, &world, c.stream_cut(), &dir).unwrap();
        assert_eq!(files.len(), 2);
        for f in &files {
            let content = fs::read_to_string(dir.join("social_network").join(f)).unwrap();
            assert!(content.starts_with("@prefix snvoc:"));
            // Every statement line ends in ';' or '.' — a crude
            // well-formedness check that catches missing terminators.
            for line in content.lines().filter(|l| !l.is_empty() && !l.starts_with('@')) {
                assert!(line.ends_with(';') || line.ends_with('.'), "unterminated line: {line}");
            }
        }
        // The dynamic file mentions all bulk persons.
        let dynamic = fs::read_to_string(dir.join("social_network/0_ldbc_socialnet.ttl")).unwrap();
        let cut = c.stream_cut();
        for p in graph.persons.iter().filter(|p| p.creation_date < cut) {
            assert!(dynamic.contains(&format!("sn:pers{} rdf:type", p.id.0)));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping() {
        assert_eq!(ttl_str("plain"), "\"plain\"");
        assert_eq!(ttl_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(ttl_str("line\nbreak"), "\"line\\nbreak\"");
    }
}
