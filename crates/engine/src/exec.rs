//! Morsel-driven intra-query parallelism (choke points CP-1.x/CP-3.x).
//!
//! The BI workload is scan- and aggregation-bound; the scalable way to
//! run it is to split every large scan into fixed-size **morsels** and
//! fan them out over a worker set, as the SNB papers assume any serious
//! SUT does. [`QueryContext`] is the execution seam: one per query
//! stream, carrying the worker-count knob (`SNB_THREADS` or driver
//! config) and the morsel size. Workers are a **persistent pool** of
//! `std::thread` threads owned by the context (no external runtime):
//! they park on a condvar between queries, so a parallel call costs a
//! wake-up rather than a thread spawn — essential at BI's microsecond
//! query latencies. Every primitive is built so the result is
//! **bit-identical for any thread count**:
//!
//! * [`QueryContext::par_scan`] — order-preserving chunked collection:
//!   each morsel's output is stitched back in morsel order, so the
//!   output equals the sequential scan exactly;
//! * [`QueryContext::par_map_reduce`] — per-worker accumulators (the
//!   reusable scratch arena: one `FxHashMap` or counter set per worker,
//!   alive across all of that worker's morsels) merged on the calling
//!   thread in ascending worker order. Deterministic whenever the merge
//!   is associative and commutative in exact arithmetic (integer sums,
//!   max/min, set union) — which is what every BI aggregation uses;
//!   floating-point finalisation happens after the merge;
//! * [`QueryContext::par_topk`] — per-worker bounded [`TopK`] heaps
//!   merged in worker order. Deterministic whenever the sort key is
//!   total (the spec's composite keys all end in a unique id or name
//!   tie-breaker).
//!
//! Morsels are **partition-aligned and contiguous**: `0..n` is first
//! split into `partitions` contiguous spans (the scan-side view of the
//! store's horizontal shards — `SNB_PARTITIONS`), each span is cut
//! into morsels, and worker `w` takes the contiguous morsel run
//! `[w·M/T, (w+1)·M/T)`. No morsel straddles a partition boundary, so
//! a worker touches one dense locality region instead of striding the
//! whole column (the NUMA-friendly replacement for the earlier
//! round-robin assignment). The assignment — and therefore each
//! worker's partial — is a pure function of `(n, threads, partitions,
//! morsel)`, never of thread timing, and each worker's elements form
//! one ascending contiguous range, so `par_scan`'s stitch is plain
//! concatenation in worker order.

use crate::metrics::QueryMetrics;
use crate::topk::TopK;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Default morsel size: big enough to amortise dispatch, small enough
/// to balance skew (64k messages split into ~16 morsels per worker at
/// SF 0.01 already).
pub const DEFAULT_MORSEL: usize = 4096;

/// Environment variable overriding the worker count (`0` = all cores).
pub const THREADS_ENV: &str = "SNB_THREADS";

/// Environment variable setting the scan partition count (unset/`0` =
/// `1`). Morsels never straddle a partition boundary; results are
/// identical for any value.
pub const PARTITIONS_ENV: &str = "SNB_PARTITIONS";

/// Per-stream execution context: worker count + morsel size + the
/// persistent worker pool.
///
/// Construction spawns `threads - 1` pool workers (the calling thread
/// is always worker 0); the driver builds one per query stream and
/// reuses it for every query of that stream, so the pool is paid for
/// once per stream, not per query. Clones share the pool.
#[derive(Clone)]
pub struct QueryContext {
    threads: usize,
    partitions: usize,
    morsel: usize,
    profiling: bool,
    pool: Option<Arc<Pool>>,
    metrics: Arc<QueryMetrics>,
    /// The published store version this context is bound to, if any —
    /// set per request by the service tier so the whole query runs
    /// against one immutable snapshot (see `snb_store::snapshot`).
    snapshot: Option<snb_store::StoreSnapshot>,
}

impl std::fmt::Debug for QueryContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryContext")
            .field("threads", &self.threads)
            .field("partitions", &self.partitions)
            .field("morsel", &self.morsel)
            .field("profiling", &self.profiling)
            .finish()
    }
}

impl QueryContext {
    /// Context with an explicit worker count (`0` = all cores).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { available_cores() } else { threads };
        let pool = (threads > 1).then(|| Arc::new(Pool::start(threads - 1)));
        QueryContext {
            threads,
            partitions: 1,
            morsel: DEFAULT_MORSEL,
            profiling: false,
            pool,
            metrics: Arc::new(QueryMetrics::new(threads)),
            snapshot: None,
        }
    }

    /// Context that always runs inline on the calling thread.
    pub fn single_threaded() -> Self {
        QueryContext {
            threads: 1,
            partitions: 1,
            morsel: DEFAULT_MORSEL,
            profiling: false,
            pool: None,
            metrics: Arc::new(QueryMetrics::new(1)),
            snapshot: None,
        }
    }

    /// Context configured from `SNB_THREADS` (unset/`0` = all cores)
    /// and `SNB_PARTITIONS` (unset/`0` = one partition).
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        let partitions = std::env::var(PARTITIONS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        QueryContext::new(threads).with_partitions(partitions)
    }

    /// The process-wide default context (first `from_env` wins), used by
    /// query entry points not handed an explicit context.
    pub fn global() -> &'static QueryContext {
        static GLOBAL: OnceLock<QueryContext> = OnceLock::new();
        GLOBAL.get_or_init(QueryContext::from_env)
    }

    /// Overrides the morsel size (mainly for tests and benchmarks).
    pub fn with_morsel(mut self, morsel: usize) -> Self {
        self.morsel = morsel.max(1);
        self
    }

    /// Sets the scan partition count (`0` = `1`). Scans are split into
    /// this many contiguous spans before morselisation; results are
    /// identical for any value — only locality changes.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Scan partition count.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Enables profiling: per-worker busy times are measured around
    /// every dispatched worker share. The always-on operator counters
    /// are unaffected — this gates only the timed instrumentation, so
    /// benchmark runs with profiling off pay no `Instant` reads.
    pub fn with_profiling(mut self, profiling: bool) -> Self {
        self.profiling = profiling;
        self
    }

    /// Whether profiling (timed instrumentation) is enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Binds this context to one published store version: queries run
    /// through the bound context (`snb_bi::run_bound` and friends) read
    /// that immutable snapshot, never a live store reference. Binding
    /// is per clone — the pool and metrics stay shared.
    pub fn with_snapshot(mut self, snapshot: snb_store::StoreSnapshot) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// The bound store snapshot, if any.
    pub fn snapshot(&self) -> Option<&snb_store::StoreSnapshot> {
        self.snapshot.as_ref()
    }

    /// The bound snapshot's published version counter, if bound —
    /// stamped into access-log records by the service tier.
    pub fn store_version(&self) -> Option<u64> {
        self.snapshot.as_ref().map(|s| s.version())
    }

    /// The operator-metrics counter set shared by every clone of this
    /// context (one per driver stream).
    pub fn metrics(&self) -> &QueryMetrics {
        &self.metrics
    }

    /// Worker count this context fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Morsel size in elements.
    pub fn morsel(&self) -> usize {
        self.morsel
    }

    /// The morsel ranges a scan over `n` elements is split into:
    /// `0..n` is cut into `partitions` contiguous spans, each span into
    /// morsels, so no morsel straddles a partition boundary. With one
    /// partition this is exactly [`chunk_ranges`]`(n, morsel)`.
    pub fn morsels(&self, n: usize) -> impl Iterator<Item = Range<usize>> + '_ {
        self.plan(n).into_iter()
    }

    /// The partition-aligned morsel plan for `n` elements, ascending
    /// and contiguous (`plan[i].end == plan[i+1].start`).
    fn plan(&self, n: usize) -> Vec<Range<usize>> {
        let parts = self.partitions;
        let mut morsels = Vec::with_capacity(n.div_ceil(self.morsel) + parts);
        for p in 0..parts {
            let span_hi = (p + 1) * n / parts;
            let mut lo = p * n / parts;
            while lo < span_hi {
                let hi = (lo + self.morsel).min(span_hi);
                morsels.push(lo..hi);
                lo = hi;
            }
        }
        morsels
    }

    /// Number of workers actually used for a plan of `m` morsels
    /// (never more than one worker per morsel).
    fn workers_for(&self, m: usize) -> usize {
        self.threads.min(m).max(1)
    }

    /// Morsel-parallel fold + deterministic merge.
    ///
    /// Each worker folds its contiguous partition-aligned run of
    /// morsels into its own accumulator (created by `identity`, reused
    /// across the worker's morsels — the per-worker scratch arena); the
    /// calling thread then merges the partials in ascending worker
    /// order. The result is identical for every thread and partition
    /// count iff `merge` is associative and commutative in exact
    /// arithmetic — keep floats out of the accumulator and finalise
    /// after the call.
    pub fn par_map_reduce<A, I, F, M>(&self, n: usize, identity: I, fold: F, merge: M) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, Range<usize>) + Sync,
        M: Fn(&mut A, A),
    {
        let plan = self.plan(n);
        let workers = self.workers_for(plan.len());
        self.metrics.note_par_call(plan.len() as u64, n as u64);
        if workers == 1 {
            let mut acc = identity();
            if n > 0 {
                let started = self.profiling.then(Instant::now);
                fold(&mut acc, 0..n);
                if let Some(t0) = started {
                    self.metrics.add_worker_busy(0, t0.elapsed());
                }
            }
            return acc;
        }
        let partials = self.run_partials(&plan, workers, &identity, &fold);
        let mut partials = partials.into_iter();
        let mut acc = partials.next().expect("at least one worker");
        for p in partials {
            merge(&mut acc, p);
        }
        acc
    }

    /// Order-preserving parallel scan: `emit` pushes the rows a morsel
    /// produces; each worker's morsel run is contiguous and ascending,
    /// so its output Vec is already in scan order and the stitch is
    /// plain concatenation in worker order. The result equals the
    /// sequential scan **exactly**, for any thread and partition count
    /// — no merge-semantics caveat.
    pub fn par_scan<T, F>(&self, n: usize, emit: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Vec<T>, Range<usize>) + Sync,
    {
        let plan = self.plan(n);
        let workers = self.workers_for(plan.len());
        self.metrics.note_par_call(plan.len() as u64, n as u64);
        if workers == 1 {
            let mut out = Vec::new();
            if n > 0 {
                let started = self.profiling.then(Instant::now);
                emit(&mut out, 0..n);
                if let Some(t0) = started {
                    self.metrics.add_worker_busy(0, t0.elapsed());
                }
            }
            return out;
        }
        let per_worker = self.run_partials(&plan, workers, &Vec::<T>::new, &emit);
        let mut out = Vec::with_capacity(per_worker.iter().map(Vec::len).sum());
        for part in per_worker {
            out.extend(part);
        }
        out
    }

    /// Morsel-parallel top-k: each worker fills a bounded heap over its
    /// morsels; partial heaps merge in worker order. Deterministic for
    /// any thread and partition count iff the key is total (ends in a
    /// unique tie-breaker), which the spec's composite sort keys
    /// guarantee.
    pub fn par_topk<K, T, F>(&self, n: usize, k: usize, fill: F) -> TopK<K, T>
    where
        K: Ord + Clone + Send,
        T: Send,
        F: Fn(&mut TopK<K, T>, Range<usize>) + Sync,
    {
        self.par_map_reduce(
            n,
            || TopK::new(k),
            |tk, range| fill(tk, range),
            |acc, partial| acc.merge_from(partial),
        )
    }

    /// Fans the morsel plan out over the pool in contiguous per-worker
    /// runs — worker `w` folds morsels `[w·M/T, (w+1)·M/T)`, one dense
    /// locality region per worker (the calling thread takes worker 0's
    /// run); returns the private accumulators in worker order.
    fn run_partials<A, I, F>(
        &self,
        plan: &[Range<usize>],
        workers: usize,
        identity: &I,
        fold: &F,
    ) -> Vec<A>
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, Range<usize>) + Sync,
    {
        let m = plan.len();
        let profiling = self.profiling;
        let metrics = &self.metrics;
        let partials: Vec<Mutex<Option<A>>> = (0..workers).map(|_| Mutex::new(None)).collect();
        let task = |w: usize| {
            let started = profiling.then(Instant::now);
            let mut acc = identity();
            for morsel in &plan[w * m / workers..(w + 1) * m / workers] {
                fold(&mut acc, morsel.clone());
            }
            *partials[w].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(acc);
            if let Some(t0) = started {
                metrics.add_worker_busy(w, t0.elapsed());
            }
        };
        match &self.pool {
            Some(pool) if workers > 1 => pool.dispatch(workers, &task),
            _ => task(0),
        }
        partials
            .into_iter()
            .map(|p| {
                p.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("worker completed")
            })
            .collect()
    }
}

/// A raw fat pointer to a borrowed job closure, made `Send` so pool
/// workers can pick it up. Safety rests on [`Pool::dispatch`]: it does
/// not return (or unwind) until every participating worker has finished
/// calling the closure, so the borrow outlives all uses.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}

struct Job {
    task: TaskPtr,
    /// Workers participating in this job; pool worker `w` runs the task
    /// iff `w < participants` (worker 0 is the dispatching thread).
    participants: usize,
}

struct PoolState {
    job: Option<Job>,
    /// Panic payload carried from a worker back to the dispatcher.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolShared {
    /// Bumped once per dispatch (inside the `state` lock, so parked
    /// workers cannot miss it); workers detect new jobs by comparing
    /// against the last epoch they observed.
    epoch: AtomicU64,
    /// Pool workers still running the current job.
    remaining: AtomicUsize,
    shutdown: AtomicBool,
    state: Mutex<PoolState>,
    /// Workers park here between jobs (after the spin phase).
    work_cv: Condvar,
    /// The dispatcher parks here until `remaining` hits zero.
    done_cv: Condvar,
}

/// Iterations of the spin phase before parking on the condvar. Back-to-
/// back queries in a stream hand jobs to still-spinning workers in
/// nanoseconds instead of paying a futex wake per parallel call; the
/// periodic `yield_now` keeps the spin harmless when workers outnumber
/// free cores.
const SPIN_ROUNDS: u32 = 1 << 16;

/// One spin iteration: mostly `spin_loop` hints, with a scheduler yield
/// every 64th round so a spinner never starves the thread doing work.
fn spin_once(i: u32) {
    if i.is_multiple_of(64) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// Persistent worker pool: `size` parked threads with fixed worker
/// indices `1..=size`. One job runs at a time (`dispatch` serialises
/// callers), matching the one-context-per-stream driver design.
struct Pool {
    shared: Arc<PoolShared>,
    /// Serialises dispatches so a context shared across threads (e.g.
    /// the global one) stays safe: the single-job state never sees two
    /// concurrent jobs.
    dispatch_lock: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn start(size: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            state: Mutex::new(PoolState { job: None, panic: None }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..=size)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Pool::worker_loop(&shared, me))
            })
            .collect();
        Pool { shared, dispatch_lock: Mutex::new(()), handles }
    }

    fn worker_loop(shared: &PoolShared, me: usize) {
        let mut last_seen = 0u64;
        loop {
            // Spin phase: catch the next job without a futex round-trip.
            let mut spins = 0u32;
            while shared.epoch.load(Ordering::Acquire) == last_seen
                && !shared.shutdown.load(Ordering::Relaxed)
                && spins < SPIN_ROUNDS
            {
                spin_once(spins);
                spins += 1;
            }
            // Park phase. The epoch is only bumped inside the `state`
            // lock, so re-checking it under the lock cannot miss a wake.
            if shared.epoch.load(Ordering::Acquire) == last_seen {
                let mut st = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                while shared.epoch.load(Ordering::Acquire) == last_seen
                    && !shared.shutdown.load(Ordering::Relaxed)
                {
                    st = shared.work_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let (ptr, participants) = {
                let st = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                last_seen = shared.epoch.load(Ordering::Acquire);
                // A job can only be absent here if it completed without
                // this worker (it was not a participant); just move on.
                match st.job.as_ref() {
                    Some(job) => (job.task, job.participants),
                    None => continue,
                }
            };
            if me >= participants {
                continue;
            }
            // SAFETY: `dispatch` holds the borrow alive until
            // `remaining` reaches zero, which happens strictly after
            // this call returns.
            let task = unsafe { &*ptr.0 };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(me)));
            if let Err(payload) = result {
                shared
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .panic
                    .get_or_insert(payload);
            }
            if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Empty critical section pairs with the dispatcher's
                // park: it either sees zero before sleeping or is
                // already inside `wait` when this notify fires.
                drop(shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
                shared.done_cv.notify_all();
            }
        }
    }

    /// Runs `task(0)` on the calling thread and `task(1..participants)`
    /// on pool workers; returns only after every participant finished.
    fn dispatch(&self, participants: usize, task: &(dyn Fn(usize) + Sync)) {
        debug_assert!(participants >= 2 && participants <= self.handles.len() + 1);
        let _serial = self.dispatch_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let mut st =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            // SAFETY of the transmute: only the lifetime is erased; the
            // wait below keeps the referent alive past every use.
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    task,
                )
            };
            st.job = Some(Job { task: TaskPtr(erased as *const _), participants });
            self.shared.remaining.store(participants - 1, Ordering::Release);
            self.shared.epoch.fetch_add(1, Ordering::Release);
            self.shared.work_cv.notify_all();
        }
        // The dispatcher is worker 0. Catch a panic so we still wait for
        // the pool workers before unwinding — they borrow `task`.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(0)));
        // Spin for stragglers first (they typically finish within the
        // dispatcher's own share), then park on the condvar.
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) > 0 && spins < SPIN_ROUNDS {
            spin_once(spins);
            spins += 1;
        }
        if self.shared.remaining.load(Ordering::Acquire) > 0 {
            let mut st =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            while self.shared.remaining.load(Ordering::Acquire) > 0 {
                st =
                    self.shared.done_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let mut st = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.job = None;
        let worker_panic = st.panic.take();
        drop(st);
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Lock-paired notify so a worker between its epoch check and
            // its `wait` cannot miss the shutdown signal.
            drop(self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Default for QueryContext {
    fn default() -> Self {
        QueryContext::from_env()
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Splits `0..n` into chunks of at most `size` elements.
pub fn chunk_ranges(n: usize, size: usize) -> impl Iterator<Item = Range<usize>> {
    let size = size.max(1);
    (0..n.div_ceil(size)).map(move |c| c * size..((c + 1) * size).min(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(threads: usize) -> QueryContext {
        QueryContext::new(threads).with_morsel(7)
    }

    #[test]
    fn par_scan_equals_sequential_for_any_thread_count() {
        let n = 1000usize;
        let seq: Vec<usize> = (0..n).filter(|x| x % 3 == 0).collect();
        for threads in [1, 2, 3, 4, 8] {
            let got = ctx(threads).par_scan(n, |out, range| {
                out.extend(range.filter(|x| x % 3 == 0));
            });
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_reduce_equals_sequential_fold() {
        let n = 12_345usize;
        let expect: u64 = (0..n as u64).map(|x| x * x % 97).sum();
        for threads in [1, 2, 4, 5] {
            let got = ctx(threads).par_map_reduce(
                n,
                || 0u64,
                |acc, range| *acc += range.map(|x| (x as u64) * (x as u64) % 97).sum::<u64>(),
                |acc, p| *acc += p,
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_topk_matches_sequential_topk() {
        let keys: Vec<(u64, usize)> = (0..500usize).map(|i| ((i as u64 * 7919) % 101, i)).collect();
        let mut seq = TopK::new(10);
        for &(k, i) in &keys {
            seq.push((k, i), i);
        }
        let expect = seq.into_sorted();
        for threads in [1, 2, 4] {
            let got = ctx(threads)
                .par_topk(keys.len(), 10, |tk, range| {
                    for i in range {
                        let (k, v) = keys[i];
                        tk.push((k, v), v);
                    }
                })
                .into_sorted();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_identity() {
        let c = ctx(4);
        assert_eq!(c.par_scan(0, |out: &mut Vec<u32>, _| out.push(1)), Vec::<u32>::new());
        assert_eq!(c.par_map_reduce(0, || 7u64, |_, _| unreachable!(), |_, _| ()), 7);
    }

    #[test]
    fn thread_knob_and_morsels() {
        assert_eq!(QueryContext::new(3).threads(), 3);
        assert!(QueryContext::new(0).threads() >= 1);
        assert_eq!(QueryContext::single_threaded().threads(), 1);
        let c = QueryContext::new(2).with_morsel(10);
        let ms: Vec<_> = c.morsels(25).collect();
        assert_eq!(ms, vec![0..10, 10..20, 20..25]);
        assert_eq!(chunk_ranges(0, 5).count(), 0);
    }

    #[test]
    fn partition_matrix_is_deterministic() {
        // The tentpole contract: every (partitions, threads) pair in
        // {1,2,4}×{1,2,4} must yield results identical to sequential.
        let n = 1003usize;
        let seq_scan: Vec<usize> = (0..n).filter(|x| x % 5 == 0).collect();
        let seq_sum: u64 = (0..n as u64).map(|x| x * x % 251).sum();
        for parts in [1, 2, 4] {
            for threads in [1, 2, 4] {
                let c = ctx(threads).with_partitions(parts);
                let scanned = c.par_scan(n, |out, range| {
                    out.extend(range.filter(|x| x % 5 == 0));
                });
                assert_eq!(scanned, seq_scan, "scan parts={parts} threads={threads}");
                let summed = c.par_map_reduce(
                    n,
                    || 0u64,
                    |acc, range| *acc += range.map(|x| (x as u64) * (x as u64) % 251).sum::<u64>(),
                    |acc, p| *acc += p,
                );
                assert_eq!(summed, seq_sum, "sum parts={parts} threads={threads}");
            }
        }
    }

    #[test]
    fn morsels_never_straddle_partition_boundaries() {
        let c = QueryContext::new(2).with_morsel(10).with_partitions(3);
        let ms: Vec<_> = c.morsels(25).collect();
        // Spans are [0,8), [8,16), [16,25); each under the morsel size,
        // so one morsel per span — and the plan covers 0..25 exactly.
        assert_eq!(ms, vec![0..8, 8..16, 16..25]);
        for parts in [1usize, 2, 3, 4, 7] {
            for n in [0usize, 1, 5, 100, 1003] {
                let c = QueryContext::new(1).with_morsel(16).with_partitions(parts);
                let plan: Vec<_> = c.morsels(n).collect();
                let mut expect_lo = 0;
                for m in &plan {
                    assert_eq!(m.start, expect_lo, "gap in plan n={n} parts={parts}");
                    assert!(m.len() <= 16);
                    // No morsel crosses a span boundary p*n/parts.
                    for p in 1..parts {
                        let b = p * n / parts;
                        assert!(
                            m.end <= b || m.start >= b,
                            "morsel {m:?} straddles boundary {b} (n={n} parts={parts})"
                        );
                    }
                    expect_lo = m.end;
                }
                assert_eq!(expect_lo, n, "plan must cover 0..{n}");
            }
        }
    }

    #[test]
    fn partition_knob_defaults_and_clamps() {
        assert_eq!(QueryContext::new(2).partitions(), 1);
        assert_eq!(QueryContext::single_threaded().partitions(), 1);
        assert_eq!(QueryContext::new(2).with_partitions(0).partitions(), 1);
        assert_eq!(QueryContext::new(2).with_partitions(4).partitions(), 4);
        assert_eq!(PARTITIONS_ENV, "SNB_PARTITIONS");
    }

    #[test]
    fn pool_is_reused_across_many_calls() {
        // Thousands of dispatches through one context: exercises the
        // spin → park → re-wake cycle without respawning threads.
        let c = QueryContext::new(4).with_morsel(16);
        for round in 0..2_000usize {
            let n = 64 + round % 128;
            let got = c.par_map_reduce(
                n,
                || 0usize,
                |acc, range| *acc += range.len(),
                |acc, p| *acc += p,
            );
            assert_eq!(got, n);
        }
    }

    #[test]
    fn shared_context_serialises_concurrent_dispatches() {
        // Several threads hammer one shared context (the `global()`
        // usage pattern); the dispatch lock must keep results exact.
        let c = std::sync::Arc::new(QueryContext::new(3).with_morsel(8));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let n = 100 + t;
                        let got = c.par_map_reduce(
                            n,
                            || 0usize,
                            |acc, range| *acc += range.len(),
                            |acc, p| *acc += p,
                        );
                        assert_eq!(got, n);
                    }
                });
            }
        });
    }

    #[test]
    fn worker_panic_propagates_to_dispatcher() {
        let c = QueryContext::new(4).with_morsel(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.par_map_reduce(
                64,
                || 0usize,
                |_, range| {
                    if range.start == 63 {
                        panic!("boom in morsel");
                    }
                },
                |_, _| (),
            )
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool must still be usable afterwards.
        let ok = c.par_map_reduce(64, || 0usize, |acc, r| *acc += r.len(), |acc, p| *acc += p);
        assert_eq!(ok, 64);
    }

    #[test]
    fn workers_never_exceed_morsel_count() {
        // 1 morsel → 1 worker even with 8 threads: no empty partials.
        let c = QueryContext::new(8).with_morsel(1000);
        let got = c.par_map_reduce(5, || 1u32, |acc, r| *acc += r.len() as u32, |acc, p| *acc += p);
        assert_eq!(got, 6); // identity(1) + 5, merged once
    }
}
