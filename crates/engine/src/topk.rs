//! Bounded top-k selection with spec tie-breaking.
//!
//! Every SNB query ends in `ORDER BY … LIMIT k`; evaluating it as
//! sort-everything-then-truncate is the naive plan. [`TopK`] keeps only
//! the best `k` rows in a max-heap of the currently-worst kept key, so
//! a stream of `n` candidates costs `O(n log k)` and — crucially for
//! choke point CP-1.3 (*top-k pushdown*) — exposes
//! [`TopK::would_accept`], which lets query code skip work for
//! candidates that already cannot enter the result.
//!
//! Keys are "smaller is better": encode descending orders with
//! [`std::cmp::Reverse`] inside the key tuple.

use std::cell::Cell;
use std::collections::BinaryHeap;

struct Entry<K: Ord, T> {
    key: K,
    seq: u64,
    value: T,
}

impl<K: Ord, T> PartialEq for Entry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<K: Ord, T> Eq for Entry<K, T> {}
impl<K: Ord, T> PartialOrd for Entry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, T> Ord for Entry<K, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.seq.cmp(&other.seq))
    }
}

/// Keeps the `k` smallest-keyed items seen.
///
/// The collector also counts its own operator work for the metrics
/// layer: candidates offered via [`TopK::push`] and candidates pruned
/// by [`TopK::would_accept`] (the CP-1.3 hook). Queries fold these into
/// their context with `ctx.metrics().note_topk(&tk)` once the final
/// collector is assembled; merging partial collectors carries their
/// counters along.
pub struct TopK<K: Ord, T> {
    k: usize,
    heap: BinaryHeap<Entry<K, T>>,
    seq: u64,
    offered: u64,
    /// `Cell` because `would_accept` observes through `&self`; the
    /// collector is single-owner per worker, never shared.
    pruned: Cell<u64>,
}

impl<K: Ord + Clone, T> TopK<K, T> {
    /// Creates a collector for the best `k` items.
    pub fn new(k: usize) -> Self {
        TopK { k, heap: BinaryHeap::with_capacity(k + 1), seq: 0, offered: 0, pruned: Cell::new(0) }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether a candidate with `key` would enter the current top-k —
    /// the CP-1.3 pruning hook: callers can skip building expensive row
    /// payloads when this is false.
    pub fn would_accept(&self, key: &K) -> bool {
        let accept = if self.k == 0 {
            false
        } else if self.heap.len() < self.k {
            true
        } else {
            key < &self.heap.peek().expect("heap non-empty").key
        };
        if !accept {
            self.pruned.set(self.pruned.get() + 1);
        }
        accept
    }

    /// The current k-th (worst kept) key, if the collector is full.
    pub fn threshold(&self) -> Option<&K> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| &e.key)
        }
    }

    /// Offers an item; keeps it only if it beats the current top-k.
    pub fn push(&mut self, key: K, value: T) {
        self.offered += 1;
        self.push_unrecorded(key, value);
    }

    /// The push path without the offer counter — used when merging
    /// partial collectors, whose entries were already counted when the
    /// owning worker first offered them.
    fn push_unrecorded(&mut self, key: K, value: T) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Entry { key, seq: self.seq, value });
            self.seq += 1;
        } else if key < self.heap.peek().expect("heap non-empty").key {
            self.heap.pop();
            self.heap.push(Entry { key, seq: self.seq, value });
            self.seq += 1;
        }
    }

    /// Candidates offered via [`TopK::push`] (including through merged
    /// partial collectors).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Candidates rejected by [`TopK::would_accept`] (including through
    /// merged partial collectors).
    pub fn pruned(&self) -> u64 {
        self.pruned.get()
    }

    /// Absorbs another collector: its kept entries compete for this
    /// collector's top-k, and its offer/prune counters are carried
    /// over. The deterministic merge step of `par_topk`.
    pub fn merge_from(&mut self, other: TopK<K, T>) {
        self.offered += other.offered;
        self.pruned.set(self.pruned.get() + other.pruned.get());
        for (key, value) in other.into_sorted_entries() {
            self.push_unrecorded(key, value);
        }
    }

    /// Consumes the collector, returning items ascending by key (the
    /// query's ORDER BY order).
    pub fn into_sorted(self) -> Vec<T> {
        let mut entries = self.heap.into_vec();
        entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        entries.into_iter().map(|e| e.value).collect()
    }

    /// Like [`TopK::into_sorted`] but returns `(key, value)` pairs.
    pub fn into_sorted_entries(self) -> Vec<(K, T)> {
        let mut entries = self.heap.into_vec();
        entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        entries.into_iter().map(|e| (e.key, e.value)).collect()
    }
}

/// Reference implementation used by the naive engine and tests:
/// sort the whole candidate set and truncate.
pub fn sort_truncate<K: Ord, T>(mut items: Vec<(K, T)>, k: usize) -> Vec<T> {
    items.sort_by(|a, b| a.0.cmp(&b.0));
    items.truncate(k);
    items.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn keeps_k_smallest_in_order() {
        let mut tk = TopK::new(3);
        for v in [5, 1, 9, 3, 7, 2, 8] {
            tk.push(v, v * 10);
        }
        assert_eq!(tk.into_sorted(), vec![10, 20, 30]);
    }

    #[test]
    fn descending_via_reverse() {
        let mut tk = TopK::new(2);
        for (count, id) in [(5u32, 1u64), (9, 2), (9, 3), (1, 4)] {
            tk.push((Reverse(count), id), id);
        }
        // Highest count first; ties by ascending id.
        assert_eq!(tk.into_sorted(), vec![2, 3]);
    }

    #[test]
    fn would_accept_prunes_correctly() {
        let mut tk = TopK::new(2);
        tk.push(10, "a");
        assert!(tk.would_accept(&100), "not full yet: accept anything");
        tk.push(20, "b");
        assert!(!tk.would_accept(&20), "equal to worst: rejected");
        assert!(!tk.would_accept(&25));
        assert!(tk.would_accept(&15));
        assert_eq!(tk.threshold(), Some(&20));
        tk.push(15, "c");
        assert_eq!(tk.threshold(), Some(&15));
        assert_eq!(tk.into_sorted(), vec!["a", "c"]);
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut tk: TopK<i32, ()> = TopK::new(0);
        assert!(!tk.would_accept(&1));
        tk.push(1, ());
        assert!(tk.is_empty());
        assert!(tk.into_sorted().is_empty());
    }

    #[test]
    fn fewer_items_than_k() {
        let mut tk = TopK::new(10);
        tk.push(2, "b");
        tk.push(1, "a");
        assert_eq!(tk.len(), 2);
        assert_eq!(tk.into_sorted(), vec!["a", "b"]);
    }

    #[test]
    fn operator_counters_track_offers_prunes_and_merges() {
        let mut tk = TopK::new(2);
        tk.push(10, "a");
        tk.push(20, "b");
        assert!(!tk.would_accept(&30)); // pruned
        assert!(tk.would_accept(&5)); // not pruned
        assert_eq!((tk.offered(), tk.pruned()), (2, 1));
        let mut other = TopK::new(1);
        other.push(1, "c");
        assert!(!other.would_accept(&50));
        tk.merge_from(other);
        // Merge carries counters but does not re-count the moved entry.
        assert_eq!((tk.offered(), tk.pruned()), (3, 2));
        assert_eq!(tk.into_sorted(), vec!["c", "a"]);
    }

    #[test]
    fn agrees_with_sort_truncate() {
        use snb_core::rng::Rng;
        let mut rng = Rng::new(7);
        for trial in 0..50 {
            let n = rng.index(200) + 1;
            let k = rng.index(20) + 1;
            let items: Vec<(u64, u64)> = (0..n).map(|i| (rng.next_bounded(50), i as u64)).collect();
            let mut tk = TopK::new(k);
            for &(key, v) in &items {
                tk.push((key, v), v);
            }
            let expect = sort_truncate(items.iter().map(|&(key, v)| ((key, v), v)).collect(), k);
            assert_eq!(tk.into_sorted(), expect, "trial {trial} n={n} k={k}");
        }
    }
}
