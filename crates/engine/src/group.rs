//! Group-by helpers.
//!
//! BI queries are aggregation-heavy (choke points CP-1.1/1.2/1.4); the
//! hot structure is an integer-keyed hash map, so groups use `FxHashMap`
//! throughout (see the perf guide's hashing chapter).

use rustc_hash::FxHashMap;
use std::hash::Hash;

/// Counts occurrences per key.
pub fn count_by<K: Eq + Hash, I: IntoIterator<Item = K>>(items: I) -> FxHashMap<K, u64> {
    let mut map = FxHashMap::default();
    for k in items {
        *map.entry(k).or_insert(0) += 1;
    }
    map
}

/// Folds values per key with an accumulator.
pub fn fold_by<K, V, A, I, F>(items: I, init: A, mut f: F) -> FxHashMap<K, A>
where
    K: Eq + Hash,
    A: Clone,
    I: IntoIterator<Item = (K, V)>,
    F: FnMut(&mut A, V),
{
    let mut map: FxHashMap<K, A> = FxHashMap::default();
    for (k, v) in items {
        f(map.entry(k).or_insert_with(|| init.clone()), v);
    }
    map
}

/// Collects distinct elements per key (the spec's `count(DISTINCT …)`
/// aggregation semantics, §3.2).
pub fn distinct_by<K, V, I>(items: I) -> FxHashMap<K, rustc_hash::FxHashSet<V>>
where
    K: Eq + Hash,
    V: Eq + Hash,
    I: IntoIterator<Item = (K, V)>,
{
    let mut map: FxHashMap<K, rustc_hash::FxHashSet<V>> = FxHashMap::default();
    for (k, v) in items {
        map.entry(k).or_default().insert(v);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_by_counts() {
        let m = count_by(vec![1, 2, 2, 3, 3, 3]);
        assert_eq!(m[&1], 1);
        assert_eq!(m[&2], 2);
        assert_eq!(m[&3], 3);
    }

    #[test]
    fn fold_by_accumulates() {
        let m = fold_by(vec![("a", 1), ("b", 2), ("a", 3)], 0i32, |acc, v| *acc += v);
        assert_eq!(m[&"a"], 4);
        assert_eq!(m[&"b"], 2);
    }

    #[test]
    fn distinct_by_dedups() {
        let m = distinct_by(vec![(1, 10), (1, 10), (1, 20), (2, 10)]);
        assert_eq!(m[&1].len(), 2);
        assert_eq!(m[&2].len(), 1);
    }
}
