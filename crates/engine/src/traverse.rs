//! Graph traversal primitives over the store's `knows` adjacency:
//! k-hop neighbourhoods, bidirectional shortest-path length, all
//! shortest paths, and trail-constrained reachability (BI 16).

use crate::metrics::QueryMetrics;
use rustc_hash::{FxHashMap, FxHashSet};
use snb_store::{Ix, Store};

/// Friends within exactly `1..=max_hops` hops of `start`, excluding
/// `start` itself. Returns `(person, distance)` pairs with the minimal
/// distance (the "friends and friends of friends" pattern of IC 1/3/9).
///
/// CSR edges walked are recorded once on `metrics` (callers without a
/// query context pass [`QueryMetrics::sink`]).
pub fn khop_neighborhood(
    store: &Store,
    metrics: &QueryMetrics,
    start: Ix,
    max_hops: u32,
) -> Vec<(Ix, u32)> {
    let mut dist: FxHashMap<Ix, u32> = FxHashMap::default();
    dist.insert(start, 0);
    let mut frontier = vec![start];
    let mut out = Vec::new();
    let mut edges = 0u64;
    for d in 1..=max_hops {
        let mut next = Vec::new();
        for &u in &frontier {
            for v in store.knows.targets_of(u) {
                edges += 1;
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(d);
                    next.push(v);
                    out.push((v, d));
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    metrics.note_edges(edges);
    out
}

/// Shortest-path length between two persons over `knows`, or `-1` when
/// unreachable, `0` when `a == b` (IC 13 semantics). Bidirectional BFS.
pub fn shortest_path_len(store: &Store, metrics: &QueryMetrics, a: Ix, b: Ix) -> i32 {
    if a == b {
        return 0;
    }
    let mut edges = 0u64;
    let record = |edges: u64, result: i32| {
        metrics.note_edges(edges);
        result
    };
    let mut dist_a: FxHashMap<Ix, u32> = FxHashMap::default();
    let mut dist_b: FxHashMap<Ix, u32> = FxHashMap::default();
    dist_a.insert(a, 0);
    dist_b.insert(b, 0);
    let mut frontier_a = vec![a];
    let mut frontier_b = vec![b];
    let mut depth_a = 0u32;
    let mut depth_b = 0u32;
    loop {
        if frontier_a.is_empty() || frontier_b.is_empty() {
            return record(edges, -1);
        }
        // Expand the smaller frontier.
        let expand_a = frontier_a.len() <= frontier_b.len();
        let (frontier, dist, other, depth) = if expand_a {
            (&mut frontier_a, &mut dist_a, &dist_b, &mut depth_a)
        } else {
            (&mut frontier_b, &mut dist_b, &dist_a, &mut depth_b)
        };
        *depth += 1;
        let mut next = Vec::new();
        let mut best: Option<u32> = None;
        for &u in frontier.iter() {
            for v in store.knows.targets_of(u) {
                edges += 1;
                if dist.contains_key(&v) {
                    continue;
                }
                dist.insert(v, *depth);
                if let Some(&od) = other.get(&v) {
                    let total = *depth + od;
                    best = Some(best.map_or(total, |b: u32| b.min(total)));
                }
                next.push(v);
            }
        }
        if let Some(b) = best {
            return record(edges, b as i32);
        }
        *frontier = next;
    }
}

/// All shortest paths between two persons over `knows` (IC 14 / BI 25).
/// Returns the list of paths, each a person-index sequence from `a` to
/// `b`; empty when unreachable. `a == b` yields the single trivial path.
pub fn all_shortest_paths(store: &Store, metrics: &QueryMetrics, a: Ix, b: Ix) -> Vec<Vec<Ix>> {
    if a == b {
        return vec![vec![a]];
    }
    let mut edges = 0u64;
    // Forward BFS recording parents on shortest paths.
    let mut dist: FxHashMap<Ix, u32> = FxHashMap::default();
    let mut parents: FxHashMap<Ix, Vec<Ix>> = FxHashMap::default();
    dist.insert(a, 0);
    let mut frontier = vec![a];
    let mut found_at: Option<u32> = None;
    let mut d = 0u32;
    while !frontier.is_empty() {
        if let Some(f) = found_at {
            if d >= f {
                break;
            }
        }
        d += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for v in store.knows.targets_of(u) {
                edges += 1;
                match dist.get(&v) {
                    None => {
                        dist.insert(v, d);
                        parents.insert(v, vec![u]);
                        next.push(v);
                        if v == b {
                            found_at = Some(d);
                        }
                    }
                    Some(&dv) if dv == d => {
                        parents.get_mut(&v).expect("parents recorded").push(u);
                    }
                    _ => {}
                }
            }
        }
        frontier = next;
    }
    metrics.note_edges(edges);
    if found_at.is_none() {
        return Vec::new();
    }
    // Backtrack all parent chains.
    let mut paths = Vec::new();
    let mut stack = vec![vec![b]];
    while let Some(path) = stack.pop() {
        let head = *path.last().expect("path non-empty");
        if head == a {
            let mut full = path.clone();
            full.reverse();
            paths.push(full);
            continue;
        }
        for &p in &parents[&head] {
            let mut ext = path.clone();
            ext.push(p);
            stack.push(ext);
        }
    }
    paths.sort();
    paths
}

/// Persons reachable from `start` by a *trail* (edges used at most once,
/// nodes repeatable) whose length falls within
/// `[min_distance, max_distance]` — the BI 16 reachability semantics.
///
/// For `max_distance` up to the workload's small bounds this enumerates
/// trails depth-first with an edge-used set. Persons reachable on a
/// shorter trail only are excluded (matching the reference
/// implementations' permissive reading noted in the spec, a person on
/// both a shorter *and* an in-range trail is included).
pub fn trail_reachable(
    store: &Store,
    metrics: &QueryMetrics,
    start: Ix,
    min_distance: u32,
    max_distance: u32,
) -> FxHashSet<Ix> {
    let mut out = FxHashSet::default();
    // Edge key: unordered pair packed into u64.
    let edge_key = |u: Ix, v: Ix| {
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        ((lo as u64) << 32) | hi as u64
    };
    let mut used: FxHashSet<u64> = FxHashSet::default();
    let mut edges = 0u64;
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        store: &Store,
        u: Ix,
        depth: u32,
        min: u32,
        max: u32,
        used: &mut FxHashSet<u64>,
        out: &mut FxHashSet<Ix>,
        edge_key: &impl Fn(Ix, Ix) -> u64,
        edges: &mut u64,
    ) {
        if depth >= min {
            out.insert(u);
        }
        if depth == max {
            return;
        }
        let nbrs: Vec<Ix> = store.knows.targets_of(u).collect();
        *edges += nbrs.len() as u64;
        for v in nbrs {
            let k = edge_key(u, v);
            if used.insert(k) {
                dfs(store, v, depth + 1, min, max, used, out, edge_key, edges);
                used.remove(&k);
            }
        }
    }
    dfs(store, start, 0, min_distance, max_distance, &mut used, &mut out, &edge_key, &mut edges);
    metrics.note_edges(edges);
    if min_distance > 0 {
        out.remove(&start);
    }
    out
}

/// Floyd–Warshall over a small vertex subset; the oracle the proptests
/// compare BFS results against.
pub fn floyd_warshall(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<u32>> {
    const INF: u32 = u32::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for &(u, v) in edges {
        d[u][v] = 1;
        d[v][u] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::scale::ScaleFactor;
    use snb_datagen::GeneratorConfig;
    use snb_store::store_for_config;

    fn store() -> Store {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 150;
        store_for_config(&c)
    }

    #[test]
    fn khop_excludes_start_and_has_min_distances() {
        let s = store();
        let hood = khop_neighborhood(&s, QueryMetrics::sink(), 0, 2);
        assert!(hood.iter().all(|&(p, _)| p != 0));
        // Distance-1 entries must be direct friends.
        let friends: FxHashSet<Ix> = s.knows.targets_of(0).collect();
        for &(p, d) in &hood {
            if d == 1 {
                assert!(friends.contains(&p));
            } else {
                assert!(!friends.contains(&p), "friend {p} listed at distance {d}");
            }
        }
    }

    #[test]
    fn shortest_path_matches_floyd_warshall() {
        let s = store();
        let n = s.persons.len();
        let mut edges = Vec::new();
        for u in 0..n as Ix {
            for v in s.knows.targets_of(u) {
                if u < v {
                    edges.push((u as usize, v as usize));
                }
            }
        }
        let oracle = floyd_warshall(n, &edges);
        for a in (0..n).step_by(17) {
            for b in (0..n).step_by(13) {
                let got = shortest_path_len(&s, QueryMetrics::sink(), a as Ix, b as Ix);
                let want = oracle[a][b];
                if want >= u32::MAX / 4 {
                    assert_eq!(got, -1, "{a}->{b}");
                } else {
                    assert_eq!(got, want as i32, "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn all_shortest_paths_are_shortest_and_valid() {
        let s = store();
        let n = s.persons.len() as Ix;
        let mut checked = 0;
        for a in (0..n).step_by(11) {
            for b in (0..n).step_by(23) {
                let len = shortest_path_len(&s, QueryMetrics::sink(), a, b);
                let paths = all_shortest_paths(&s, QueryMetrics::sink(), a, b);
                if len < 0 {
                    assert!(paths.is_empty());
                    continue;
                }
                assert!(!paths.is_empty());
                for p in &paths {
                    assert_eq!(p.len() as i32 - 1, len, "{a}->{b}");
                    assert_eq!(p[0], a);
                    assert_eq!(*p.last().unwrap(), b);
                    for w in p.windows(2) {
                        assert!(s.knows.contains(w[0], w[1]), "non-edge in path");
                    }
                    checked += 1;
                }
                // Paths must be distinct.
                let mut dedup = paths.clone();
                dedup.dedup();
                assert_eq!(dedup.len(), paths.len());
            }
        }
        assert!(checked > 0, "no connected pairs sampled");
    }

    #[test]
    fn trail_reachable_superset_of_path_band() {
        // Any person whose shortest distance lies in [min,max] is
        // reachable by a trail of that length.
        let s = store();
        let hood = khop_neighborhood(&s, QueryMetrics::sink(), 3, 3);
        let trails = trail_reachable(&s, QueryMetrics::sink(), 3, 2, 3);
        for &(p, d) in &hood {
            if d >= 2 {
                assert!(trails.contains(&p), "person {p} at distance {d} missing");
            }
        }
        assert!(!trails.contains(&3), "start included");
    }

    #[test]
    fn trail_zero_min_includes_start() {
        let s = store();
        let trails = trail_reachable(&s, QueryMetrics::sink(), 0, 0, 2);
        assert!(trails.contains(&0));
    }
}
