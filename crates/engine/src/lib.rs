#![warn(missing_docs)]

//! # snb-engine
//!
//! The query-execution toolkit the workload implementations are built
//! from:
//!
//! * [`exec`] — the morsel-driven parallel execution layer:
//!   [`QueryContext`] with deterministic `par_scan`/`par_map_reduce`/
//!   `par_topk` primitives (CP-1.x/CP-3.x scan and aggregation
//!   parallelism, bit-identical results for any thread count);
//! * [`topk`] — bounded top-k with the spec's composite tie-breaking
//!   keys and a pruning hook for choke point CP-1.3;
//! * [`group`] — `FxHashMap`-backed aggregation helpers (CP-1.2/1.4);
//! * [`metrics`] — per-query operator counters ([`QueryMetrics`]) and
//!   their immutable snapshot ([`QueryProfile`]), the repo's
//!   EXPLAIN-ANALYZE-shaped observability layer;
//! * [`traverse`] — BFS k-hop neighbourhoods, bidirectional shortest
//!   path, all-shortest-paths enumeration, and the trail semantics of
//!   BI 16 (CP-7.x).
//!
//! Queries combine these primitives directly against the store's CSR
//! adjacency; there is deliberately no interpreted plan layer — each
//! query is a hand-written physical plan, the way a vendor would
//! implement the benchmark natively.

pub mod exec;
pub mod group;
pub mod metrics;
pub mod topk;
pub mod traverse;

pub use exec::QueryContext;
pub use metrics::{QueryMetrics, QueryProfile};
pub use topk::TopK;
