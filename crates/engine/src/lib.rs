#![warn(missing_docs)]

//! # snb-engine
//!
//! The query-execution toolkit the workload implementations are built
//! from:
//!
//! * [`topk`] — bounded top-k with the spec's composite tie-breaking
//!   keys and a pruning hook for choke point CP-1.3;
//! * [`group`] — `FxHashMap`-backed aggregation helpers (CP-1.2/1.4);
//! * [`traverse`] — BFS k-hop neighbourhoods, bidirectional shortest
//!   path, all-shortest-paths enumeration, and the trail semantics of
//!   BI 16 (CP-7.x).
//!
//! Queries combine these primitives directly against the store's CSR
//! adjacency; there is deliberately no interpreted plan layer — each
//! query is a hand-written physical plan, the way a vendor would
//! implement the benchmark natively.

pub mod group;
pub mod topk;
pub mod traverse;

pub use topk::TopK;
