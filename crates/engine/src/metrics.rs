//! Per-query operator metrics — the repo's observability seam.
//!
//! The BI paper's evaluation is a per-query runtime table; a credible
//! reproduction must also report *what the engine actually did* per
//! query: rows scanned, index hits vs. linear-scan fallbacks, top-k
//! pruning effectiveness, traversal work, and worker balance. Two
//! latent bugs (BI 2's day-delta age bucketing and the stale-date-index
//! full-scan fallback) went unnoticed exactly because none of this was
//! visible; [`QueryMetrics`] closes that gap.
//!
//! Design constraints (and how they are met):
//!
//! * **Near-zero overhead when profiling is off** — every counter is a
//!   plain relaxed [`AtomicU64`]; operators record once per *batch*
//!   (one `fetch_add` per parallel-primitive call, index probe, or
//!   traversal), never per row. The only timed instrumentation
//!   (per-worker busy time) is gated behind the context's profiling
//!   flag.
//! * **Determinism where the results are deterministic** — morsel,
//!   row-scan and index-path counters are pure functions of the input
//!   size and morsel size, so they are identical for every thread
//!   count. Top-k offer/prune counters are a pure function of the
//!   static round-robin morsel assignment, so they are bit-identical
//!   run-to-run at a fixed thread count (and thread-count-invariant
//!   wherever a query does not gate work behind `would_accept`).
//!   Worker busy times are wall-clock measurements and are the only
//!   nondeterministic fields.
//!
//! A [`QueryMetrics`] lives inside every
//! [`QueryContext`](crate::QueryContext) (clones share it, matching
//! the one-context-per-stream driver design). The driver resets it
//! per query and snapshots it into a [`QueryProfile`] attached to the
//! query's stats — the record `bi_runtimes` emits into `BENCH_bi.json`
//! and renders in `--profile` mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use crate::topk::TopK;

/// Shared counter set recording the operator work of the queries run
/// on one execution context since the last [`QueryMetrics::reset`].
///
/// All counters are relaxed atomics: they never order or observe other
/// memory, and per-query totals are read only after the query's last
/// parallel call has joined (the pool's completion handshake is the
/// synchronisation point).
#[derive(Debug, Default)]
pub struct QueryMetrics {
    /// Parallel-primitive invocations (`par_scan` / `par_map_reduce` /
    /// `par_topk`).
    par_calls: AtomicU64,
    /// Morsel-sized work units the scanned inputs divided into
    /// (`ceil(n / morsel_size)` per call — the dispatch granularity,
    /// independent of how many workers actually ran).
    morsels: AtomicU64,
    /// Elements covered by parallel-primitive scans.
    rows_scanned: AtomicU64,
    /// Date-permutation-index probes answered from the index.
    index_hits: AtomicU64,
    /// Rows served from binary-searched index windows.
    index_rows: AtomicU64,
    /// Date-window probes that fell back to a full linear scan because
    /// the index was stale.
    index_fallbacks: AtomicU64,
    /// Rows scanned (and filtered) by those linear fallbacks.
    fallback_rows: AtomicU64,
    /// Candidates offered to top-k collectors.
    topk_offered: AtomicU64,
    /// Candidates rejected by the CP-1.3 `would_accept` pruning hook
    /// before any row payload was built.
    topk_pruned: AtomicU64,
    /// CSR edges walked by the traversal primitives (k-hop, shortest
    /// path, trails).
    edges_traversed: AtomicU64,
    /// Per-worker busy nanoseconds (only written when the owning
    /// context has profiling enabled).
    worker_busy_ns: Vec<AtomicU64>,
}

impl QueryMetrics {
    /// A counter set for a context with `workers` workers.
    pub fn new(workers: usize) -> Self {
        QueryMetrics {
            worker_busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            ..QueryMetrics::default()
        }
    }

    /// A process-wide scratch instance for instrumented code paths that
    /// run without an execution context (the naive reference engine,
    /// standalone tests). Recording into it is cheap and nobody reads
    /// it back.
    pub fn sink() -> &'static QueryMetrics {
        static SINK: OnceLock<QueryMetrics> = OnceLock::new();
        SINK.get_or_init(|| QueryMetrics::new(1))
    }

    /// Records one parallel-primitive call over `rows` elements split
    /// into `morsels` work units.
    pub fn note_par_call(&self, morsels: u64, rows: u64) {
        self.par_calls.fetch_add(1, Ordering::Relaxed);
        self.morsels.fetch_add(morsels, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records a date-window probe served from the permutation index
    /// (`rows` = window length).
    pub fn note_index_hit(&self, rows: u64) {
        self.index_hits.fetch_add(1, Ordering::Relaxed);
        self.index_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records a date-window probe that linearly scanned `rows`
    /// messages because the index was stale.
    pub fn note_index_fallback(&self, rows: u64) {
        self.index_fallbacks.fetch_add(1, Ordering::Relaxed);
        self.fallback_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Folds a finished top-k collector's offer/prune counters in.
    /// Queries call this once on their final collector, after partials
    /// have been merged (merging carries partial counters along).
    pub fn note_topk<K: Ord + Clone, T>(&self, tk: &TopK<K, T>) {
        self.topk_offered.fetch_add(tk.offered(), Ordering::Relaxed);
        self.topk_pruned.fetch_add(tk.pruned(), Ordering::Relaxed);
    }

    /// Records `edges` CSR edges walked by a traversal.
    pub fn note_edges(&self, edges: u64) {
        self.edges_traversed.fetch_add(edges, Ordering::Relaxed);
    }

    /// Adds busy time to worker `w` (profiling-gated call sites only).
    pub fn add_worker_busy(&self, w: usize, busy: Duration) {
        if let Some(slot) = self.worker_busy_ns.get(w) {
            slot.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Zeroes every counter (the driver calls this between queries).
    pub fn reset(&self) {
        for c in [
            &self.par_calls,
            &self.morsels,
            &self.rows_scanned,
            &self.index_hits,
            &self.index_rows,
            &self.index_fallbacks,
            &self.fallback_rows,
            &self.topk_offered,
            &self.topk_pruned,
            &self.edges_traversed,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        for w in &self.worker_busy_ns {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Copies the current counter values into a plain [`QueryProfile`].
    pub fn snapshot(&self) -> QueryProfile {
        QueryProfile {
            par_calls: self.par_calls.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_rows: self.index_rows.load(Ordering::Relaxed),
            index_fallbacks: self.index_fallbacks.load(Ordering::Relaxed),
            fallback_rows: self.fallback_rows.load(Ordering::Relaxed),
            topk_offered: self.topk_offered.load(Ordering::Relaxed),
            topk_pruned: self.topk_pruned.load(Ordering::Relaxed),
            edges_traversed: self.edges_traversed.load(Ordering::Relaxed),
            worker_busy_ns: self.worker_busy_ns.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A point-in-time copy of [`QueryMetrics`] — the per-query operator
/// record the driver attaches to every power/throughput execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Parallel-primitive invocations.
    pub par_calls: u64,
    /// Morsel-sized work units dispatched.
    pub morsels: u64,
    /// Elements covered by parallel scans.
    pub rows_scanned: u64,
    /// Date-index probes answered from the index.
    pub index_hits: u64,
    /// Rows served from index windows.
    pub index_rows: u64,
    /// Date-index probes that fell back to a linear scan.
    pub index_fallbacks: u64,
    /// Rows scanned by those fallbacks.
    pub fallback_rows: u64,
    /// Candidates offered to top-k collectors.
    pub topk_offered: u64,
    /// Candidates pruned via `would_accept`.
    pub topk_pruned: u64,
    /// CSR edges walked by traversals.
    pub edges_traversed: u64,
    /// Per-worker busy nanoseconds (all zero unless profiling was on).
    pub worker_busy_ns: Vec<u64>,
}

impl QueryProfile {
    /// Fraction of top-k candidates eliminated by the `would_accept`
    /// pruning hook before any row payload was built (`0.0` when the
    /// query offered nothing).
    pub fn prune_rate(&self) -> f64 {
        let seen = self.topk_offered + self.topk_pruned;
        if seen == 0 {
            0.0
        } else {
            self.topk_pruned as f64 / seen as f64
        }
    }

    /// Worker skew: busiest worker's time over the mean busy time of
    /// the workers that did any work (`1.0` = perfectly balanced; also
    /// `1.0` when no busy time was recorded).
    pub fn worker_skew(&self) -> f64 {
        let busy: Vec<u64> = self.worker_busy_ns.iter().copied().filter(|&b| b > 0).collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Accumulates another profile into this one (counter sums;
    /// per-worker busy times add element-wise). Used to aggregate the
    /// per-stream profiles of a throughput run.
    pub fn merge(&mut self, other: &QueryProfile) {
        self.par_calls += other.par_calls;
        self.morsels += other.morsels;
        self.rows_scanned += other.rows_scanned;
        self.index_hits += other.index_hits;
        self.index_rows += other.index_rows;
        self.index_fallbacks += other.index_fallbacks;
        self.fallback_rows += other.fallback_rows;
        self.topk_offered += other.topk_offered;
        self.topk_pruned += other.topk_pruned;
        self.edges_traversed += other.edges_traversed;
        if self.worker_busy_ns.len() < other.worker_busy_ns.len() {
            self.worker_busy_ns.resize(other.worker_busy_ns.len(), 0);
        }
        for (into, &from) in self.worker_busy_ns.iter_mut().zip(&other.worker_busy_ns) {
            *into += from;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = QueryMetrics::new(2);
        m.note_par_call(3, 100);
        m.note_par_call(1, 28);
        m.note_index_hit(100);
        m.note_index_fallback(500);
        m.note_edges(7);
        m.add_worker_busy(1, Duration::from_nanos(250));
        let p = m.snapshot();
        assert_eq!(p.par_calls, 2);
        assert_eq!(p.morsels, 4);
        assert_eq!(p.rows_scanned, 128);
        assert_eq!(p.index_hits, 1);
        assert_eq!(p.index_rows, 100);
        assert_eq!(p.index_fallbacks, 1);
        assert_eq!(p.fallback_rows, 500);
        assert_eq!(p.edges_traversed, 7);
        assert_eq!(p.worker_busy_ns, vec![0, 250]);
        m.reset();
        assert_eq!(m.snapshot(), QueryProfile { worker_busy_ns: vec![0, 0], ..Default::default() });
    }

    #[test]
    fn prune_rate_and_skew_derivations() {
        let p = QueryProfile {
            topk_offered: 25,
            topk_pruned: 75,
            worker_busy_ns: vec![100, 300, 0, 200],
            ..Default::default()
        };
        assert!((p.prune_rate() - 0.75).abs() < 1e-12);
        assert!((p.worker_skew() - 1.5).abs() < 1e-12); // 300 / mean(100,300,200)
        assert_eq!(QueryProfile::default().prune_rate(), 0.0);
        assert_eq!(QueryProfile::default().worker_skew(), 1.0);
    }

    #[test]
    fn merge_sums_counters_and_busy_times() {
        let mut a = QueryProfile {
            par_calls: 1,
            rows_scanned: 10,
            worker_busy_ns: vec![5],
            ..Default::default()
        };
        let b = QueryProfile {
            par_calls: 2,
            rows_scanned: 30,
            index_fallbacks: 1,
            worker_busy_ns: vec![1, 2],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.par_calls, 3);
        assert_eq!(a.rows_scanned, 40);
        assert_eq!(a.index_fallbacks, 1);
        assert_eq!(a.worker_busy_ns, vec![6, 2]);
    }

    #[test]
    fn sink_is_shared_and_usable() {
        QueryMetrics::sink().note_edges(1);
        assert!(QueryMetrics::sink().snapshot().edges_traversed >= 1);
    }
}
