//! Error type shared across the workspace.

use std::fmt;
use std::io;

/// Workspace-wide result alias.
pub type SnbResult<T> = Result<T, SnbError>;

/// Errors surfaced by generation, loading, and driving the benchmark.
#[derive(Debug)]
pub enum SnbError {
    /// An underlying I/O failure (serializer output, CSV loading, logs).
    Io(io::Error),
    /// A CSV / update-stream line that does not match the expected schema.
    Parse {
        /// Where the bad input was seen (file:line or field name).
        context: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A reference to an entity id that is not present in the store.
    UnknownId {
        /// Entity type, e.g. `"Person"`.
        entity: &'static str,
        /// The unresolved raw id.
        id: u64,
    },
    /// A benchmark configuration that cannot be executed.
    Config(String),
    /// A validation-mode mismatch between two implementations of a query.
    Validation {
        /// The query that disagreed, e.g. `"BI 7"`.
        query: String,
        /// The two summaries that differed.
        detail: String,
    },
    /// The in-memory store may hold a half-applied write (a mutation
    /// panicked mid-batch); all access is refused until the process
    /// restarts and recovers a consistent image from its log.
    Poisoned {
        /// What the store was doing when it was poisoned.
        detail: String,
    },
}

impl fmt::Display for SnbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnbError::Io(e) => write!(f, "i/o error: {e}"),
            SnbError::Parse { context, detail } => {
                write!(f, "parse error in {context}: {detail}")
            }
            SnbError::UnknownId { entity, id } => {
                write!(f, "unknown {entity} id {id}")
            }
            SnbError::Config(msg) => write!(f, "configuration error: {msg}"),
            SnbError::Validation { query, detail } => {
                write!(f, "validation failure in {query}: {detail}")
            }
            SnbError::Poisoned { detail } => {
                write!(f, "store poisoned: {detail}")
            }
        }
    }
}

impl std::error::Error for SnbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnbError {
    fn from(e: io::Error) -> Self {
        SnbError::Io(e)
    }
}

impl SnbError {
    /// Convenience constructor for parse failures.
    pub fn parse(context: impl Into<String>, detail: impl Into<String>) -> Self {
        SnbError::Parse { context: context.into(), detail: detail.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SnbError::UnknownId { entity: "Person", id: 7 };
        assert_eq!(e.to_string(), "unknown Person id 7");
        let e = SnbError::parse("person_0.csv:3", "bad field count");
        assert!(e.to_string().contains("person_0.csv:3"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e: SnbError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
