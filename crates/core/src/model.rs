//! Entity and relation vocabulary of the SNB schema (spec §2.3.2).
//!
//! Raw 64-bit ids are only unique *within* an entity type (spec Table
//! 2.1: "a Forum and a Post might have the same ID"), so ids are wrapped
//! in per-entity newtypes to keep Person/Forum/Message id spaces from
//! being mixed up at compile time.

use std::fmt;

macro_rules! raw_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

raw_id!(
    /// Raw id of a Person.
    PersonId
);
raw_id!(
    /// Raw id of a Forum.
    ForumId
);
raw_id!(
    /// Raw id of a Message (Posts and Comments share one id space in this
    /// implementation so `replyOf` can point at either).
    MessageId
);
raw_id!(
    /// Raw id of a Tag.
    TagId
);
raw_id!(
    /// Raw id of a TagClass.
    TagClassId
);
raw_id!(
    /// Raw id of a Place (city, country or continent).
    PlaceId
);
raw_id!(
    /// Raw id of an Organisation (university or company).
    OrganisationId
);

/// The three kinds of Place (spec §2.3.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PlaceKind {
    /// A city; persons and universities are located in cities.
    City,
    /// A country; companies and messages are located in countries.
    Country,
    /// A continent; countries are part of continents.
    Continent,
}

impl PlaceKind {
    /// The spec's CSV `type` column value.
    pub fn as_str(self) -> &'static str {
        match self {
            PlaceKind::City => "city",
            PlaceKind::Country => "country",
            PlaceKind::Continent => "continent",
        }
    }
}

/// The two kinds of Organisation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OrganisationKind {
    /// A university (persons study at universities; located in a city).
    University,
    /// A company (persons work at companies; located in a country).
    Company,
}

impl OrganisationKind {
    /// The spec's CSV `type` column value.
    pub fn as_str(self) -> &'static str {
        match self {
            OrganisationKind::University => "university",
            OrganisationKind::Company => "company",
        }
    }
}

/// The two concrete Message subtypes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MessageKind {
    /// A Post, container-of'd by a Forum; carries `language`/`imageFile`.
    Post,
    /// A Comment, reply-of another Message.
    Comment,
}

/// The three Forum flavours the spec distinguishes by title (§2.3.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ForumKind {
    /// A person's personal wall ("Wall of ...").
    Wall,
    /// A person's image album ("Album ... of ...").
    Album,
    /// A topical group ("Group for ...").
    Group,
}

/// Person gender values emitted by Datagen.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Gender {
    /// "male" in CSV output.
    Male,
    /// "female" in CSV output.
    Female,
}

impl Gender {
    /// The CSV string representation.
    pub fn as_str(self) -> &'static str {
        match self {
            Gender::Male => "male",
            Gender::Female => "female",
        }
    }
}

/// Message length categories of BI 1 (Posting summary).
///
/// * `0`: `0 <= length < 40` (short)
/// * `1`: `40 <= length < 80` (one-liner)
/// * `2`: `80 <= length < 160` (tweet)
/// * `3`: `160 <= length` (long)
pub fn length_category(length: u32) -> u8 {
    match length {
        0..=39 => 0,
        40..=79 => 1,
        80..=159 => 2,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        // Purely a compile-time property; demonstrate Display/Debug.
        let p = PersonId(3);
        assert_eq!(p.to_string(), "3");
        assert_eq!(format!("{p:?}"), "PersonId(3)");
        assert_eq!(PersonId::from(9), PersonId(9));
    }

    #[test]
    fn length_categories_match_bi1_boundaries() {
        assert_eq!(length_category(0), 0);
        assert_eq!(length_category(39), 0);
        assert_eq!(length_category(40), 1);
        assert_eq!(length_category(79), 1);
        assert_eq!(length_category(80), 2);
        assert_eq!(length_category(159), 2);
        assert_eq!(length_category(160), 3);
        assert_eq!(length_category(5000), 3);
    }

    #[test]
    fn enum_csv_strings() {
        assert_eq!(PlaceKind::City.as_str(), "city");
        assert_eq!(PlaceKind::Continent.as_str(), "continent");
        assert_eq!(OrganisationKind::University.as_str(), "university");
        assert_eq!(Gender::Female.as_str(), "female");
    }
}
