//! Civil-date arithmetic for the benchmark's `Date` and `DateTime` types.
//!
//! The spec (Table 2.1) defines `Date` with day precision encoded as
//! `yyyy-mm-dd` and `DateTime` with millisecond precision encoded as
//! `yyyy-mm-ddTHH:MM:ss.sss+0000` (always GMT). Queries frequently compare
//! a `DateTime` against a `Date`; per §3.2 the `Date` is implicitly
//! promoted to midnight GMT of that day.
//!
//! The day↔(year, month, day) conversion uses Howard Hinnant's proleptic
//! Gregorian algorithms, exact over the benchmark's whole simulated range.

use std::fmt;

/// Milliseconds per day.
pub const MILLIS_PER_DAY: i64 = 86_400_000;
/// Milliseconds per hour.
pub const MILLIS_PER_HOUR: i64 = 3_600_000;
/// Milliseconds per minute.
pub const MILLIS_PER_MINUTE: i64 = 60_000;

/// A calendar date with day precision, stored as days since 1970-01-01.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(pub i32);

/// A timestamp with millisecond precision, stored as milliseconds since
/// 1970-01-01T00:00:00.000 GMT.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DateTime(pub i64);

/// Converts a civil date to days since the Unix epoch.
///
/// Valid for all dates in the proleptic Gregorian calendar representable
/// in `i32` days (far beyond the benchmark's 2010–2013 window).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    debug_assert!((1..=12).contains(&m), "month out of range: {m}");
    debug_assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March-based month [0, 11]
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i32 - 719_468
}

/// Converts days since the Unix epoch to a `(year, month, day)` triple.
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Number of days in `month` of `year`, accounting for leap years.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

impl Date {
    /// Builds a date from a civil `(year, month, day)` triple.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        Date(days_from_civil(y, m, d))
    }

    /// Decomposes into `(year, month, day)`.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// The calendar month, `1..=12`.
    pub fn month(self) -> u32 {
        self.to_ymd().1
    }

    /// The day of month, `1..=31`.
    pub fn day(self) -> u32 {
        self.to_ymd().2
    }

    /// This date at midnight GMT, the implicit promotion of §3.2.
    pub fn at_midnight(self) -> DateTime {
        DateTime(self.0 as i64 * MILLIS_PER_DAY)
    }

    /// Adds a (possibly negative) number of days.
    pub fn plus_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Parses the spec's `yyyy-mm-dd` representation.
    pub fn parse(s: &str) -> Option<Date> {
        let b = s.as_bytes();
        if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
            return None;
        }
        let y: i32 = s[0..4].parse().ok()?;
        let m: u32 = s[5..7].parse().ok()?;
        let d: u32 = s[8..10].parse().ok()?;
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return None;
        }
        Some(Date::from_ymd(y, m, d))
    }
}

impl DateTime {
    /// Builds a timestamp from civil components.
    pub fn from_parts(y: i32, mo: u32, d: u32, h: u32, mi: u32, s: u32, ms: u32) -> Self {
        let days = days_from_civil(y, mo, d) as i64;
        DateTime(
            days * MILLIS_PER_DAY
                + h as i64 * MILLIS_PER_HOUR
                + mi as i64 * MILLIS_PER_MINUTE
                + s as i64 * 1000
                + ms as i64,
        )
    }

    /// The date part (GMT).
    pub fn date(self) -> Date {
        Date(self.0.div_euclid(MILLIS_PER_DAY) as i32)
    }

    /// Milliseconds past midnight GMT.
    pub fn millis_of_day(self) -> i64 {
        self.0.rem_euclid(MILLIS_PER_DAY)
    }

    /// The calendar year (the spec's `year(date)` function).
    pub fn year(self) -> i32 {
        self.date().year()
    }

    /// The calendar month (the spec's `month(date)` function), `1..=12`.
    pub fn month(self) -> u32 {
        self.date().month()
    }

    /// A combined `(year, month)` bucket key, convenient for grouping.
    pub fn year_month(self) -> (i32, u32) {
        let (y, m, _) = self.date().to_ymd();
        (y, m)
    }

    /// Adds a (possibly negative) number of milliseconds.
    pub fn plus_millis(self, ms: i64) -> DateTime {
        DateTime(self.0 + ms)
    }

    /// Parses the spec's `yyyy-mm-ddTHH:MM:ss.sss+0000` representation.
    pub fn parse(s: &str) -> Option<DateTime> {
        let b = s.as_bytes();
        if b.len() != 28 || b[10] != b'T' || b[13] != b':' || b[16] != b':' || b[19] != b'.' {
            return None;
        }
        if &s[23..] != "+0000" {
            return None;
        }
        let date = Date::parse(&s[0..10])?;
        let h: u32 = s[11..13].parse().ok()?;
        let mi: u32 = s[14..16].parse().ok()?;
        let sec: u32 = s[17..19].parse().ok()?;
        let ms: u32 = s[20..23].parse().ok()?;
        if h > 23 || mi > 59 || sec > 59 {
            return None;
        }
        Some(date.at_midnight().plus_millis(
            h as i64 * MILLIS_PER_HOUR
                + mi as i64 * MILLIS_PER_MINUTE
                + sec as i64 * 1000
                + ms as i64,
        ))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.date().to_ymd();
        let ms = self.millis_of_day();
        let h = ms / MILLIS_PER_HOUR;
        let mi = (ms % MILLIS_PER_HOUR) / MILLIS_PER_MINUTE;
        let s = (ms % MILLIS_PER_MINUTE) / 1000;
        let milli = ms % 1000;
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{milli:03}+0000")
    }
}

impl fmt::Debug for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DateTime({self})")
    }
}

/// Number of whole-or-partial months spanned from `start` to `end`,
/// counting partial months on both ends as one month each.
///
/// This is the month-counting rule of BI 21 ("a creationDate of Jan 31 and
/// an endDate of Mar 1 result in 3 months").
pub fn spanned_months(start: DateTime, end: DateTime) -> i32 {
    let (sy, sm, _) = start.date().to_ymd();
    let (ey, em, _) = end.date().to_ymd();
    (ey - sy) * 12 + em as i32 - sm as i32 + 1
}

/// Minutes between two timestamps, truncated toward zero (IC 7 latency).
pub fn minutes_between(earlier: DateTime, later: DateTime) -> i64 {
    (later.0 - earlier.0) / MILLIS_PER_MINUTE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates_round_trip() {
        for &(y, m, d, days) in &[
            (1970, 1, 2, 1),
            (1969, 12, 31, -1),
            (2000, 3, 1, 11017),
            (2010, 1, 1, 14610),
            (2013, 1, 1, 15706),
            (1600, 2, 29, -135081),
        ] {
            assert_eq!(days_from_civil(y, m, d), days, "{y}-{m}-{d}");
            assert_eq!(civil_from_days(days), (y, m, d));
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2011));
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2011, 2), 28);
        assert_eq!(days_in_month(2011, 12), 31);
    }

    #[test]
    fn date_display_and_parse() {
        let d = Date::from_ymd(2011, 7, 4);
        assert_eq!(d.to_string(), "2011-07-04");
        assert_eq!(Date::parse("2011-07-04"), Some(d));
        assert_eq!(Date::parse("2011-13-04"), None);
        assert_eq!(Date::parse("2011-02-29"), None);
        assert_eq!(Date::parse("garbage"), None);
    }

    #[test]
    fn datetime_display_and_parse() {
        let dt = DateTime::from_parts(2012, 11, 5, 13, 9, 59, 123);
        let s = dt.to_string();
        assert_eq!(s, "2012-11-05T13:09:59.123+0000");
        assert_eq!(DateTime::parse(&s), Some(dt));
        assert_eq!(DateTime::parse("2012-11-05T13:09:59.123+0100"), None);
    }

    #[test]
    fn datetime_components() {
        let dt = DateTime::from_parts(2012, 2, 29, 23, 59, 59, 999);
        assert_eq!(dt.year(), 2012);
        assert_eq!(dt.month(), 2);
        assert_eq!(dt.date(), Date::from_ymd(2012, 2, 29));
        assert_eq!(dt.year_month(), (2012, 2));
    }

    #[test]
    fn date_promotion_is_midnight() {
        let d = Date::from_ymd(2010, 6, 15);
        let dt = d.at_midnight();
        assert_eq!(dt.millis_of_day(), 0);
        assert_eq!(dt.date(), d);
    }

    #[test]
    fn negative_datetime_components() {
        // Dates before the epoch must still decompose correctly.
        let dt = DateTime::from_parts(1969, 12, 31, 12, 0, 0, 0);
        assert!(dt.0 < 0);
        assert_eq!(dt.date(), Date::from_ymd(1969, 12, 31));
        assert_eq!(dt.millis_of_day(), 12 * MILLIS_PER_HOUR);
    }

    #[test]
    fn spanned_months_matches_bi21_example() {
        // Jan 31 -> Mar 1 spans 3 months per the BI 21 definition.
        let start = Date::from_ymd(2012, 1, 31).at_midnight();
        let end = Date::from_ymd(2012, 3, 1).at_midnight();
        assert_eq!(spanned_months(start, end), 3);
        // Same month counts as 1.
        let s2 = Date::from_ymd(2012, 5, 1).at_midnight();
        let e2 = Date::from_ymd(2012, 5, 31).at_midnight();
        assert_eq!(spanned_months(s2, e2), 1);
        // Across a year boundary.
        let s3 = Date::from_ymd(2011, 12, 15).at_midnight();
        let e3 = Date::from_ymd(2012, 1, 15).at_midnight();
        assert_eq!(spanned_months(s3, e3), 2);
    }

    #[test]
    fn minutes_between_truncates() {
        let a = DateTime::from_parts(2012, 1, 1, 0, 0, 0, 0);
        let b = a.plus_millis(MILLIS_PER_MINUTE * 3 + 59_000);
        assert_eq!(minutes_between(a, b), 3);
    }

    #[test]
    fn civil_round_trip_dense_range() {
        // Walk every day of the benchmark window linearly and cross-check.
        let start = days_from_civil(2009, 12, 28);
        let end = days_from_civil(2013, 1, 5);
        let (mut y, mut m, mut d) = (2009, 12, 28);
        for day in start..=end {
            assert_eq!(days_from_civil(y, m, d), day);
            assert_eq!(civil_from_days(day), (y, m, d));
            d += 1;
            if d > days_in_month(y, m) {
                d = 1;
                m += 1;
                if m > 12 {
                    m = 1;
                    y += 1;
                }
            }
        }
    }
}
