//! Sampling distributions used by Datagen.
//!
//! The spec's property-dictionary model (§2.3.3.1) draws values from a
//! dictionary `D` through a ranking function `R` and a probability
//! function `F` over ranks. We provide:
//!
//! * [`RankedSampler`] — Zipf-like probability over ranks with a
//!   precomputed cumulative table (exact inverse-CDF sampling);
//! * [`FacebookDegree`] — the Facebook-like node-degree distribution of
//!   §2.3.3.2 (discrete power law with exponential cutoff, mean scaled to
//!   the target average degree, per Ugander et al., "The anatomy of the
//!   Facebook social graph");
//! * [`CumulativeTable`] — generic discrete sampling from explicit
//!   weights (used for e.g. country populations).

use crate::rng::Rng;

/// Exact inverse-CDF sampler over an explicit weight vector.
#[derive(Clone, Debug)]
pub struct CumulativeTable {
    cumulative: Vec<f64>,
}

impl CumulativeTable {
    /// Builds a table from non-negative weights; at least one weight must
    /// be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        // Normalise so the last entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= acc;
        }
        *cumulative.last_mut().unwrap() = 1.0;
        CumulativeTable { cumulative }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the table has no entries (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples an index according to the weights.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }
}

/// Zipf-like sampler over ranks `0..n`: `P(rank r) ∝ 1 / (r + 1)^s`.
///
/// This is the probability function `F` the spec pairs with per-country
/// ranking functions `R` — the *same* sampler is reused with differently
/// permuted dictionaries to produce correlated values.
#[derive(Clone, Debug)]
pub struct RankedSampler {
    table: CumulativeTable,
}

impl RankedSampler {
    /// Builds a sampler over `n` ranks with exponent `s` (typically ~0.9).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        RankedSampler { table: CumulativeTable::new(&weights) }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if there are no ranks (never).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        self.table.sample(rng)
    }
}

/// The Facebook-like degree distribution: a discrete power law
/// `P(k) ∝ (k + k0)^(-gamma) · exp(-k / cutoff)` truncated to
/// `[1, max_degree]`, with parameters tuned so the realised mean tracks
/// `target_mean`.
#[derive(Clone, Debug)]
pub struct FacebookDegree {
    table: CumulativeTable,
    max_degree: usize,
}

impl FacebookDegree {
    /// Facebook's measured global degree curve has `gamma ≈ 1.5` up to a
    /// cutoff; we keep that exponent and solve for the power-law offset
    /// `k0` in `(k + k0)^(-gamma)` that delivers the requested mean —
    /// the realised mean grows monotonically with `k0`, so a binary
    /// search converges.
    pub fn new(target_mean: f64, max_degree: usize) -> Self {
        assert!(max_degree >= 1);
        assert!(target_mean >= 1.0);
        let gamma = 1.5;
        // w(k) = (k + k0)^(-gamma) * exp(-k / cutoff). Two regimes, each
        // monotone in its parameter:
        //  * the pure power law (cutoff = inf, k0 = 0) realises some
        //    baseline mean; targets above it are reached by raising k0
        //    (flattening the head),
        //  * targets below it by lowering the exponential cutoff
        //    (trimming the tail).
        let mean_for = |k0: f64, cutoff: f64| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for k in 1..=max_degree {
                let w = ((k as f64) + k0).powf(-gamma) * (-(k as f64) / cutoff).exp();
                num += k as f64 * w;
                den += w;
            }
            num / den
        };
        let baseline = mean_for(0.0, f64::INFINITY);
        let (k0, cutoff) = if target_mean >= baseline {
            let (mut lo, mut hi) = (1.0e-3_f64, 1.0e8_f64);
            for _ in 0..100 {
                let mid = (lo * hi).sqrt();
                if mean_for(mid, f64::INFINITY) < target_mean {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            ((lo * hi).sqrt(), f64::INFINITY)
        } else {
            let (mut lo, mut hi) = (1.0e-2_f64, 1.0e9_f64);
            for _ in 0..100 {
                let mid = (lo * hi).sqrt();
                if mean_for(0.0, mid) < target_mean {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (0.0, (lo * hi).sqrt())
        };
        let weights: Vec<f64> = (1..=max_degree)
            .map(|k| ((k as f64) + k0).powf(-gamma) * (-(k as f64) / cutoff).exp())
            .collect();
        FacebookDegree { table: CumulativeTable::new(&weights), max_degree }
    }

    /// Samples a degree in `[1, max_degree]`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        self.table.sample(rng) + 1
    }

    /// Largest degree this distribution can emit.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_table_respects_weights() {
        let t = CumulativeTable::new(&[1.0, 0.0, 3.0]);
        let mut rng = Rng::new(1);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight entry sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn ranked_sampler_is_monotone_decreasing() {
        let s = RankedSampler::new(50, 0.9);
        let mut rng = Rng::new(2);
        let mut counts = vec![0usize; 50];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 10 must dominate rank 40.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
        // Every rank should be reachable with this many draws.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn facebook_degree_hits_target_mean() {
        for &target in &[5.0, 20.0, 60.0] {
            let d = FacebookDegree::new(target, 1000);
            let mut rng = Rng::new(3);
            let n = 30_000;
            let sum: usize = (0..n).map(|_| d.sample(&mut rng)).sum();
            let mean = sum as f64 / n as f64;
            assert!((mean - target).abs() / target < 0.08, "target {target} realised {mean}");
        }
    }

    #[test]
    fn facebook_degree_bounds() {
        let d = FacebookDegree::new(10.0, 64);
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!((1..=64).contains(&k));
        }
    }

    #[test]
    fn facebook_degree_heavy_tail() {
        // A power law must produce some nodes with many times the mean.
        let d = FacebookDegree::new(10.0, 1000);
        let mut rng = Rng::new(5);
        let max = (0..50_000).map(|_| d.sample(&mut rng)).max().unwrap();
        assert!(max > 60, "tail too light: max {max}");
    }
}
