#![warn(missing_docs)]

//! # snb-core
//!
//! Core data model and numeric substrate shared by every crate of the
//! LDBC Social Network Benchmark reproduction:
//!
//! * [`datetime`] — civil-date arithmetic (`Date`, `DateTime`) with the
//!   spec's textual formats (`yyyy-mm-dd`, `yyyy-mm-ddTHH:MM:ss.sss+0000`);
//! * [`rng`] — deterministic PRNG (splitmix64 seeding + xoshiro256**) used
//!   by Datagen so that generation is reproducible bit-for-bit regardless
//!   of parallelism (spec §2.3.3, *Determinism*);
//! * [`dist`] — the sampling distributions the generator relies on
//!   (Zipf-ranked dictionaries, geometric window picking, Facebook-like
//!   degree distribution);
//! * [`scale`] — the scale-factor table (spec Table 2.12) plus the
//!   laptop-scale factors this reproduction adds below SF 0.1;
//! * [`model`] — entity/relation vocabulary and raw-id newtypes.

pub mod datetime;
pub mod dist;
pub mod error;
pub mod model;
pub mod rng;
pub mod scale;

pub use datetime::{Date, DateTime};
pub use error::{SnbError, SnbResult};
pub use rng::Rng;
pub use scale::ScaleFactor;
