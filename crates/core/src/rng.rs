//! Deterministic pseudo-random number generation.
//!
//! Datagen's determinism guarantee (spec §2.3.3) requires that the same
//! seed produce the same dataset regardless of thread count. We achieve
//! this by deriving an independent generator per `(seed, entity id,
//! stream tag)` triple: no generator state is ever shared across work
//! items, so the partitioning of work over threads cannot change the
//! output.
//!
//! The generator is xoshiro256** seeded through splitmix64 — both public
//! domain algorithms with well-studied statistical quality, implemented
//! here directly so the output is stable across dependency upgrades.

/// Advances a splitmix64 state and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a single 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Creates a generator for a derived stream: `(seed, entity, tag)`.
    ///
    /// Each datagen pass uses a distinct `tag`, and each entity its own
    /// `entity` value, so streams never overlap no matter how generation
    /// is scheduled.
    pub fn derive(seed: u64, entity: u64, tag: u64) -> Self {
        // Mix the three inputs through splitmix so nearby (entity, tag)
        // pairs land in unrelated states.
        let mut sm = seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut sm);
        let mut sm2 = entity.wrapping_mul(0xE703_7ED1_A0B4_28DB) ^ a;
        let b = splitmix64(&mut sm2);
        let mut sm3 = tag.wrapping_mul(0x8EBC_6AF0_9C88_C6E3) ^ b;
        Rng::new(splitmix64(&mut sm3))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_bounded(span) as i64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_bounded(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Geometric distribution on `{0, 1, 2, ...}` with success
    /// probability `p` (the spec's window-distance distribution for
    /// `knows`-edge selection uses this shape).
    pub fn geometric(&mut self, p: f64) -> u64 {
        debug_assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Chooses an element of a slice uniformly.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        if k * 3 >= n {
            // Dense case: shuffle a full index vector and truncate.
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all
        } else {
            // Sparse case: rejection sample into a small set.
            let mut seen = Vec::with_capacity(k);
            while seen.len() < k {
                let c = self.index(n);
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
            seen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Published reference values for seed 1234567.
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
        assert_eq!(splitmix64(&mut s), 9817491932198370423);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let a: Vec<u64> = {
            let mut r = Rng::derive(7, 1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::derive(7, 2, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::derive(7, 1, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut r = Rng::new(99);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.next_bounded(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_i64_inclusive_bounds() {
        let mut r = Rng::new(3);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..10_000 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            hit_lo |= v == -2;
            hit_hi |= v == 2;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn geometric_mean_approximates_theory() {
        let mut r = Rng::new(11);
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.15, "mean {mean} vs {expected}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input ordered");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(21);
        for &(n, k) in &[(10usize, 10usize), (100, 5), (50, 25), (1, 1), (5, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }
}
