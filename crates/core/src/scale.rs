//! Scale factors (spec §2.3.4.1, Table 2.12).
//!
//! A scale factor fixes the number of Persons; every other entity count
//! follows from the generator's distributions. The spec's published SFs
//! start at 0.1 (1.5 K persons); this reproduction adds three laptop
//! sub-scales (0.001 / 0.003 / 0.01 / 0.03) obtained by extending the
//! person-count progression downward, so tests and CI stay fast while
//! benchmarks can still sweep an order of magnitude.

use crate::datetime::Date;

/// A named scale factor with its person count (spec Table 2.12).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleFactor {
    /// Human name, e.g. `"0.1"` or `"30"`.
    pub name: &'static str,
    /// Nominal on-disk size in gigabytes (CsvBasic).
    pub gigabytes: f64,
    /// Number of Persons to generate.
    pub persons: u64,
}

/// All scale factors known to this implementation, ascending.
pub const SCALE_FACTORS: &[ScaleFactor] = &[
    ScaleFactor { name: "0.001", gigabytes: 0.001, persons: 80 },
    ScaleFactor { name: "0.003", gigabytes: 0.003, persons: 170 },
    ScaleFactor { name: "0.01", gigabytes: 0.01, persons: 370 },
    ScaleFactor { name: "0.03", gigabytes: 0.03, persons: 800 },
    // From here on the person counts are the spec's Table 2.12.
    ScaleFactor { name: "0.1", gigabytes: 0.1, persons: 1_500 },
    ScaleFactor { name: "0.3", gigabytes: 0.3, persons: 3_500 },
    ScaleFactor { name: "1", gigabytes: 1.0, persons: 11_000 },
    ScaleFactor { name: "3", gigabytes: 3.0, persons: 27_000 },
    ScaleFactor { name: "10", gigabytes: 10.0, persons: 73_000 },
    ScaleFactor { name: "30", gigabytes: 30.0, persons: 182_000 },
    ScaleFactor { name: "100", gigabytes: 100.0, persons: 499_000 },
    ScaleFactor { name: "300", gigabytes: 300.0, persons: 1_250_000 },
    ScaleFactor { name: "1000", gigabytes: 1000.0, persons: 3_600_000 },
];

impl ScaleFactor {
    /// Looks a scale factor up by name.
    pub fn by_name(name: &str) -> Option<ScaleFactor> {
        SCALE_FACTORS.iter().copied().find(|sf| sf.name == name)
    }

    /// Spec default simulation window: 3 years starting 2010-01-01.
    pub fn default_window() -> (Date, Date) {
        (Date::from_ymd(2010, 1, 1), Date::from_ymd(2013, 1, 1))
    }

    /// Fraction of simulated time serialized into the bulk-load dataset;
    /// the remaining tail becomes the update streams (spec §2.3.4:
    /// "roughly the 90% of the total generated network").
    pub const BULK_FRACTION: f64 = 0.9;
}

/// Spec Table 2.12 node/edge totals for the published scale factors,
/// used by experiment E1 to compare measured growth against the paper.
pub const SPEC_TABLE_2_12: &[(&str, u64, u64, u64)] = &[
    // (name, persons, nodes, edges)
    ("0.1", 1_500, 327_600, 1_500_000),
    ("0.3", 3_500, 908_000, 4_600_000),
    ("1", 11_000, 3_200_000, 17_300_000),
    ("3", 27_000, 9_300_000, 52_700_000),
    ("10", 73_000, 30_000_000, 176_600_000),
    ("30", 182_000, 88_800_000, 540_900_000),
    ("100", 499_000, 282_600_000, 1_800_000_000),
    ("300", 1_250_000, 817_300_000, 5_300_000_000),
    ("1000", 3_600_000, 2_700_000_000, 17_000_000_000),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(ScaleFactor::by_name("1").unwrap().persons, 11_000);
        assert_eq!(ScaleFactor::by_name("0.003").unwrap().persons, 170);
        assert!(ScaleFactor::by_name("7").is_none());
    }

    #[test]
    fn ascending_person_counts() {
        for w in SCALE_FACTORS.windows(2) {
            assert!(w[0].persons < w[1].persons);
        }
    }

    #[test]
    fn spec_table_names_resolve() {
        for &(name, persons, _, _) in SPEC_TABLE_2_12 {
            let sf = ScaleFactor::by_name(name).unwrap();
            assert_eq!(sf.persons, persons);
        }
    }

    #[test]
    fn default_window_is_three_years() {
        let (start, end) = ScaleFactor::default_window();
        assert_eq!(start.year(), 2010);
        assert_eq!(end.year(), 2013);
        assert_eq!(end.0 - start.0, 1096); // 2012 is a leap year
    }
}
