//! Deterministic fault injection for crash-safety testing.
//!
//! Production code is instrumented with *named fault points* — e.g.
//! `wal.append.short_write`, `writer.apply.panic`, `conn.read.stall` —
//! by calling [`check`] at the spot where a fault could strike. When
//! nothing is armed the call is a single relaxed atomic load returning
//! `None`, so instrumented hot paths cost nothing in normal operation.
//!
//! Faults are armed either programmatically ([`arm`], for unit tests)
//! or from the `SNB_FAULTS` environment variable ([`arm_from_env`], for
//! chaos harnesses driving a separate server process). A fault fires
//! either on an exact hit count (`@h3` = the third time the point is
//! reached, exactly once) or per-hit with a seeded probability (`@p0.5`
//! with `SNB_FAULT_SEED`), so every run of a chaos scenario kills the
//! process at the same byte of the same record.
//!
//! What a firing fault *does* is described by [`Fault`]: tear a write
//! short, panic, stall, abort the process (the in-process equivalent of
//! a SIGKILL — no destructors, no flushes), surface an injected I/O
//! error, or open a **network partition window** (`partition[:MS]`) —
//! a process-wide flag ([`partition_active`]) the transport layer
//! consults to black-hole traffic *without closing any socket*: reads
//! see no data, writes pretend to succeed, peers observe pure silence.
//! The window heals itself after `MS` milliseconds (default 60 000),
//! which makes split-brain scenarios deterministic: the fault fires at
//! an exact hit count, the partition lasts an exact wall-clock span,
//! and the harness promotes / drives / heals on the same schedule every
//! run. Effects compose (`short:12,stall` = write 12 bytes then hang
//! until the harness delivers the real SIGKILL).
//!
//! ```text
//! SNB_FAULTS="wal.append.short_write=short:12,stall@h3;writer.apply.panic=panic@h5"
//! SNB_FAULTS="net.partition=partition:4000@h40"
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// The composite effect of a firing fault point, in application order:
/// short-write, then stall, then kill / panic / error.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Fault {
    /// Truncate the instrumented write to this many bytes.
    pub short_write: Option<usize>,
    /// Sleep this long at the fault point (a stalled thread for the
    /// harness to SIGKILL, or a slowloris-style hang).
    pub stall_ms: u64,
    /// Abort the process without running destructors (`process::abort`)
    /// — durability-wise identical to a SIGKILL at this instruction.
    pub kill: bool,
    /// Panic at the fault point (exercises catch-unwind paths).
    pub panic: bool,
    /// Surface an injected error from the fault point.
    pub error: bool,
    /// Open a process-wide network-partition window lasting this many
    /// milliseconds (see [`partition_active`]). `0` = no partition.
    pub partition_ms: u64,
}

impl Fault {
    /// Parses an effect list such as `short:12,stall:500,err` or
    /// `panic` or `kill`.
    fn parse(spec: &str) -> Result<Fault, String> {
        let mut f = Fault::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (name, value) = match part.split_once(':') {
                Some((n, v)) => (n, Some(v)),
                None => (part, None),
            };
            let num = |v: Option<&str>, default: u64| -> Result<u64, String> {
                match v {
                    None => Ok(default),
                    Some(v) => v.parse().map_err(|e| format!("{part:?}: {e}")),
                }
            };
            match name {
                "short" => f.short_write = Some(num(value, 0)? as usize),
                "stall" => f.stall_ms = num(value, 60_000)?,
                "kill" => f.kill = true,
                "panic" => f.panic = true,
                "err" => f.error = true,
                "partition" => f.partition_ms = num(value, 60_000)?,
                other => return Err(format!("unknown fault effect {other:?}")),
            }
        }
        Ok(f)
    }

    /// Executes the stall / kill / panic leg of the effect and reports
    /// whether the caller should surface an injected error. The
    /// short-write leg is the caller's job (only it holds the buffer).
    pub fn trip(&self, point: &str) -> bool {
        if self.partition_ms > 0 {
            start_partition(self.partition_ms);
        }
        if self.stall_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.stall_ms));
        }
        if self.kill {
            std::process::abort();
        }
        if self.panic {
            panic!("injected fault at {point}");
        }
        self.error
    }
}

/// When a fault point fires.
#[derive(Clone, Copy, Debug)]
pub enum Trigger {
    /// Fire exactly once, on the `n`-th hit (1-based).
    OnHit(u64),
    /// Fire independently per hit with probability `p`, driven by a
    /// seeded splitmix64 stream (deterministic per arm call).
    Probability(f64),
}

struct Armed {
    fault: Fault,
    trigger: Trigger,
    hits: u64,
    fired: u64,
    rng: u64,
}

#[derive(Default)]
struct Registry {
    points: HashMap<String, Armed>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Millisecond deadline (relative to [`partition_anchor`]) until which
/// the partition window is open; `0` = no partition.
static PARTITION_UNTIL_MS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Fixed time origin for the partition deadline arithmetic.
fn partition_anchor() -> std::time::Instant {
    static ANCHOR: OnceLock<std::time::Instant> = OnceLock::new();
    *ANCHOR.get_or_init(std::time::Instant::now)
}

/// Opens (or extends) the process-wide partition window for `ms`
/// milliseconds from now.
pub fn start_partition(ms: u64) {
    let now = partition_anchor().elapsed().as_millis() as u64;
    PARTITION_UNTIL_MS.fetch_max(now.saturating_add(ms.max(1)), Ordering::SeqCst);
}

/// Closes the partition window immediately (tests and shutdown paths).
pub fn heal_partition() {
    PARTITION_UNTIL_MS.store(0, Ordering::SeqCst);
}

/// Whether the process is inside an injected network-partition window.
/// Transport layers consult this to black-hole traffic without closing
/// sockets: reads report no data, writes pretend to succeed, and the
/// peer sees pure silence until the window expires on its own. One
/// relaxed-ish atomic load when no partition was ever armed.
#[inline]
pub fn partition_active() -> bool {
    let until = PARTITION_UNTIL_MS.load(Ordering::Acquire);
    if until == 0 {
        return false;
    }
    let now = partition_anchor().elapsed().as_millis() as u64;
    if now >= until {
        // Expired: heal, racing stores only re-extend a live window.
        let _ = PARTITION_UNTIL_MS.compare_exchange(until, 0, Ordering::SeqCst, Ordering::SeqCst);
        return false;
    }
    true
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Arms `point` with `fault` under `trigger`; `seed` drives the
/// probabilistic trigger's RNG stream (ignored for [`Trigger::OnHit`]).
pub fn arm(point: &str, fault: Fault, trigger: Trigger, seed: u64) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.points.insert(point.to_string(), Armed { fault, trigger, hits: 0, fired: 0, rng: seed });
    ENABLED.store(true, Ordering::Release);
}

/// Disarms every fault point and resets hit counters; [`check`] returns
/// to its no-op fast path.
pub fn disarm_all() {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.points.clear();
    ENABLED.store(false, Ordering::Release);
}

/// The instrumentation call: returns the armed [`Fault`] when `point`
/// fires on this hit, `None` otherwise. With nothing armed anywhere
/// this is one relaxed atomic load — safe to leave in hot paths.
#[inline]
pub fn check(point: &str) -> Option<Fault> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: &str) -> Option<Fault> {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let armed = reg.points.get_mut(point)?;
    armed.hits += 1;
    let fires = match armed.trigger {
        Trigger::OnHit(n) => armed.fired == 0 && armed.hits == n,
        Trigger::Probability(p) => (splitmix64(&mut armed.rng) as f64 / u64::MAX as f64) < p,
    };
    if fires {
        armed.fired += 1;
        Some(armed.fault.clone())
    } else {
        None
    }
}

/// How many times `point` has been reached since it was armed (0 when
/// not armed) — observability for tests and the chaos harness.
pub fn hits(point: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.points.get(point).map(|a| a.hits).unwrap_or(0)
}

/// How many times `point` has fired since it was armed.
pub fn fired(point: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.points.get(point).map(|a| a.fired).unwrap_or(0)
}

/// Parses one `point=effects@trigger` clause.
fn parse_clause(clause: &str) -> Result<(String, Fault, Trigger), String> {
    let (point, rest) =
        clause.split_once('=').ok_or_else(|| format!("missing '=' in {clause:?}"))?;
    let (effects, trigger) = match rest.rsplit_once('@') {
        Some((e, t)) => (e, t),
        None => (rest, "h1"),
    };
    let fault = Fault::parse(effects)?;
    let trigger = if let Some(n) = trigger.strip_prefix('h') {
        Trigger::OnHit(n.parse().map_err(|e| format!("trigger {trigger:?}: {e}"))?)
    } else if let Some(p) = trigger.strip_prefix('p') {
        Trigger::Probability(p.parse().map_err(|e| format!("trigger {trigger:?}: {e}"))?)
    } else {
        return Err(format!("trigger {trigger:?} must start with 'h' or 'p'"));
    };
    Ok((point.to_string(), fault, trigger))
}

/// Arms fault points from a spec string: `;`-separated clauses of the
/// form `point=effects[@trigger]`, e.g.
/// `wal.append.short_write=short:12,stall@h3;conn.read.stall=stall:200@p0.25`.
pub fn arm_from_spec(spec: &str, seed: u64) -> Result<usize, String> {
    let mut n = 0;
    for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        let (point, fault, trigger) = parse_clause(clause)?;
        arm(&point, fault, trigger, seed.wrapping_add(n as u64));
        n += 1;
    }
    Ok(n)
}

/// Arms fault points from `SNB_FAULTS` (seeded by `SNB_FAULT_SEED`,
/// default 42). Returns the number of points armed; unset env is 0.
pub fn arm_from_env() -> Result<usize, String> {
    let Ok(spec) = std::env::var("SNB_FAULTS") else {
        return Ok(0);
    };
    let seed = std::env::var("SNB_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    arm_from_spec(&spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global; tests touching it serialize.
    fn lock() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_points_are_silent() {
        let _g = lock();
        disarm_all();
        for _ in 0..1000 {
            assert!(check("wal.append.short_write").is_none());
        }
        assert_eq!(hits("wal.append.short_write"), 0);
    }

    #[test]
    fn on_hit_trigger_fires_exactly_once_at_n() {
        let _g = lock();
        disarm_all();
        arm("p.x", Fault { error: true, ..Fault::default() }, Trigger::OnHit(3), 0);
        assert!(check("p.x").is_none());
        assert!(check("p.x").is_none());
        let f = check("p.x").expect("third hit fires");
        assert!(f.error);
        for _ in 0..10 {
            assert!(check("p.x").is_none(), "OnHit fires once");
        }
        assert_eq!(hits("p.x"), 13);
        assert_eq!(fired("p.x"), 1);
        disarm_all();
    }

    #[test]
    fn probability_trigger_is_deterministic_per_seed() {
        let _g = lock();
        disarm_all();
        let run = |seed: u64| -> Vec<bool> {
            arm(
                "p.prob",
                Fault { panic: true, ..Fault::default() },
                Trigger::Probability(0.5),
                seed,
            );
            let fires = (0..64).map(|_| check("p.prob").is_some()).collect();
            disarm_all();
            fires
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same firing pattern");
        assert_ne!(a, c, "different seed diverges");
        assert!(a.iter().filter(|&&f| f).count() > 10, "p=0.5 fires often");
    }

    #[test]
    fn spec_grammar_round_trips() {
        let _g = lock();
        disarm_all();
        let n = arm_from_spec(
            "wal.append.short_write=short:12,stall:1@h2; writer.apply.panic=panic@h1",
            1,
        )
        .unwrap();
        assert_eq!(n, 2);
        let f = check("writer.apply.panic").expect("h1 fires on first hit");
        assert!(f.panic && !f.kill && f.short_write.is_none());
        assert!(check("wal.append.short_write").is_none());
        let f = check("wal.append.short_write").expect("h2 fires on second hit");
        assert_eq!(f.short_write, Some(12));
        assert_eq!(f.stall_ms, 1);
        disarm_all();

        assert!(arm_from_spec("nope", 0).is_err(), "missing '='");
        assert!(arm_from_spec("a=warp@h1", 0).is_err(), "unknown effect");
        assert!(arm_from_spec("a=err@x1", 0).is_err(), "unknown trigger");

        let n = arm_from_spec("net.partition=partition:4000@h40", 2).unwrap();
        assert_eq!(n, 1);
        let (point, fault, _) = parse_clause("net.partition=partition:4000@h40").unwrap();
        assert_eq!(point, "net.partition");
        assert_eq!(fault.partition_ms, 4000);
        let (_, fault, _) = parse_clause("net.partition=partition@h1").unwrap();
        assert_eq!(fault.partition_ms, 60_000, "bare 'partition' defaults to 60s");
        disarm_all();
    }

    #[test]
    fn partition_window_opens_and_heals() {
        let _g = lock();
        heal_partition();
        assert!(!partition_active(), "no window armed");
        // Tripping a partition fault opens the window for its span.
        let f = Fault { partition_ms: 60, ..Fault::default() };
        assert!(!f.trip("net.partition"), "partition is not an error leg");
        assert!(partition_active(), "window open right after the trip");
        std::thread::sleep(std::time::Duration::from_millis(80));
        assert!(!partition_active(), "window heals itself after the span");
        // Manual heal closes an open window immediately.
        start_partition(60_000);
        assert!(partition_active());
        heal_partition();
        assert!(!partition_active());
    }

    #[test]
    fn trip_surfaces_error_leg() {
        let f = Fault { error: true, stall_ms: 1, ..Fault::default() };
        assert!(f.trip("unit.test"));
        let f = Fault::default();
        assert!(!f.trip("unit.test"));
    }

    #[test]
    #[should_panic(expected = "injected fault at unit.panic")]
    fn trip_panics_when_asked() {
        Fault { panic: true, ..Fault::default() }.trip("unit.panic");
    }
}
