//! Full Disclosure Report support (spec chapter 6).
//!
//! The FDR "allows reproduction of any benchmark result by a third
//! party": system details (§6.1.1), benchmark configuration, load time,
//! the results directory (§6.2: configuration settings used, results
//! log, results summary). This module collects what is collectable
//! programmatically and writes the results directory layout the
//! auditor retrieves.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

use snb_core::SnbResult;

use crate::log::ResultsLog;

/// System details per §6.1.1, best-effort from the running host.
#[derive(Clone, Debug, Default)]
pub struct SystemDetails {
    /// OS name/version string.
    pub os: String,
    /// CPU model.
    pub cpu: String,
    /// Logical CPU count.
    pub cpus: usize,
    /// Total memory in MiB.
    pub memory_mib: u64,
    /// Rust compiler version used to build the SUT.
    pub rustc: String,
}

impl SystemDetails {
    /// Collects details from `/proc` and the environment (Linux).
    pub fn collect() -> SystemDetails {
        let os = std::fs::read_to_string("/proc/version")
            .unwrap_or_else(|_| "unknown".into())
            .trim()
            .to_string();
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let cpu = cpuinfo
            .lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.split(':').nth(1))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".into());
        let cpus = cpuinfo.matches("processor\t").count().max(1);
        let memory_mib = std::fs::read_to_string("/proc/meminfo")
            .ok()
            .and_then(|m| {
                m.lines()
                    .find(|l| l.starts_with("MemTotal"))
                    .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse::<u64>().ok()))
            })
            .map(|kb| kb / 1024)
            .unwrap_or(0);
        let rustc = option_env!("CARGO_PKG_RUST_VERSION").unwrap_or("stable").to_string();
        SystemDetails { os, cpu, cpus, memory_mib, rustc }
    }
}

/// Everything that goes into the disclosure document.
pub struct Disclosure<'a> {
    /// Host details.
    pub system: SystemDetails,
    /// Benchmark-kit version triple (spec §6.1: specification, data
    /// generator, driver versions).
    pub versions: (&'a str, &'a str, &'a str),
    /// Scale-factor name.
    pub scale_factor: &'a str,
    /// Generator seed.
    pub seed: u64,
    /// Measured bulk-load time.
    pub load_time: Duration,
    /// Store statistics after load.
    pub stats: snb_store::StoreStats,
    /// The run's results log.
    pub log: &'a ResultsLog,
}

impl Disclosure<'_> {
    /// Renders the FDR as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Full Disclosure Report\n");
        let _ = writeln!(out, "## Versions (§6.1)\n");
        let _ = writeln!(out, "- specification: {}", self.versions.0);
        let _ = writeln!(out, "- data generator: {}", self.versions.1);
        let _ = writeln!(out, "- driver: {}\n", self.versions.2);
        let _ = writeln!(out, "## System under test (§6.1.1)\n");
        let _ = writeln!(out, "- OS: {}", self.system.os);
        let _ = writeln!(out, "- CPU: {} × {}", self.system.cpus, self.system.cpu);
        let _ = writeln!(out, "- memory: {} MiB", self.system.memory_mib);
        let _ = writeln!(out, "- toolchain: rustc {}\n", self.system.rustc);
        let _ = writeln!(out, "## Dataset (§6.1.3)\n");
        let _ = writeln!(out, "- scale factor: {} (seed {})", self.scale_factor, self.seed);
        let _ = writeln!(
            out,
            "- loaded: {} nodes, {} edges ({} persons, {} posts, {} comments)",
            self.stats.nodes,
            self.stats.edges,
            self.stats.persons,
            self.stats.posts,
            self.stats.comments
        );
        let _ = writeln!(out, "- load time: {:.3?}\n", self.load_time);
        let _ = writeln!(out, "## Run summary (§6.2)\n");
        let _ = writeln!(out, "- operations executed: {}", self.log.records.len());
        let _ = writeln!(
            out,
            "- on-schedule (<1s late): {:.2}% → audit {}",
            self.log.on_schedule_fraction(Duration::from_secs(1)) * 100.0,
            if self.log.passes_audit() { "PASS" } else { "FAIL" }
        );
        let _ = writeln!(out, "\n| operation | count | mean | p50 | p95 | max |");
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for s in self.log.latency_stats() {
            let _ = writeln!(
                out,
                "| {} | {} | {:?} | {:?} | {:?} | {:?} |",
                s.operation, s.count, s.mean, s.p50, s.p95, s.max
            );
        }
        out
    }

    /// Writes the §6.2 results directory: `results_log.csv`,
    /// `results_summary.md` (the FDR), and `configuration.txt`.
    pub fn write_results_dir(&self, dir: &Path) -> SnbResult<()> {
        std::fs::create_dir_all(dir)?;
        self.log.write_csv(&dir.join("results_log.csv"))?;
        std::fs::write(dir.join("results_summary.md"), self.render())?;
        let mut cfg = std::fs::File::create(dir.join("configuration.txt"))?;
        writeln!(cfg, "scale_factor={}", self.scale_factor)?;
        writeln!(cfg, "seed={}", self.seed)?;
        writeln!(cfg, "spec_version={}", self.versions.0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;

    fn sample_log() -> ResultsLog {
        let mut log = ResultsLog::default();
        for i in 0..10u64 {
            log.push(LogRecord {
                operation: format!("IC {}", i % 3 + 1),
                scheduled_start: Duration::from_millis(i),
                actual_start: Duration::from_millis(i),
                latency: Duration::from_micros(100 + i),
                result_count: i as usize,
            });
        }
        log
    }

    fn sample_stats() -> snb_store::StoreStats {
        snb_store::StoreStats {
            nodes: 1000,
            edges: 5000,
            persons: 100,
            forums: 150,
            posts: 300,
            comments: 450,
            knows: 600,
            likes: 700,
        }
    }

    #[test]
    fn system_details_collect_on_linux() {
        let d = SystemDetails::collect();
        assert!(d.cpus >= 1);
        assert!(!d.os.is_empty());
    }

    #[test]
    fn render_contains_required_sections() {
        let log = sample_log();
        let d = Disclosure {
            system: SystemDetails::collect(),
            versions: ("0.3.3", "snb-datagen 0.1.0", "snb-driver 0.1.0"),
            scale_factor: "0.003",
            seed: 42,
            load_time: Duration::from_millis(123),
            stats: sample_stats(),
            log: &log,
        };
        let md = d.render();
        for section in ["Versions", "System under test", "Dataset", "Run summary"] {
            assert!(md.contains(section), "missing {section}");
        }
        assert!(md.contains("audit PASS"));
    }

    #[test]
    fn results_dir_layout() {
        let log = sample_log();
        let d = Disclosure {
            system: SystemDetails::default(),
            versions: ("0.3.3", "dg", "drv"),
            scale_factor: "0.001",
            seed: 1,
            load_time: Duration::from_secs(1),
            stats: sample_stats(),
            log: &log,
        };
        let dir = std::env::temp_dir().join(format!("snb_fdr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        d.write_results_dir(&dir).unwrap();
        assert!(dir.join("results_log.csv").exists());
        assert!(dir.join("results_summary.md").exists());
        assert!(dir.join("configuration.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
