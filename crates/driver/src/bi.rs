//! The BI-workload driver: power and throughput tests.
//!
//! * **Power test** — every query runs sequentially over its curated
//!   parameter bindings; per-query latency statistics are reported (the
//!   shape of the BI paper's per-query runtime tables).
//! * **Throughput test** — `n` client threads concurrently drain a
//!   shared queue of (query, binding) work items against the read-only
//!   store; reports aggregate queries/second.
//! * **Validation mode** (spec §6.2) — every binding executed through
//!   both engines, failing on the first mismatch.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use snb_bi::BiParams;
use snb_core::SnbResult;
use snb_engine::{QueryContext, QueryProfile};
use snb_params::ParamGen;
use snb_store::Store;

/// Timed iterations per binding discarded before measurement starts —
/// they warm caches and the allocator so µs-scale medians are not
/// dominated by first-touch noise.
pub const WARMUP_RUNS: usize = 2;

/// Which engine a run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// CSR + hash aggregation + top-k pruning.
    Optimized,
    /// Full-materialisation reference plans.
    Naive,
}

/// Per-query power-test statistics.
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// BI query number.
    pub query: u8,
    /// Number of bindings executed.
    pub executions: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Minimum latency — the most noise-resistant point statistic for
    /// µs-scale queries.
    pub min: Duration,
    /// Median latency.
    pub p50: Duration,
    /// Maximum latency.
    pub max: Duration,
    /// Coefficient of variation of the latencies (stddev / mean) — the
    /// parameter-curation quality metric of experiment E4.
    pub cv: f64,
    /// Total rows returned.
    pub total_rows: usize,
    /// Operator counters accumulated over the measured executions
    /// (warmup iterations excluded).
    pub profile: QueryProfile,
}

/// Computes the per-query statistics from measured latencies; exposed
/// for the bench binaries that roll their own measurement loops.
pub fn stats_for(query: u8, lats: &[Duration], rows: usize, profile: QueryProfile) -> QueryStats {
    let mut sorted: Vec<Duration> = lats.to_vec();
    sorted.sort_unstable();
    let n = sorted.len().max(1);
    let total: Duration = sorted.iter().sum();
    let mean = total / n as u32;
    let mean_s = mean.as_secs_f64();
    let var = sorted
        .iter()
        .map(|d| {
            let x = d.as_secs_f64() - mean_s;
            x * x
        })
        .sum::<f64>()
        / n as f64;
    QueryStats {
        query,
        executions: sorted.len(),
        mean,
        min: sorted.first().copied().unwrap_or_default(),
        p50: sorted.get(n / 2).copied().unwrap_or_default(),
        max: sorted.last().copied().unwrap_or_default(),
        cv: if mean_s > 0.0 { var.sqrt() / mean_s } else { 0.0 },
        total_rows: rows,
        profile,
    }
}

/// Runs the power test over queries `queries` with `bindings_per_query`
/// curated bindings each, on a context sized from `SNB_THREADS`.
pub fn power_test(
    store: &Store,
    queries: &[u8],
    bindings_per_query: usize,
    engine: Engine,
    seed: u64,
) -> Vec<QueryStats> {
    power_test_ctx(store, &QueryContext::from_env(), queries, bindings_per_query, engine, seed)
}

/// Runs the power test on an explicit execution context: the power
/// stream is sequential, so one context serves every query in it.
pub fn power_test_ctx(
    store: &Store,
    ctx: &QueryContext,
    queries: &[u8],
    bindings_per_query: usize,
    engine: Engine,
    seed: u64,
) -> Vec<QueryStats> {
    let gen = ParamGen::new(store, seed);
    let mut out = Vec::new();
    for &q in queries {
        let bindings = gen.bi_params(q, bindings_per_query);
        // Discarded warmup: first-touch cache and allocator effects
        // land here, not in the measured latencies.
        if let Some(first) = bindings.first() {
            for _ in 0..WARMUP_RUNS {
                let _ = match engine {
                    Engine::Optimized => snb_bi::run_with(store, ctx, first),
                    Engine::Naive => snb_bi::run_naive(store, first),
                };
            }
        }
        // Counters restart after warmup so the profile covers exactly
        // the measured executions.
        ctx.metrics().reset();
        let mut lats = Vec::with_capacity(bindings.len());
        let mut rows = 0usize;
        for b in &bindings {
            let started = Instant::now();
            let summary = match engine {
                Engine::Optimized => snb_bi::run_with(store, ctx, b),
                Engine::Naive => snb_bi::run_naive(store, b),
            };
            lats.push(started.elapsed());
            rows += summary.rows;
        }
        out.push(stats_for(q, &lats, rows, ctx.metrics().snapshot()));
    }
    out
}

/// Runs `bindings` (pre-generated) and returns their latencies — used
/// by experiment E4 to compare curated against random bindings.
pub fn run_bindings(store: &Store, bindings: &[BiParams]) -> Vec<Duration> {
    let ctx = QueryContext::from_env();
    bindings
        .iter()
        .map(|b| {
            let started = Instant::now();
            let _ = snb_bi::run_with(store, &ctx, b);
            started.elapsed()
        })
        .collect()
}

/// Throughput-test report.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Worker threads used.
    pub threads: usize,
    /// Total queries executed.
    pub queries_executed: usize,
    /// Wall-clock duration of the drain.
    pub wall: Duration,
    /// Queries per second.
    pub qps: f64,
    /// Sum of per-query queue waits (the whole batch is enqueued at
    /// test start, so an item's wait runs from start to its dequeue).
    pub total_queue_wait: Duration,
    /// Sum of pure per-query execution times (dequeue to completion).
    pub total_exec: Duration,
    /// Mean queue wait per executed query.
    pub mean_queue_wait: Duration,
    /// Mean execution time per executed query.
    pub mean_exec: Duration,
}

/// Runs the throughput test: `threads` workers drain a shared queue of
/// (query, binding) items against the shared read-only store.
pub fn throughput_test(
    store: &Store,
    queries: &[u8],
    bindings_per_query: usize,
    threads: usize,
    seed: u64,
) -> ThroughputReport {
    let gen = ParamGen::new(store, seed);
    let mut work: Vec<BiParams> = Vec::new();
    for &q in queries {
        work.extend(gen.bi_params(q, bindings_per_query));
    }
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let executed = AtomicUsize::new(0);
    let queue_wait_ns = AtomicU64::new(0);
    let exec_ns = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                // One context per stream: the streams already saturate
                // the cores, so each query runs single-threaded inside
                // its stream (no oversubscription).
                let ctx = QueryContext::single_threaded();
                let mut wait = 0u64;
                let mut exec = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let dequeued = Instant::now();
                    wait += dequeued.duration_since(started).as_nanos() as u64;
                    let _ = snb_bi::run_with(store, &ctx, &work[i]);
                    exec += dequeued.elapsed().as_nanos() as u64;
                    executed.fetch_add(1, Ordering::Relaxed);
                }
                queue_wait_ns.fetch_add(wait, Ordering::Relaxed);
                exec_ns.fetch_add(exec, Ordering::Relaxed);
            });
        }
    });
    let wall = started.elapsed();
    let queries_executed = executed.load(Ordering::Relaxed);
    let total_queue_wait = Duration::from_nanos(queue_wait_ns.load(Ordering::Relaxed));
    let total_exec = Duration::from_nanos(exec_ns.load(Ordering::Relaxed));
    let per_query = |d: Duration| d / queries_executed.max(1) as u32;
    ThroughputReport {
        threads,
        queries_executed,
        wall,
        qps: queries_executed as f64 / wall.as_secs_f64().max(1e-9),
        mean_queue_wait: per_query(total_queue_wait),
        mean_exec: per_query(total_exec),
        total_queue_wait,
        total_exec,
    }
}

/// Validation mode: run every binding through both engines (spec §6.2's
/// "driver in validation mode"); errors on the first mismatch.
pub fn validate_all(
    store: &Store,
    queries: &[u8],
    bindings_per_query: usize,
    seed: u64,
) -> SnbResult<usize> {
    let gen = ParamGen::new(store, seed);
    let ctx = QueryContext::from_env();
    let mut validated = 0;
    for &q in queries {
        for b in gen.bi_params(q, bindings_per_query) {
            snb_bi::validate_with(store, &ctx, &b)?;
            validated += 1;
        }
    }
    Ok(validated)
}

/// All 25 BI query numbers.
pub const ALL_BI_QUERIES: [u8; 25] =
    [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25];

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;
    use snb_store::store_for_config;
    use std::sync::OnceLock;

    fn store() -> &'static Store {
        static S: OnceLock<Store> = OnceLock::new();
        S.get_or_init(|| {
            let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
            c.persons = 120;
            store_for_config(&c)
        })
    }

    #[test]
    fn power_test_covers_requested_queries() {
        let stats = power_test(store(), &[1, 12, 17], 3, Engine::Optimized, 7);
        assert_eq!(stats.len(), 3);
        for s in &stats {
            assert!(s.executions > 0);
            assert!(s.max >= s.p50);
        }
    }

    #[test]
    fn validation_passes_on_all_queries() {
        let validated = validate_all(store(), &ALL_BI_QUERIES, 2, 7).unwrap();
        assert!(validated >= 25, "validated only {validated}");
    }

    #[test]
    fn throughput_scales_worker_count() {
        let r1 = throughput_test(store(), &[1, 3, 12], 4, 1, 7);
        let r4 = throughput_test(store(), &[1, 3, 12], 4, 4, 7);
        assert_eq!(r1.queries_executed, r4.queries_executed);
        assert!(r1.qps > 0.0 && r4.qps > 0.0);
    }

    #[test]
    fn throughput_splits_queue_wait_from_exec() {
        let r = throughput_test(store(), &[1, 3, 12], 4, 2, 7);
        assert!(r.queries_executed > 0);
        // Execution happened, and the decomposition is internally
        // consistent: totals are the per-query means times the count,
        // and a single stream's busy time never exceeds the wall clock
        // times the stream count.
        assert!(r.total_exec > Duration::ZERO);
        assert_eq!(r.mean_exec, r.total_exec / r.queries_executed as u32);
        assert_eq!(r.mean_queue_wait, r.total_queue_wait / r.queries_executed as u32);
        assert!(r.total_exec <= r.wall * r.threads as u32);
    }

    #[test]
    fn stats_math() {
        let lats =
            [Duration::from_micros(100), Duration::from_micros(200), Duration::from_micros(300)];
        let s = stats_for(9, &lats, 5, QueryProfile::default());
        assert_eq!(s.mean, Duration::from_micros(200));
        assert_eq!(s.min, Duration::from_micros(100));
        assert_eq!(s.p50, Duration::from_micros(200));
        assert_eq!(s.max, Duration::from_micros(300));
        assert!(s.cv > 0.0);
        assert_eq!(s.total_rows, 5);
        assert_eq!(s.profile, QueryProfile::default());
    }

    #[test]
    fn power_run_on_fresh_store_never_hits_fallback() {
        // The steady-state contract: over a freshly-loaded store the
        // date index is fresh, so no query execution may fall back to
        // the O(n) linear scan — the fallback counter must stay zero.
        let ctx = QueryContext::new(1);
        let stats = power_test_ctx(store(), &ctx, &ALL_BI_QUERIES, 2, Engine::Optimized, 7);
        assert_eq!(stats.len(), 25);
        for s in &stats {
            assert_eq!(
                s.profile.index_fallbacks, 0,
                "BI {} paid {} linear-scan fallback(s)",
                s.query, s.profile.index_fallbacks
            );
            assert_eq!(s.profile.fallback_rows, 0, "BI {}", s.query);
        }
        // The window-driven queries must actually exercise the index.
        let hits: u64 = stats.iter().map(|s| s.profile.index_hits).sum();
        assert!(hits > 0, "no query recorded a date-index hit");
    }

    #[test]
    fn power_run_after_streamed_inserts_never_hits_fallback() {
        // The stale-index bug this PR fixes: streamed inserts used to
        // leave the date index stale, silently turning every window
        // read into an O(n) scan. With incremental maintenance plus
        // batch-boundary rebuilds, a post-stream power run must stay on
        // the index path.
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 120;
        let (mut s, events) = snb_store::bulk_store_and_stream(&c);
        let world = snb_datagen::dictionaries::StaticWorld::build(c.seed);
        for e in &events {
            s.apply_event(e, &world).unwrap();
        }
        assert!(s.date_index_fresh(), "stream left the index stale");
        let ctx = QueryContext::new(1);
        let stats = power_test_ctx(&s, &ctx, &[1, 2, 3, 12, 14, 18], 2, Engine::Optimized, 7);
        for st in &stats {
            assert_eq!(st.profile.index_fallbacks, 0, "BI {} fell back to scan", st.query);
        }
    }

    #[test]
    fn profiles_record_operator_work() {
        let ctx = QueryContext::new(1);
        let stats = power_test_ctx(store(), &ctx, &[2, 4, 13], 2, Engine::Optimized, 7);
        for s in &stats {
            assert!(s.profile.par_calls > 0, "BI {} recorded no parallel calls", s.query);
            assert!(s.profile.rows_scanned > 0, "BI {} scanned no rows", s.query);
            assert!(s.profile.topk_offered > 0, "BI {} offered nothing to top-k", s.query);
        }
    }

    #[test]
    fn neighborhood_queries_record_edge_work() {
        // BI 15 and 17 are pure `knows`-neighbourhood scans; their
        // profiles must carry the traversed-edge counts (the two
        // queries the per-query instrumentation initially skipped).
        let ctx = QueryContext::new(1);
        let stats = power_test_ctx(store(), &ctx, &[15, 17], 2, Engine::Optimized, 7);
        for s in &stats {
            assert!(
                s.profile.edges_traversed > 0,
                "BI {} traversed no edges: {:?}",
                s.query,
                s.profile
            );
        }
    }

    #[test]
    fn partition_thread_matrix_matches_naive_oracle() {
        // The tentpole determinism contract: every (partitions,
        // threads) point of the {1,2,4}² matrix agrees byte-for-byte
        // (rows + fingerprint) with the naive single-threaded oracle.
        let s = store();
        let gen = ParamGen::new(s, 7);
        let bindings: Vec<BiParams> =
            ALL_BI_QUERIES.iter().flat_map(|&q| gen.bi_params(q, 2)).collect();
        let oracle: Vec<_> = bindings.iter().map(|b| snb_bi::run_naive(s, b)).collect();
        let ic_bindings: Vec<snb_interactive::IcParams> =
            (1..=14u8).flat_map(|q| gen.ic_params(q, 2)).collect();
        let ic_oracle: Vec<usize> = ic_bindings
            .iter()
            .map(|b| snb_interactive::validate_complex(s, b).expect("IC engines agree"))
            .collect();
        for partitions in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                let ctx = QueryContext::new(threads).with_partitions(partitions);
                for (b, want) in bindings.iter().zip(&oracle) {
                    let got = snb_bi::run_with(s, &ctx, b);
                    assert_eq!(
                        (got.rows, got.fingerprint),
                        (want.rows, want.fingerprint),
                        "{b:?} diverged at partitions={partitions} threads={threads}"
                    );
                }
                for (b, &want) in ic_bindings.iter().zip(&ic_oracle) {
                    let got = snb_interactive::run_complex_with(s, &ctx, b);
                    assert_eq!(
                        got,
                        want,
                        "IC {} diverged at partitions={partitions} threads={threads}",
                        b.query()
                    );
                }
            }
        }
    }

    #[test]
    fn profile_counters_deterministic_across_repeats() {
        // Morsel/row/index counters are pure functions of the data and
        // morsel size; two identical power runs must agree exactly.
        let ctx = QueryContext::new(1);
        let a = power_test_ctx(store(), &ctx, &[1, 2, 15, 16, 17], 2, Engine::Optimized, 7);
        let b = power_test_ctx(store(), &ctx, &[1, 2, 15, 16, 17], 2, Engine::Optimized, 7);
        for (x, y) in a.iter().zip(&b) {
            let mut xp = x.profile.clone();
            let mut yp = y.profile.clone();
            // Busy times are wall-clock, not logical; compare the rest.
            xp.worker_busy_ns = Vec::new();
            yp.worker_busy_ns = Vec::new();
            assert_eq!(xp, yp, "BI {} profile diverged between runs", x.query);
        }
    }
}
