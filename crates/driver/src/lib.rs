#![warn(missing_docs)]

//! # snb-driver
//!
//! The test driver (spec §3.4 and chapter 6): workload scheduling,
//! execution, results logging and audit checks.
//!
//! * [`schedule`] — the query-mix construction: update-stream times,
//!   per-SF complex-read frequencies (Table B.1), time compression;
//! * [`interactive`] — the Interactive run loop (updates + complex
//!   reads + chained short-read sequences) with full-speed and timed
//!   pacing;
//! * [`bi`] — BI power test, multi-threaded throughput test and
//!   validation mode (optimized vs naive engines);
//! * [`log`] — results log with the §6.2 audit rule (95% of operations
//!   start within 1 s of schedule).

pub mod bi;
pub mod concurrent;
pub mod disclosure;
pub mod interactive;
pub mod log;
pub mod schedule;

pub use bi::{
    power_test, power_test_ctx, throughput_test, validate_all, Engine, QueryStats,
    ThroughputReport, ALL_BI_QUERIES,
};
pub use concurrent::{run_concurrent, ConcurrentReport};
pub use interactive::{run_interactive, InteractiveConfig, InteractiveReport, Pacing};
pub use log::{LogRecord, ResultsLog};
