//! Results log and audit checks (spec §6.2).
//!
//! Every executed operation records its scheduled and actual start
//! times plus its latency; a run is *on schedule* when at least 95% of
//! operations start within one second of their schedule
//! (`actual_start_time - scheduled_start_time < 1 second`).

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use snb_core::SnbResult;

/// One results-log record.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Operation label, e.g. `"IC 9"` or `"IU 7"`.
    pub operation: String,
    /// Scheduled start offset from run begin.
    pub scheduled_start: Duration,
    /// Actual start offset from run begin.
    pub actual_start: Duration,
    /// Execution latency.
    pub latency: Duration,
    /// Result row count (0 for updates).
    pub result_count: usize,
}

/// The results log of a run.
#[derive(Default, Debug)]
pub struct ResultsLog {
    /// All executed operations in execution order.
    pub records: Vec<LogRecord>,
}

/// Latency statistics for one operation type.
#[derive(Clone, Debug)]
pub struct LatencyStats {
    /// Operation label.
    pub operation: String,
    /// Number of executions.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile latency.
    pub p95: Duration,
    /// Maximum latency.
    pub max: Duration,
}

impl ResultsLog {
    /// Appends a record.
    pub fn push(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Fraction of operations starting within `tolerance` of schedule.
    pub fn on_schedule_fraction(&self, tolerance: Duration) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        let on_time = self
            .records
            .iter()
            .filter(|r| r.actual_start.saturating_sub(r.scheduled_start) < tolerance)
            .count();
        on_time as f64 / self.records.len() as f64
    }

    /// The spec's audit rule: 95% of operations start less than one
    /// second late.
    pub fn passes_audit(&self) -> bool {
        self.on_schedule_fraction(Duration::from_secs(1)) >= 0.95
    }

    /// Per-operation latency summaries, sorted by label.
    pub fn latency_stats(&self) -> Vec<LatencyStats> {
        use std::collections::BTreeMap;
        let mut by_op: BTreeMap<&str, Vec<Duration>> = BTreeMap::new();
        for r in &self.records {
            by_op.entry(&r.operation).or_default().push(r.latency);
        }
        by_op
            .into_iter()
            .map(|(op, mut lats)| {
                lats.sort_unstable();
                let count = lats.len();
                let total: Duration = lats.iter().sum();
                LatencyStats {
                    operation: op.to_string(),
                    count,
                    mean: total / count as u32,
                    p50: lats[count / 2],
                    p95: lats[(count * 95 / 100).min(count - 1)],
                    max: *lats.last().expect("non-empty"),
                }
            })
            .collect()
    }

    /// Writes `results_log.csv` in the audit layout.
    pub fn write_csv(&self, path: &Path) -> SnbResult<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            f,
            "operation|scheduled_start_time_us|actual_start_time_us|latency_us|result_count"
        )?;
        for r in &self.records {
            writeln!(
                f,
                "{}|{}|{}|{}|{}",
                r.operation,
                r.scheduled_start.as_micros(),
                r.actual_start.as_micros(),
                r.latency.as_micros(),
                r.result_count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(op: &str, sched_ms: u64, actual_ms: u64) -> LogRecord {
        LogRecord {
            operation: op.into(),
            scheduled_start: Duration::from_millis(sched_ms),
            actual_start: Duration::from_millis(actual_ms),
            latency: Duration::from_micros(250),
            result_count: 1,
        }
    }

    #[test]
    fn audit_passes_at_95_percent() {
        let mut log = ResultsLog::default();
        for i in 0..95 {
            log.push(record("IC 1", i, i)); // on time
        }
        for i in 0..5 {
            log.push(record("IC 1", i, i + 5_000)); // 5 s late
        }
        assert!(log.passes_audit());
        log.push(record("IC 1", 0, 10_000));
        assert!(!log.passes_audit());
    }

    #[test]
    fn early_starts_are_on_time() {
        let mut log = ResultsLog::default();
        log.push(record("IU 2", 100, 50)); // started early
        assert_eq!(log.on_schedule_fraction(Duration::from_secs(1)), 1.0);
    }

    #[test]
    fn latency_stats_grouped_and_ordered() {
        let mut log = ResultsLog::default();
        for (op, us) in [("IC 2", 100u64), ("IC 1", 300), ("IC 2", 200), ("IC 1", 100)] {
            log.push(LogRecord {
                operation: op.into(),
                scheduled_start: Duration::ZERO,
                actual_start: Duration::ZERO,
                latency: Duration::from_micros(us),
                result_count: 0,
            });
        }
        let stats = log.latency_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].operation, "IC 1");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].mean, Duration::from_micros(200));
        assert_eq!(stats[0].max, Duration::from_micros(300));
    }

    #[test]
    fn csv_round_trips_row_count() {
        let mut log = ResultsLog::default();
        log.push(record("IC 3", 1, 2));
        log.push(record("IU 8", 3, 4));
        let path = std::env::temp_dir().join(format!("snb_log_{}.csv", std::process::id()));
        log.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
