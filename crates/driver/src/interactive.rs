//! The Interactive-workload driver (spec §3.4 / §6.2).
//!
//! Replays the update streams against a bulk-loaded store while
//! interleaving complex reads at the per-SF frequencies and chaining
//! short-read sequences after every complex read (person-centric or
//! message-centric, with a decaying continuation probability, spec
//! §3.4). Two pacing modes:
//!
//! * [`Pacing::FullSpeed`] — execute back-to-back (latency-focused
//!   runs, tests);
//! * [`Pacing::Timed`] — map simulation time to wall-clock via the Time
//!   Compression Ratio and sleep until each operation's schedule (audit
//!   runs; enables the 95%-on-time check).

use std::time::{Duration, Instant};

use snb_core::rng::Rng;
use snb_core::SnbResult;
use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::TimedEvent;
use snb_interactive::short;
use snb_interactive::IcParams;
use snb_params::ParamGen;
use snb_store::Store;

use crate::log::{LogRecord, ResultsLog};
use crate::schedule::{build_schedule, OpKind};

/// Wall-clock pacing of the schedule.
#[derive(Clone, Copy, Debug)]
pub enum Pacing {
    /// Run operations back-to-back.
    FullSpeed,
    /// One simulated millisecond takes `1 / speedup` wall milliseconds;
    /// the Time Compression Ratio of §3.4 (larger = faster).
    Timed {
        /// Simulated-to-wall speedup factor.
        speedup: f64,
    },
}

/// Configuration of an interactive run.
#[derive(Clone, Debug)]
pub struct InteractiveConfig {
    /// Scale-factor name, selects the frequency column (Table B.1).
    pub sf_name: String,
    /// Pacing mode.
    pub pacing: Pacing,
    /// Short-read sequence continuation probability.
    pub short_read_continuation: f64,
    /// Driver seed (short-read choices).
    pub seed: u64,
    /// Complex-read parameter bindings per query type (cycled).
    pub bindings_per_query: usize,
}

impl Default for InteractiveConfig {
    fn default() -> Self {
        InteractiveConfig {
            sf_name: "1".into(),
            pacing: Pacing::FullSpeed,
            short_read_continuation: 0.6,
            seed: 42,
            bindings_per_query: 8,
        }
    }
}

/// The outcome of an interactive run.
pub struct InteractiveReport {
    /// Full results log.
    pub log: ResultsLog,
    /// Updates applied.
    pub updates_applied: usize,
    /// Complex reads executed.
    pub complex_reads: usize,
    /// Short reads executed.
    pub short_reads: usize,
}

/// Runs the interactive workload: replays `events` against `store`
/// (which must be the bulk load of the same dataset) with interleaved
/// reads.
pub fn run_interactive(
    store: &mut Store,
    world: &StaticWorld,
    events: &[TimedEvent],
    config: &InteractiveConfig,
) -> SnbResult<InteractiveReport> {
    let frequencies = crate::schedule::frequencies_for(&config.sf_name);
    let update_times: Vec<_> = events.iter().map(|e| e.timestamp).collect();
    let schedule = build_schedule(&update_times, &frequencies);

    // Pre-generate complex-read bindings from the *bulk* store.
    let bindings: Vec<Vec<IcParams>> = {
        let gen = ParamGen::new(store, config.seed);
        (1..=14u8).map(|q| gen.ic_params(q, config.bindings_per_query)).collect()
    };

    let sim_start = schedule.first().map(|o| o.sim_time.0).unwrap_or(0);
    let wall_start = Instant::now();
    let sim_to_wall = |sim: i64| -> Duration {
        match config.pacing {
            Pacing::FullSpeed => Duration::ZERO,
            Pacing::Timed { speedup } => {
                Duration::from_secs_f64(((sim - sim_start).max(0) as f64 / 1000.0) / speedup)
            }
        }
    };

    let mut rng = Rng::derive(config.seed, 0, 555);
    let mut log = ResultsLog::default();
    let mut updates_applied = 0;
    let mut complex_reads = 0;
    let mut short_reads = 0;
    // Pools feeding short-read parameters (person-centric and
    // message-centric), seeded by complex-read results like the real
    // driver's dynamic substitution.
    let mut person_pool: Vec<u64> = store.persons.id.iter().take(32).copied().collect();
    let mut message_pool: Vec<u64> = store.messages.id.iter().take(32).copied().collect();

    for op in &schedule {
        let scheduled = sim_to_wall(op.sim_time.0);
        if let Pacing::Timed { .. } = config.pacing {
            let target = wall_start + scheduled;
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let actual = wall_start.elapsed();
        match op.kind {
            OpKind::Update(i) => {
                let started = Instant::now();
                store.apply_event(&events[i], world)?;
                // Batch-boundary index repair: the in-order insert path
                // keeps the date index fresh for free, so this only
                // fires on out-of-order arrivals — reads that follow
                // must never pay the linear-scan fallback.
                if !store.date_index_fresh() {
                    store.rebuild_date_index();
                }
                updates_applied += 1;
                log.push(LogRecord {
                    operation: format!("IU {}", events[i].event.operation_id()),
                    scheduled_start: scheduled,
                    actual_start: actual,
                    latency: started.elapsed(),
                    result_count: 0,
                });
            }
            OpKind::Complex(q, binding_ix) => {
                let set = &bindings[q as usize - 1];
                if set.is_empty() {
                    continue;
                }
                let params = &set[binding_ix % set.len()];
                let started = Instant::now();
                let rows = snb_interactive::run_complex(store, params);
                complex_reads += 1;
                log.push(LogRecord {
                    operation: format!("IC {q}"),
                    scheduled_start: scheduled,
                    actual_start: actual,
                    latency: started.elapsed(),
                    result_count: rows,
                });
                // Feed the short-read pools from the binding.
                if let IcParams::Q2(p) = params {
                    person_pool.push(p.person_id);
                }
                // Chain short-read sequences (§3.4: person-centric or
                // message-centric, repeating with decaying probability).
                let person_centric = q % 2 == 0;
                let mut chain = 1usize;
                loop {
                    short_reads += run_short_sequence(
                        store,
                        person_centric,
                        &mut person_pool,
                        &mut message_pool,
                        &mut rng,
                        wall_start,
                        scheduled,
                        &mut log,
                    );
                    let p = config.short_read_continuation.powi(chain as i32);
                    if !rng.chance(p) {
                        break;
                    }
                    chain += 1;
                }
            }
        }
    }
    Ok(InteractiveReport { log, updates_applied, complex_reads, short_reads })
}

#[allow(clippy::too_many_arguments)]
fn run_short_sequence(
    store: &Store,
    person_centric: bool,
    person_pool: &mut Vec<u64>,
    message_pool: &mut Vec<u64>,
    rng: &mut Rng,
    wall_start: Instant,
    scheduled: Duration,
    log: &mut ResultsLog,
) -> usize {
    let mut executed = 0;
    let mut log_one = |name: &str, started: Instant, rows: usize, actual: Duration| {
        log.push(LogRecord {
            operation: name.to_string(),
            scheduled_start: scheduled,
            actual_start: actual,
            latency: started.elapsed(),
            result_count: rows,
        });
    };
    if person_centric {
        if person_pool.is_empty() {
            return 0;
        }
        let pid = person_pool[rng.index(person_pool.len())];
        for (name, runner) in [("IS 1", 1u8), ("IS 2", 2), ("IS 3", 3)] {
            let actual = wall_start.elapsed();
            let started = Instant::now();
            let rows = match runner {
                1 => short::is1::run(store, &short::is1::Params { person_id: pid }).len(),
                2 => {
                    let rows = short::is2::run(store, &short::is2::Params { person_id: pid });
                    // Feed message pool from results (dynamic params).
                    message_pool.extend(rows.iter().take(2).map(|r| r.message_id));
                    rows.len()
                }
                _ => {
                    let rows = short::is3::run(store, &short::is3::Params { person_id: pid });
                    person_pool.extend(rows.iter().take(2).map(|r| r.person_id));
                    rows.len()
                }
            };
            log_one(name, started, rows, actual);
            executed += 1;
        }
    } else {
        if message_pool.is_empty() {
            return 0;
        }
        let mid = message_pool[rng.index(message_pool.len())];
        for runner in 4u8..=7 {
            let actual = wall_start.elapsed();
            let started = Instant::now();
            let rows = match runner {
                4 => short::is4::run(store, &short::is4::Params { message_id: mid }).len(),
                5 => {
                    let rows = short::is5::run(store, &short::is5::Params { message_id: mid });
                    person_pool.extend(rows.iter().map(|r| r.person_id));
                    rows.len()
                }
                6 => short::is6::run(store, &short::is6::Params { message_id: mid }).len(),
                _ => {
                    let rows = short::is7::run(store, &short::is7::Params { message_id: mid });
                    message_pool.extend(rows.iter().take(2).map(|r| r.comment_id));
                    rows.len()
                }
            };
            log_one(&format!("IS {runner}"), started, rows, actual);
            executed += 1;
        }
    }
    // Bound the pools so long runs don't grow memory unboundedly.
    if person_pool.len() > 4096 {
        person_pool.drain(0..2048);
    }
    if message_pool.len() > 4096 {
        message_pool.drain(0..2048);
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;
    use snb_store::bulk_store_and_stream;

    fn setup() -> (Store, StaticWorld, Vec<TimedEvent>) {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 100;
        let (store, events) = bulk_store_and_stream(&c);
        let world = StaticWorld::build(c.seed);
        (store, world, events)
    }

    #[test]
    fn full_speed_run_executes_everything() {
        let (mut store, world, events) = setup();
        let report =
            run_interactive(&mut store, &world, &events, &InteractiveConfig::default()).unwrap();
        assert_eq!(report.updates_applied, events.len());
        assert!(report.complex_reads > 0, "no complex reads scheduled");
        assert!(report.short_reads > 0, "no short reads chained");
        // Log covers all three classes.
        let labels: std::collections::HashSet<&str> =
            report.log.records.iter().map(|r| r.operation.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("IU")));
        assert!(labels.iter().any(|l| l.starts_with("IC")));
        assert!(labels.iter().any(|l| l.starts_with("IS")));
        store.validate_invariants().unwrap();
    }

    #[test]
    fn timed_run_passes_audit_at_high_speedup() {
        let (mut store, world, events) = setup();
        // Take a slice of events so the timed run is short.
        let slice: Vec<TimedEvent> = events.into_iter().take(300).collect();
        let sim_span =
            (slice.last().unwrap().timestamp.0 - slice[0].timestamp.0).max(1) as f64 / 1000.0;
        let config = InteractiveConfig {
            pacing: Pacing::Timed { speedup: sim_span / 0.5 }, // ~0.5 s wall
            ..InteractiveConfig::default()
        };
        let report = run_interactive(&mut store, &world, &slice, &config).unwrap();
        assert!(report.log.passes_audit(), "run missed its schedule");
        assert!(report.log.on_schedule_fraction(std::time::Duration::from_secs(1)) > 0.99);
    }

    #[test]
    fn deterministic_operation_sequence() {
        let (mut s1, w1, e1) = setup();
        let (mut s2, w2, e2) = setup();
        let r1 = run_interactive(&mut s1, &w1, &e1, &InteractiveConfig::default()).unwrap();
        let r2 = run_interactive(&mut s2, &w2, &e2, &InteractiveConfig::default()).unwrap();
        let ops1: Vec<&str> = r1.log.records.iter().map(|r| r.operation.as_str()).collect();
        let ops2: Vec<&str> = r2.log.records.iter().map(|r| r.operation.as_str()).collect();
        assert_eq!(ops1, ops2);
        let rows1: Vec<usize> = r1.log.records.iter().map(|r| r.result_count).collect();
        let rows2: Vec<usize> = r2.log.records.iter().map(|r| r.result_count).collect();
        assert_eq!(rows1, rows2);
    }
}
