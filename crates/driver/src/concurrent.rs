//! Concurrent mixed read/write execution (spec §6.4, *Serializability*).
//!
//! The spec's optional serializability check: updates may execute
//! atomically while reads run concurrently, and an auditor verifies
//! serializability. This module provides the concurrency harness:
//!
//! * the store sits behind a [`parking_lot::RwLock`] — updates take the
//!   write lock (each IU is one atomic critical section), reads take
//!   the read lock and therefore always observe a transaction-
//!   consistent snapshot;
//! * a writer thread drains the update stream through a
//!   [`crossbeam::channel`] while `n` reader threads execute complex
//!   reads;
//! * serializability evidence: periodic invariant checks under the
//!   read lock must never observe a half-applied update, and the final
//!   state must equal a serial replay of the same stream.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::RwLock;

use snb_core::SnbResult;
use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::TimedEvent;
use snb_interactive::IcParams;
use snb_store::Store;

/// Outcome of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentReport {
    /// Updates applied by the writer.
    pub updates_applied: usize,
    /// Complex reads executed across all readers.
    pub reads_executed: usize,
    /// Consistency checks performed while the writer was active.
    pub consistency_checks: usize,
    /// Wall time of the whole run.
    pub wall: Duration,
}

/// Runs `reader_threads` complex-read loops concurrently with a writer
/// that applies every event in `events`. Each reader cycles through
/// `bindings`; a checker thread repeatedly validates store invariants
/// under the read lock (the serializability probe). Returns once the
/// stream is drained and all readers have stopped.
pub fn run_concurrent(
    store: Store,
    world: &StaticWorld,
    events: &[TimedEvent],
    bindings: &[IcParams],
    reader_threads: usize,
) -> SnbResult<(Store, ConcurrentReport)> {
    let lock = RwLock::new(store);
    let done = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    let checks = AtomicUsize::new(0);
    let (tx, rx) = channel::bounded::<&TimedEvent>(256);
    let started = Instant::now();
    let mut writer_result: SnbResult<usize> = Ok(0);

    std::thread::scope(|scope| {
        // Readers: cycle bindings until the writer finishes.
        for r in 0..reader_threads.max(1) {
            let lock = &lock;
            let done = &done;
            let reads = &reads;
            scope.spawn(move || {
                // One execution context per reader stream; intra-query
                // parallelism stays off so the reader threads themselves
                // are the unit of concurrency.
                let ctx = snb_engine::QueryContext::single_threaded();
                let mut i = r; // offset so readers hit different bindings
                while !done.load(Ordering::Acquire) {
                    if bindings.is_empty() {
                        break;
                    }
                    let guard = lock.read();
                    let _ = snb_interactive::run_complex_with(
                        &guard,
                        &ctx,
                        &bindings[i % bindings.len()],
                    );
                    drop(guard);
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += reader_threads;
                }
            });
        }
        // Consistency checker: snapshot-level serializability probe.
        {
            let lock = &lock;
            let done = &done;
            let checks = &checks;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let guard = lock.read();
                    guard.validate_invariants().expect("reader observed a half-applied update");
                    drop(guard);
                    checks.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        }
        // Feeder → writer: one atomic write-lock section per event.
        let feeder = scope.spawn(move || {
            for e in events {
                if tx.send(e).is_err() {
                    break;
                }
            }
            // Sender dropped here closes the channel.
        });
        let writer = scope.spawn(|| {
            let mut applied = 0usize;
            for e in rx.iter() {
                let mut guard = lock.write();
                guard.apply_event(e, world)?;
                // Repair the date index before releasing the write
                // lock so concurrent readers never see a stale index
                // (and never fall back to the O(n) scan path).
                if !guard.date_index_fresh() {
                    guard.rebuild_date_index();
                }
                drop(guard);
                applied += 1;
            }
            Ok::<usize, snb_core::SnbError>(applied)
        });
        let result = writer.join().expect("writer thread panicked");
        feeder.join().expect("feeder thread panicked");
        done.store(true, Ordering::Release);
        writer_result = result;
    });

    let applied = writer_result?;
    let report = ConcurrentReport {
        updates_applied: applied,
        reads_executed: reads.load(Ordering::Relaxed),
        consistency_checks: checks.load(Ordering::Relaxed),
        wall: started.elapsed(),
    };
    Ok((lock.into_inner(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;
    use snb_params::ParamGen;
    use snb_store::bulk_store_and_stream;

    #[test]
    fn concurrent_run_matches_serial_replay() {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 90;
        let world = StaticWorld::build(c.seed);
        let (store, events) = bulk_store_and_stream(&c);
        let bindings: Vec<IcParams> = {
            let gen = ParamGen::new(&store, c.seed);
            (1..=14u8).flat_map(|q| gen.ic_params(q, 1)).collect()
        };
        let (concurrent, report) = run_concurrent(store, &world, &events, &bindings, 3).unwrap();
        assert_eq!(report.updates_applied, events.len());
        assert!(report.reads_executed > 0, "readers never ran");
        assert!(report.consistency_checks > 0, "checker never ran");

        // Serial replay oracle.
        let (mut serial, events2) = bulk_store_and_stream(&c);
        for e in &events2 {
            serial.apply_event(e, &world).unwrap();
        }
        assert_eq!(concurrent.persons.len(), serial.persons.len());
        assert_eq!(concurrent.messages.len(), serial.messages.len());
        assert_eq!(concurrent.knows.edge_count(), serial.knows.edge_count());
        assert_eq!(concurrent.person_likes.edge_count(), serial.person_likes.edge_count());
        concurrent.validate_invariants().unwrap();

        // Query-level equality of the final states.
        let gen = ParamGen::new(&serial, c.seed);
        for q in [2u8, 7, 12, 13] {
            for b in gen.ic_params(q, 2) {
                assert_eq!(
                    snb_interactive::run_complex(&concurrent, &b),
                    snb_interactive::run_complex(&serial, &b),
                    "IC {q} differs after concurrent replay"
                );
            }
        }
    }

    #[test]
    fn empty_stream_still_terminates() {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 30;
        let world = StaticWorld::build(c.seed);
        let (store, _) = bulk_store_and_stream(&c);
        let (final_store, report) = run_concurrent(store, &world, &[], &[], 2).unwrap();
        assert_eq!(report.updates_applied, 0);
        final_store.validate_invariants().unwrap();
    }
}
