//! Concurrent mixed read/write execution (spec §6.4, *Serializability*).
//!
//! The spec's optional serializability check: updates may execute
//! atomically while reads run concurrently, and an auditor verifies
//! serializability. This module provides the concurrency harness,
//! built on the store's snapshot-publication scheme
//! ([`snb_store::StoreHandle`]) — there is no lock anywhere on the
//! read path:
//!
//! * the writer drains the update stream in small batches, each batch
//!   building the next immutable store version on a private
//!   copy-on-write clone and publishing it atomically (one publish per
//!   batch bounds the copy-on-write cost without weakening atomicity:
//!   a version either contains a whole batch or none of it);
//! * `n` reader threads pin the latest published version per read and
//!   execute complex reads against it — they never block on the writer
//!   and never observe a half-applied update *by construction*;
//! * serializability evidence: periodic invariant checks on freshly
//!   pinned snapshots must always pass, and the final published state
//!   must equal a serial replay of the same stream.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;

use snb_core::SnbResult;
use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::TimedEvent;
use snb_interactive::IcParams;
use snb_store::{PartitionedStore, Store, StoreHandle};

/// Events per published version on the writer side: big enough to
/// amortize the copy-on-write clone of the touched columns, small
/// enough that readers see fresh data within microseconds.
const WRITE_BATCH: usize = 32;

/// Outcome of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentReport {
    /// Updates applied by the writer.
    pub updates_applied: usize,
    /// Complex reads executed across all readers.
    pub reads_executed: usize,
    /// Consistency checks performed while the writer was active.
    pub consistency_checks: usize,
    /// Store versions the writer published (≈ `updates_applied /
    /// WRITE_BATCH`).
    pub versions_published: u64,
    /// Reader retry loops that hit the snapshot cell's safety valve —
    /// zero in any healthy run (readers are lock-free).
    pub readers_blocked: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
}

/// Runs `reader_threads` complex-read loops concurrently with a writer
/// that applies every event in `events` through snapshot publication.
/// Each reader cycles through `bindings` on a freshly pinned snapshot
/// per read; a checker thread repeatedly validates store invariants on
/// pinned snapshots (the serializability probe). Returns once the
/// stream is drained and all readers have stopped.
pub fn run_concurrent(
    store: Store,
    world: &StaticWorld,
    events: &[TimedEvent],
    bindings: &[IcParams],
    reader_threads: usize,
) -> SnbResult<(Store, ConcurrentReport)> {
    let handle = StoreHandle::new(PartitionedStore::new(store, 1));
    let done = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    let checks = AtomicUsize::new(0);
    let (tx, rx) = channel::bounded::<&TimedEvent>(256);
    let started = Instant::now();
    let mut writer_result: SnbResult<usize> = Ok(0);

    std::thread::scope(|scope| {
        // Readers: cycle bindings until the writer finishes.
        for r in 0..reader_threads.max(1) {
            let handle = &handle;
            let done = &done;
            let reads = &reads;
            scope.spawn(move || {
                // One execution context per reader stream; intra-query
                // parallelism stays off so the reader threads themselves
                // are the unit of concurrency.
                let ctx = snb_engine::QueryContext::single_threaded();
                let mut i = r; // offset so readers hit different bindings
                while !done.load(Ordering::Acquire) {
                    if bindings.is_empty() {
                        break;
                    }
                    // Pin the latest published version — lock-free —
                    // and run the whole read against it.
                    let bound = ctx.clone().with_snapshot(handle.snapshot());
                    let _ =
                        snb_interactive::run_complex_bound(&bound, &bindings[i % bindings.len()]);
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += reader_threads;
                }
            });
        }
        // Consistency checker: snapshot-level serializability probe. A
        // pinned version must *always* validate — the writer publishes
        // only whole batches.
        {
            let handle = &handle;
            let done = &done;
            let checks = &checks;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    handle
                        .snapshot()
                        .validate_invariants()
                        .expect("reader observed a half-applied update");
                    checks.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        }
        // Feeder → writer: one published store version per event batch.
        let feeder = scope.spawn(move || {
            for e in events {
                if tx.send(e).is_err() {
                    break;
                }
            }
            // Sender dropped here closes the channel.
        });
        let writer = scope.spawn(|| {
            let mut applied = 0usize;
            let mut batch: Vec<&TimedEvent> = Vec::with_capacity(WRITE_BATCH);
            // Block for the first event of each batch, then greedily
            // drain up to a full batch without blocking again.
            while let Ok(first) = rx.recv() {
                batch.push(first);
                while batch.len() < WRITE_BATCH {
                    match rx.try_recv() {
                        Ok(e) => batch.push(e),
                        Err(_) => break,
                    }
                }
                handle.publish_with(|next| {
                    for e in &batch {
                        next.apply_event(e, world)?;
                    }
                    // Repair the date index before the version is
                    // published so no reader ever sees a stale index
                    // (and never falls back to the O(n) scan path).
                    if !next.date_index_fresh() {
                        next.rebuild_date_index();
                    }
                    Ok(())
                })?;
                applied += batch.len();
                batch.clear();
            }
            Ok::<usize, snb_core::SnbError>(applied)
        });
        let result = writer.join().expect("writer thread panicked");
        feeder.join().expect("feeder thread panicked");
        done.store(true, Ordering::Release);
        writer_result = result;
    });

    let applied = writer_result?;
    let stats = handle.stats();
    let report = ConcurrentReport {
        updates_applied: applied,
        reads_executed: reads.load(Ordering::Relaxed),
        consistency_checks: checks.load(Ordering::Relaxed),
        versions_published: stats.version,
        readers_blocked: stats.reader_blocked,
        wall: started.elapsed(),
    };
    // The final published version is the run's result; an owned store
    // comes out of a (cheap, copy-on-write) clone of it.
    let final_store = handle.snapshot().store().clone();
    Ok((final_store.into_store(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;
    use snb_params::ParamGen;
    use snb_store::bulk_store_and_stream;

    #[test]
    fn concurrent_run_matches_serial_replay() {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 90;
        let world = StaticWorld::build(c.seed);
        let (store, events) = bulk_store_and_stream(&c);
        let bindings: Vec<IcParams> = {
            let gen = ParamGen::new(&store, c.seed);
            (1..=14u8).flat_map(|q| gen.ic_params(q, 1)).collect()
        };
        let (concurrent, report) = run_concurrent(store, &world, &events, &bindings, 3).unwrap();
        assert_eq!(report.updates_applied, events.len());
        assert!(report.reads_executed > 0, "readers never ran");
        assert!(report.consistency_checks > 0, "checker never ran");
        assert!(report.versions_published > 0, "writer never published");
        assert_eq!(report.readers_blocked, 0, "lock-free readers must not block");

        // Serial replay oracle.
        let (mut serial, events2) = bulk_store_and_stream(&c);
        for e in &events2 {
            serial.apply_event(e, &world).unwrap();
        }
        assert_eq!(concurrent.persons.len(), serial.persons.len());
        assert_eq!(concurrent.messages.len(), serial.messages.len());
        assert_eq!(concurrent.knows.edge_count(), serial.knows.edge_count());
        assert_eq!(concurrent.person_likes.edge_count(), serial.person_likes.edge_count());
        concurrent.validate_invariants().unwrap();

        // Query-level equality of the final states.
        let gen = ParamGen::new(&serial, c.seed);
        for q in [2u8, 7, 12, 13] {
            for b in gen.ic_params(q, 2) {
                assert_eq!(
                    snb_interactive::run_complex(&concurrent, &b),
                    snb_interactive::run_complex(&serial, &b),
                    "IC {q} differs after concurrent replay"
                );
            }
        }
    }

    #[test]
    fn empty_stream_still_terminates() {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 30;
        let world = StaticWorld::build(c.seed);
        let (store, _) = bulk_store_and_stream(&c);
        let (final_store, report) = run_concurrent(store, &world, &[], &[], 2).unwrap();
        assert_eq!(report.updates_applied, 0);
        final_store.validate_invariants().unwrap();
    }
}
