//! Query-mix scheduling (spec §3.4, Table 3.1 / Appendix B.1).
//!
//! Update times come from the update streams (simulation time). Each
//! complex-read type has a per-SF *frequency*: one instance is issued
//! every `freq` update operations. Short-read sequences are chained
//! after complex reads with a decaying continuation probability. The
//! Time Compression Ratio squeezes or stretches the whole schedule
//! without changing the ratios.

/// Per-scale-factor complex-read frequencies (spec Table B.1).
/// Index 0 = IC 1 … index 13 = IC 14.
pub const FREQUENCIES: &[(&str, [u32; 14])] = &[
    ("1", [26, 37, 69, 36, 57, 129, 87, 45, 157, 30, 16, 44, 19, 49]),
    ("3", [26, 37, 79, 36, 61, 172, 72, 27, 209, 32, 17, 44, 19, 49]),
    ("10", [26, 37, 92, 36, 66, 236, 54, 15, 287, 35, 19, 44, 19, 49]),
    ("30", [26, 37, 106, 36, 72, 316, 48, 9, 384, 37, 20, 44, 19, 49]),
    ("100", [26, 37, 123, 36, 78, 434, 38, 5, 527, 40, 22, 44, 19, 49]),
    ("300", [26, 37, 142, 36, 84, 580, 32, 3, 705, 44, 24, 44, 19, 49]),
    ("1000", [26, 37, 165, 36, 91, 796, 25, 1, 967, 47, 26, 44, 19, 49]),
];

/// Frequencies for a scale-factor name; sub-SF scales use the SF 1
/// column (the spec defines frequencies from SF 1 up).
pub fn frequencies_for(sf_name: &str) -> [u32; 14] {
    FREQUENCIES
        .iter()
        .find(|(name, _)| *name == sf_name)
        .map(|&(_, f)| f)
        .unwrap_or(FREQUENCIES[0].1)
}

/// One scheduled operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// An update from the stream (IU 1–8); payload index into the event
    /// vector.
    Update(usize),
    /// A complex read IC `1..=14`; payload is the binding index.
    Complex(u8, usize),
}

/// An operation with its scheduled simulation timestamp.
#[derive(Clone, Copy, Debug)]
pub struct ScheduledOp {
    /// Simulation-time schedule.
    pub sim_time: snb_core::DateTime,
    /// What to run.
    pub kind: OpKind,
}

/// Builds the interleaved schedule: every update at its stream time,
/// and one IC `q` instance on every `freq[q]`-th update (the driver's
/// `update_interleave` rule). Binding indices cycle per query type.
pub fn build_schedule(
    update_times: &[snb_core::DateTime],
    frequencies: &[u32; 14],
) -> Vec<ScheduledOp> {
    let mut ops = Vec::with_capacity(update_times.len() + update_times.len() / 8);
    let mut issued = [0usize; 14];
    for (i, &t) in update_times.iter().enumerate() {
        ops.push(ScheduledOp { sim_time: t, kind: OpKind::Update(i) });
        for (q, &freq) in frequencies.iter().enumerate() {
            if freq != 0 && (i + 1) % freq as usize == 0 {
                ops.push(ScheduledOp {
                    sim_time: t,
                    kind: OpKind::Complex(q as u8 + 1, issued[q]),
                });
                issued[q] += 1;
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::DateTime;

    #[test]
    fn sf1_frequencies_match_spec_table() {
        let f = frequencies_for("1");
        assert_eq!(f[0], 26);
        assert_eq!(f[5], 129); // IC 6
        assert_eq!(f[8], 157); // IC 9
        assert_eq!(f[13], 49); // IC 14
    }

    #[test]
    fn scale_dependent_frequencies() {
        // IC 8's frequency decays with SF (spec Table B.1).
        assert_eq!(frequencies_for("1")[7], 45);
        assert_eq!(frequencies_for("100")[7], 5);
        assert_eq!(frequencies_for("1000")[7], 1);
        // Unknown SFs fall back to SF 1.
        assert_eq!(frequencies_for("0.003"), frequencies_for("1"));
    }

    #[test]
    fn schedule_ratios_follow_frequencies() {
        let times: Vec<DateTime> = (0..10_000).map(|i| DateTime(i * 1000)).collect();
        let freq = frequencies_for("1");
        let ops = build_schedule(&times, &freq);
        let updates = ops.iter().filter(|o| matches!(o.kind, OpKind::Update(_))).count();
        assert_eq!(updates, 10_000);
        for q in 1..=14u8 {
            let count =
                ops.iter().filter(|o| matches!(o.kind, OpKind::Complex(qq, _) if qq == q)).count();
            let expect = 10_000 / freq[q as usize - 1] as usize;
            assert_eq!(count, expect, "IC {q}");
        }
    }

    #[test]
    fn schedule_is_time_ordered() {
        let times: Vec<DateTime> = (0..500).map(|i| DateTime(i * 7)).collect();
        let ops = build_schedule(&times, &frequencies_for("1"));
        for w in ops.windows(2) {
            assert!(w[0].sim_time <= w[1].sim_time);
        }
    }

    #[test]
    fn binding_indices_increment_per_type() {
        let times: Vec<DateTime> = (0..200).map(DateTime).collect();
        let ops = build_schedule(&times, &frequencies_for("1"));
        let mut last: [Option<usize>; 14] = [None; 14];
        for op in ops {
            if let OpKind::Complex(q, ix) = op.kind {
                let slot = &mut last[q as usize - 1];
                match slot {
                    None => assert_eq!(ix, 0),
                    Some(prev) => assert_eq!(ix, *prev + 1),
                }
                *slot = Some(ix);
            }
        }
    }
}
