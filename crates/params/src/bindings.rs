//! Per-query parameter-binding generation.
//!
//! For every BI and IC query template, enumerate candidate bindings,
//! attach a factor count (stage 1) and curate the most uniform subset
//! (stage 2, [`crate::curation::curate`]). The same machinery can also
//! return *uncurated* random bindings — experiment E4 compares runtime
//! variance between the two to demonstrate properties P1–P3.

use snb_bi::BiParams;
use snb_core::datetime::Date;
use snb_core::model::PlaceKind;
use snb_core::rng::Rng;
use snb_interactive::IcParams;
use snb_store::{Ix, Store};

use crate::curation::curate;

/// Parameter generator bound to a loaded store.
pub struct ParamGen<'a> {
    store: &'a Store,
    seed: u64,
    /// Per-person activity factor (stage 1 for person-rooted queries).
    person_factor: Vec<u64>,
}

impl<'a> ParamGen<'a> {
    /// Builds the factor tables for a store.
    pub fn new(store: &'a Store, seed: u64) -> Self {
        let person_factor = (0..store.persons.len() as Ix)
            .map(|p| {
                let deg = store.knows.degree(p) as u64;
                let friend_msgs: u64 =
                    store.knows.targets_of(p).map(|f| store.person_messages.degree(f) as u64).sum();
                deg * 4 + friend_msgs
            })
            .collect();
        ParamGen { store, seed, person_factor }
    }

    fn countries(&self) -> Vec<(Ix, u64)> {
        (0..self.store.places.len() as Ix)
            .filter(|&p| self.store.places.kind[p as usize] == PlaceKind::Country)
            .map(|c| (c, self.store.persons_in_country(c).count() as u64))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    fn tags_with_messages(&self) -> Vec<(Ix, u64)> {
        (0..self.store.tags.len() as Ix)
            .map(|t| (t, self.store.tag_message.degree(t) as u64))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    fn classes_with_messages(&self) -> Vec<(Ix, u64)> {
        (0..self.store.tag_classes.len() as Ix)
            .map(|c| {
                let msgs: u64 = self
                    .store
                    .tagclass_tags
                    .targets_of(c)
                    .map(|t| self.store.tag_message.degree(t) as u64)
                    .sum();
                (c, msgs)
            })
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    fn curated_persons(&self, n: usize) -> Vec<Ix> {
        let candidates: Vec<(Ix, u64)> = self
            .person_factor
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(p, &f)| (p as Ix, f))
            .collect();
        curate(&candidates, n)
    }

    fn month_windows(&self) -> Vec<((i32, u32), u64)> {
        // Candidate (year, month) pairs with their message volume.
        let mut counts: rustc_hash::FxHashMap<(i32, u32), u64> = rustc_hash::FxHashMap::default();
        for m in 0..self.store.messages.len() {
            *counts.entry(self.store.messages.creation_date[m].year_month()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    fn date_candidates(&self) -> Vec<(Date, u64)> {
        // Month boundaries over the simulated window with "messages
        // before" as factor.
        let mut dates = Vec::new();
        for year in 2010..=2012 {
            for month in 1..=12 {
                let d = Date::from_ymd(year, month, 1);
                let cutoff = d.at_midnight();
                let before =
                    self.store.messages.creation_date.iter().filter(|&&t| t < cutoff).count()
                        as u64;
                if before > 0 {
                    dates.push((d, before));
                }
            }
        }
        dates
    }

    fn country_name(&self, c: Ix) -> String {
        self.store.places.name[c as usize].to_string()
    }

    /// Curated bindings for BI query `query` (1–25).
    pub fn bi_params(&self, query: u8, n: usize) -> Vec<BiParams> {
        self.bi_params_inner(query, n, true)
    }

    /// Uncurated (random) bindings — experiment E4's control group.
    pub fn bi_params_random(&self, query: u8, n: usize) -> Vec<BiParams> {
        self.bi_params_inner(query, n, false)
    }

    fn pick_bindings<T: Clone>(
        &self,
        cands: &[(T, u64)],
        n: usize,
        curated: bool,
        tag: u64,
    ) -> Vec<T> {
        if curated {
            curate(cands, n)
        } else {
            let mut rng = Rng::derive(self.seed, tag, 7777);
            (0..n.min(cands.len())).map(|_| cands[rng.index(cands.len())].0.clone()).collect()
        }
    }

    #[allow(clippy::too_many_lines)]
    fn bi_params_inner(&self, query: u8, n: usize, curated: bool) -> Vec<BiParams> {
        let s = self.store;
        match query {
            1 => self
                .pick_bindings(&self.date_candidates(), n, curated, 1)
                .into_iter()
                .map(|date| BiParams::Q1(snb_bi::bi01::Params { date }))
                .collect(),
            2 => {
                let countries = self.countries();
                let mut cands = Vec::new();
                for (i, &(c1, n1)) in countries.iter().enumerate() {
                    for &(c2, n2) in countries.iter().skip(i + 1) {
                        cands.push(((c1, c2), n1 + n2));
                    }
                }
                self.pick_bindings(&cands, n, curated, 2)
                    .into_iter()
                    .map(|(c1, c2)| {
                        BiParams::Q2(snb_bi::bi02::Params {
                            start_date: Date::from_ymd(2010, 1, 1),
                            end_date: Date::from_ymd(2012, 12, 31),
                            country1: self.country_name(c1),
                            country2: self.country_name(c2),
                            min_count: 0,
                        })
                    })
                    .collect()
            }
            3 => self
                .pick_bindings(&self.month_windows(), n, curated, 3)
                .into_iter()
                .map(|(y, m)| BiParams::Q3(snb_bi::bi03::Params { year: y, month: m }))
                .collect(),
            4 => {
                let classes = self.classes_with_messages();
                let countries = self.countries();
                let mut cands = Vec::new();
                for &(cl, mf) in &classes {
                    for &(co, pf) in &countries {
                        cands.push(((cl, co), mf * pf));
                    }
                }
                self.pick_bindings(&cands, n, curated, 4)
                    .into_iter()
                    .map(|(cl, co)| {
                        BiParams::Q4(snb_bi::bi04::Params {
                            tag_class: s.tag_classes.name[cl as usize].to_string(),
                            country: self.country_name(co),
                        })
                    })
                    .collect()
            }
            5 => self
                .pick_bindings(&self.countries(), n, curated, 5)
                .into_iter()
                .map(|c| BiParams::Q5(snb_bi::bi05::Params { country: self.country_name(c) }))
                .collect(),
            6 => self
                .pick_bindings(&self.tags_with_messages(), n, curated, 6)
                .into_iter()
                .map(|t| {
                    BiParams::Q6(snb_bi::bi06::Params { tag: s.tags.name[t as usize].to_string() })
                })
                .collect(),
            7 => self
                .pick_bindings(&self.tags_with_messages(), n, curated, 7)
                .into_iter()
                .map(|t| {
                    BiParams::Q7(snb_bi::bi07::Params { tag: s.tags.name[t as usize].to_string() })
                })
                .collect(),
            8 => self
                .pick_bindings(&self.tags_with_messages(), n, curated, 8)
                .into_iter()
                .map(|t| {
                    BiParams::Q8(snb_bi::bi08::Params { tag: s.tags.name[t as usize].to_string() })
                })
                .collect(),
            9 => {
                let classes = self.classes_with_messages();
                let mut cands = Vec::new();
                for (i, &(c1, f1)) in classes.iter().enumerate() {
                    for &(c2, f2) in classes.iter().skip(i + 1) {
                        cands.push(((c1, c2), f1 + f2));
                    }
                }
                self.pick_bindings(&cands, n, curated, 9)
                    .into_iter()
                    .map(|(c1, c2)| {
                        BiParams::Q9(snb_bi::bi09::Params {
                            tag_class1: s.tag_classes.name[c1 as usize].to_string(),
                            tag_class2: s.tag_classes.name[c2 as usize].to_string(),
                            threshold: 0,
                        })
                    })
                    .collect()
            }
            10 => self
                .pick_bindings(&self.tags_with_messages(), n, curated, 10)
                .into_iter()
                .map(|t| {
                    BiParams::Q10(snb_bi::bi10::Params {
                        tag: s.tags.name[t as usize].to_string(),
                        date: Date::from_ymd(2011, 1, 1),
                    })
                })
                .collect(),
            11 => self
                .pick_bindings(&self.countries(), n, curated, 11)
                .into_iter()
                .map(|c| {
                    BiParams::Q11(snb_bi::bi11::Params {
                        country: self.country_name(c),
                        blacklist: vec!["maybe".into(), "wonder".into()],
                    })
                })
                .collect(),
            12 => self
                .pick_bindings(&self.date_candidates(), n, curated, 12)
                .into_iter()
                .map(|date| BiParams::Q12(snb_bi::bi12::Params { date, like_threshold: 1 }))
                .collect(),
            13 => self
                .pick_bindings(&self.countries(), n, curated, 13)
                .into_iter()
                .map(|c| BiParams::Q13(snb_bi::bi13::Params { country: self.country_name(c) }))
                .collect(),
            14 => self
                .pick_bindings(&self.month_windows(), n, curated, 14)
                .into_iter()
                .map(|(y, m)| {
                    let begin = Date::from_ymd(y, m, 1);
                    BiParams::Q14(snb_bi::bi14::Params { begin, end: begin.plus_days(89) })
                })
                .collect(),
            15 => self
                .pick_bindings(&self.countries(), n, curated, 15)
                .into_iter()
                .map(|c| BiParams::Q15(snb_bi::bi15::Params { country: self.country_name(c) }))
                .collect(),
            16 => {
                let persons = self.curated_persons(n);
                let classes = self.classes_with_messages();
                let countries = self.countries();
                persons
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let (cl, _) = classes[i % classes.len()];
                        let (co, _) = countries[i % countries.len()];
                        BiParams::Q16(snb_bi::bi16::Params {
                            person_id: s.persons.id[p as usize],
                            country: self.country_name(co),
                            tag_class: s.tag_classes.name[cl as usize].to_string(),
                            min_path_distance: 1,
                            max_path_distance: 2,
                        })
                    })
                    .collect()
            }
            17 => self
                .pick_bindings(&self.countries(), n, curated, 17)
                .into_iter()
                .map(|c| BiParams::Q17(snb_bi::bi17::Params { country: self.country_name(c) }))
                .collect(),
            18 => self
                .pick_bindings(&self.date_candidates(), n, curated, 18)
                .into_iter()
                .map(|date| {
                    BiParams::Q18(snb_bi::bi18::Params {
                        date,
                        length_threshold: 150,
                        languages: vec!["zh".into(), "en".into(), "hi".into()],
                    })
                })
                .collect(),
            19 => {
                let classes = self.classes_with_messages();
                let mut cands = Vec::new();
                for (i, &(c1, f1)) in classes.iter().enumerate() {
                    for &(c2, f2) in classes.iter().skip(i + 1) {
                        cands.push(((c1, c2), f1 + f2));
                    }
                }
                self.pick_bindings(&cands, n, curated, 19)
                    .into_iter()
                    .map(|(c1, c2)| {
                        BiParams::Q19(snb_bi::bi19::Params {
                            date: Date::from_ymd(1984, 1, 1),
                            tag_class1: s.tag_classes.name[c1 as usize].to_string(),
                            tag_class2: s.tag_classes.name[c2 as usize].to_string(),
                        })
                    })
                    .collect()
            }
            20 => {
                let classes = self.classes_with_messages();
                (0..n)
                    .map(|i| {
                        let names: Vec<String> = classes
                            .iter()
                            .cycle()
                            .skip(i)
                            .take(4)
                            .map(|&(c, _)| s.tag_classes.name[c as usize].to_string())
                            .collect();
                        BiParams::Q20(snb_bi::bi20::Params { tag_classes: names })
                    })
                    .collect()
            }
            21 => self
                .pick_bindings(&self.countries(), n, curated, 21)
                .into_iter()
                .map(|c| {
                    BiParams::Q21(snb_bi::bi21::Params {
                        country: self.country_name(c),
                        end_date: Date::from_ymd(2012, 6, 1),
                    })
                })
                .collect(),
            22 => {
                let countries = self.countries();
                let mut cands = Vec::new();
                for (i, &(c1, n1)) in countries.iter().enumerate() {
                    for &(c2, n2) in countries.iter().skip(i + 1) {
                        cands.push(((c1, c2), n1 * n2));
                    }
                }
                self.pick_bindings(&cands, n, curated, 22)
                    .into_iter()
                    .map(|(c1, c2)| {
                        BiParams::Q22(snb_bi::bi22::Params {
                            country1: self.country_name(c1),
                            country2: self.country_name(c2),
                        })
                    })
                    .collect()
            }
            23 => self
                .pick_bindings(&self.countries(), n, curated, 23)
                .into_iter()
                .map(|c| BiParams::Q23(snb_bi::bi23::Params { country: self.country_name(c) }))
                .collect(),
            24 => self
                .pick_bindings(&self.classes_with_messages(), n, curated, 24)
                .into_iter()
                .map(|c| {
                    BiParams::Q24(snb_bi::bi24::Params {
                        tag_class: s.tag_classes.name[c as usize].to_string(),
                    })
                })
                .collect(),
            25 => self
                .person_pairs(n)
                .into_iter()
                .map(|(a, b)| {
                    BiParams::Q25(snb_bi::bi25::Params {
                        person1_id: a,
                        person2_id: b,
                        start_date: Date::from_ymd(2010, 1, 1),
                        end_date: Date::from_ymd(2012, 12, 31),
                    })
                })
                .collect(),
            other => panic!("BI query {other} does not exist"),
        }
    }

    /// Curated person pairs at `knows` distance 2–4 (IC 13/14, BI 25).
    pub fn person_pairs(&self, n: usize) -> Vec<(u64, u64)> {
        let persons = self.curated_persons((n * 4).max(16));
        let mut pairs = Vec::new();
        let mut rng = Rng::derive(self.seed, 25, 4242);
        let mut attempts = 0;
        while pairs.len() < n && attempts < n * 50 && persons.len() >= 2 {
            attempts += 1;
            let a = persons[rng.index(persons.len())];
            let b = persons[rng.index(persons.len())];
            if a == b {
                continue;
            }
            let d = snb_engine::traverse::shortest_path_len(
                self.store,
                snb_engine::QueryMetrics::sink(),
                a,
                b,
            );
            if (2..=4).contains(&d) {
                let pair = (self.store.persons.id[a as usize], self.store.persons.id[b as usize]);
                if !pairs.contains(&pair) {
                    pairs.push(pair);
                }
            }
        }
        pairs
    }

    /// Curated bindings for Interactive complex query `query` (1–14).
    pub fn ic_params(&self, query: u8, n: usize) -> Vec<IcParams> {
        let s = self.store;
        let persons = self.curated_persons(n.max(4));
        let pid = |i: usize| s.persons.id[persons[i % persons.len()] as usize];
        let mut rng = Rng::derive(self.seed, query as u64, 31_337);
        match query {
            1 => {
                // Common first names as the name parameter.
                let mut freq: rustc_hash::FxHashMap<&str, u64> = rustc_hash::FxHashMap::default();
                for name in s.persons.first_name.iter() {
                    *freq.entry(name).or_insert(0) += 1;
                }
                let cands: Vec<(String, u64)> =
                    freq.into_iter().map(|(n, f)| (n.to_string(), f)).collect();
                let names = curate(&cands, n);
                names
                    .into_iter()
                    .enumerate()
                    .map(|(i, first_name)| {
                        IcParams::Q1(snb_interactive::ic01::Params {
                            person_id: pid(i),
                            first_name,
                        })
                    })
                    .collect()
            }
            2 => (0..n)
                .map(|i| {
                    IcParams::Q2(snb_interactive::ic02::Params {
                        person_id: pid(i),
                        max_date: Date::from_ymd(2012, 1 + (i as u32 % 12), 1),
                    })
                })
                .collect(),
            3 => {
                let countries = self.countries();
                (0..n)
                    .map(|i| {
                        let c1 = countries[i % countries.len()].0;
                        let c2 = countries[(i + 1) % countries.len()].0;
                        IcParams::Q3(snb_interactive::ic03::Params {
                            person_id: pid(i),
                            country_x: self.country_name(c1),
                            country_y: self.country_name(c2),
                            start_date: Date::from_ymd(2010, 6, 1),
                            duration_days: 365,
                        })
                    })
                    .collect()
            }
            4 => (0..n)
                .map(|i| {
                    IcParams::Q4(snb_interactive::ic04::Params {
                        person_id: pid(i),
                        start_date: Date::from_ymd(2011, 1 + (i as u32 % 12), 1),
                        duration_days: 90,
                    })
                })
                .collect(),
            5 => (0..n)
                .map(|i| {
                    IcParams::Q5(snb_interactive::ic05::Params {
                        person_id: pid(i),
                        min_date: Date::from_ymd(2011, 1 + (i as u32 % 12), 1),
                    })
                })
                .collect(),
            6 => {
                let tags = self.tags_with_messages();
                let picked = curate(&tags, n);
                picked
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| {
                        IcParams::Q6(snb_interactive::ic06::Params {
                            person_id: pid(i),
                            tag_name: s.tags.name[t as usize].to_string(),
                        })
                    })
                    .collect()
            }
            7 => (0..n)
                .map(|i| IcParams::Q7(snb_interactive::ic07::Params { person_id: pid(i) }))
                .collect(),
            8 => (0..n)
                .map(|i| IcParams::Q8(snb_interactive::ic08::Params { person_id: pid(i) }))
                .collect(),
            9 => (0..n)
                .map(|i| {
                    IcParams::Q9(snb_interactive::ic09::Params {
                        person_id: pid(i),
                        max_date: Date::from_ymd(2012, 1 + (i as u32 % 12), 1),
                    })
                })
                .collect(),
            10 => (0..n)
                .map(|i| {
                    IcParams::Q10(snb_interactive::ic10::Params {
                        person_id: pid(i),
                        month: 1 + (rng.index(12) as u32),
                    })
                })
                .collect(),
            11 => {
                let countries = self.countries();
                (0..n)
                    .map(|i| {
                        IcParams::Q11(snb_interactive::ic11::Params {
                            person_id: pid(i),
                            country: self.country_name(countries[i % countries.len()].0),
                            work_from_year: 2012,
                        })
                    })
                    .collect()
            }
            12 => {
                let classes = self.classes_with_messages();
                (0..n)
                    .map(|i| {
                        IcParams::Q12(snb_interactive::ic12::Params {
                            person_id: pid(i),
                            tag_class_name: s.tag_classes.name
                                [classes[i % classes.len()].0 as usize]
                                .to_string(),
                        })
                    })
                    .collect()
            }
            13 => self
                .person_pairs(n)
                .into_iter()
                .map(|(a, b)| {
                    IcParams::Q13(snb_interactive::ic13::Params { person1_id: a, person2_id: b })
                })
                .collect(),
            14 => self
                .person_pairs(n)
                .into_iter()
                .map(|(a, b)| {
                    IcParams::Q14(snb_interactive::ic14::Params { person1_id: a, person2_id: b })
                })
                .collect(),
            other => panic!("IC query {other} does not exist"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;
    use snb_store::store_for_config;
    use std::sync::OnceLock;

    fn store() -> &'static Store {
        static S: OnceLock<Store> = OnceLock::new();
        S.get_or_init(|| {
            let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
            c.persons = 150;
            store_for_config(&c)
        })
    }

    #[test]
    fn all_bi_queries_produce_bindings() {
        let s = store();
        let gen = ParamGen::new(s, 1);
        for q in 1..=25u8 {
            let params = gen.bi_params(q, 5);
            assert!(!params.is_empty(), "BI {q} has no bindings");
            for p in &params {
                assert_eq!(p.query(), q);
            }
        }
    }

    #[test]
    fn all_ic_queries_produce_bindings() {
        let s = store();
        let gen = ParamGen::new(s, 1);
        for q in 1..=14u8 {
            let params = gen.ic_params(q, 5);
            assert!(!params.is_empty(), "IC {q} has no bindings");
            for p in &params {
                assert_eq!(p.query(), q);
            }
        }
    }

    #[test]
    fn bindings_are_runnable() {
        let s = store();
        let gen = ParamGen::new(s, 1);
        for q in 1..=25u8 {
            for p in gen.bi_params(q, 2) {
                let _ = snb_bi::run(s, &p); // must not panic
            }
        }
        for q in 1..=14u8 {
            for p in gen.ic_params(q, 2) {
                let _ = snb_interactive::run_complex(s, &p);
            }
        }
    }

    #[test]
    fn person_pairs_are_connected() {
        let s = store();
        let gen = ParamGen::new(s, 1);
        let pairs = gen.person_pairs(5);
        assert!(!pairs.is_empty());
        for (a, b) in pairs {
            let ai = s.person(a).unwrap();
            let bi = s.person(b).unwrap();
            let d = snb_engine::traverse::shortest_path_len(
                s,
                snb_engine::QueryMetrics::sink(),
                ai,
                bi,
            );
            assert!((2..=4).contains(&d));
        }
    }

    #[test]
    fn curated_and_random_differ_in_spread() {
        // Factor spread of curated person-rooted bindings must be no
        // larger than the random control's (stage-2 guarantee).
        let s = store();
        let gen = ParamGen::new(s, 1);
        let factor_of = |p: &BiParams| -> u64 {
            match p {
                BiParams::Q6(x) => {
                    let t = s.tag_named(&x.tag).unwrap();
                    s.tag_message.degree(t) as u64
                }
                _ => 0,
            }
        };
        let curated: Vec<u64> = gen.bi_params(6, 8).iter().map(factor_of).collect();
        let random: Vec<u64> = gen.bi_params_random(6, 8).iter().map(factor_of).collect();
        let spread = |v: &[u64]| v.iter().max().unwrap() - v.iter().min().unwrap();
        assert!(spread(&curated) <= spread(&random).max(1));
    }

    #[test]
    fn deterministic_bindings() {
        let s = store();
        let a = ParamGen::new(s, 9).bi_params(12, 4);
        let b = ParamGen::new(s, 9).bi_params(12, 4);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
