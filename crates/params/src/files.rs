//! Substitution-parameter files (spec §2.3.4.4 / §3.3).
//!
//! Bindings are serialized one JSON object per line into
//! `substitution_parameters/bi_<q>_param.txt` and
//! `substitution_parameters/interactive_<q>_param.txt`, mirroring the
//! official Datagen layout ("Every line of a parameter file is a
//! JSON-formatted collection of key-value pairs").

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use snb_bi::BiParams;
use snb_core::SnbResult;
use snb_interactive::IcParams;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_line(pairs: &[(&str, String)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("{}: {v}", json_str(k))).collect();
    format!("{{{}}}", body.join(", "))
}

/// Renders one BI binding as a JSON line.
pub fn bi_binding_json(p: &BiParams) -> String {
    match p {
        BiParams::Q1(x) => json_line(&[("date", json_str(&x.date.to_string()))]),
        BiParams::Q2(x) => json_line(&[
            ("startDate", json_str(&x.start_date.to_string())),
            ("endDate", json_str(&x.end_date.to_string())),
            ("country1", json_str(&x.country1)),
            ("country2", json_str(&x.country2)),
        ]),
        BiParams::Q3(x) => {
            json_line(&[("year", x.year.to_string()), ("month", x.month.to_string())])
        }
        BiParams::Q4(x) => {
            json_line(&[("tagClass", json_str(&x.tag_class)), ("country", json_str(&x.country))])
        }
        BiParams::Q5(x) => json_line(&[("country", json_str(&x.country))]),
        BiParams::Q6(x) => json_line(&[("tag", json_str(&x.tag))]),
        BiParams::Q7(x) => json_line(&[("tag", json_str(&x.tag))]),
        BiParams::Q8(x) => json_line(&[("tag", json_str(&x.tag))]),
        BiParams::Q9(x) => json_line(&[
            ("tagClass1", json_str(&x.tag_class1)),
            ("tagClass2", json_str(&x.tag_class2)),
            ("threshold", x.threshold.to_string()),
        ]),
        BiParams::Q10(x) => {
            json_line(&[("tag", json_str(&x.tag)), ("date", json_str(&x.date.to_string()))])
        }
        BiParams::Q11(x) => json_line(&[
            ("country", json_str(&x.country)),
            (
                "blacklist",
                format!(
                    "[{}]",
                    x.blacklist.iter().map(|w| json_str(w)).collect::<Vec<_>>().join(", ")
                ),
            ),
        ]),
        BiParams::Q12(x) => json_line(&[
            ("date", json_str(&x.date.to_string())),
            ("likeThreshold", x.like_threshold.to_string()),
        ]),
        BiParams::Q13(x) => json_line(&[("country", json_str(&x.country))]),
        BiParams::Q14(x) => json_line(&[
            ("begin", json_str(&x.begin.to_string())),
            ("end", json_str(&x.end.to_string())),
        ]),
        BiParams::Q15(x) => json_line(&[("country", json_str(&x.country))]),
        BiParams::Q16(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("country", json_str(&x.country)),
            ("tagClass", json_str(&x.tag_class)),
            ("minPathDistance", x.min_path_distance.to_string()),
            ("maxPathDistance", x.max_path_distance.to_string()),
        ]),
        BiParams::Q17(x) => json_line(&[("country", json_str(&x.country))]),
        BiParams::Q18(x) => json_line(&[
            ("date", json_str(&x.date.to_string())),
            ("lengthThreshold", x.length_threshold.to_string()),
            (
                "languages",
                format!(
                    "[{}]",
                    x.languages.iter().map(|l| json_str(l)).collect::<Vec<_>>().join(", ")
                ),
            ),
        ]),
        BiParams::Q19(x) => json_line(&[
            ("date", json_str(&x.date.to_string())),
            ("tagClass1", json_str(&x.tag_class1)),
            ("tagClass2", json_str(&x.tag_class2)),
        ]),
        BiParams::Q20(x) => json_line(&[(
            "tagClasses",
            format!(
                "[{}]",
                x.tag_classes.iter().map(|c| json_str(c)).collect::<Vec<_>>().join(", ")
            ),
        )]),
        BiParams::Q21(x) => json_line(&[
            ("country", json_str(&x.country)),
            ("endDate", json_str(&x.end_date.to_string())),
        ]),
        BiParams::Q22(x) => {
            json_line(&[("country1", json_str(&x.country1)), ("country2", json_str(&x.country2))])
        }
        BiParams::Q23(x) => json_line(&[("country", json_str(&x.country))]),
        BiParams::Q24(x) => json_line(&[("tagClass", json_str(&x.tag_class))]),
        BiParams::Q25(x) => json_line(&[
            ("person1Id", x.person1_id.to_string()),
            ("person2Id", x.person2_id.to_string()),
            ("startDate", json_str(&x.start_date.to_string())),
            ("endDate", json_str(&x.end_date.to_string())),
        ]),
    }
}

/// Renders one IC binding as a JSON line (person id plus the query's
/// distinguishing parameters).
pub fn ic_binding_json(p: &IcParams) -> String {
    match p {
        IcParams::Q1(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("firstName", json_str(&x.first_name)),
        ]),
        IcParams::Q2(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("maxDate", json_str(&x.max_date.to_string())),
        ]),
        IcParams::Q3(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("countryXName", json_str(&x.country_x)),
            ("countryYName", json_str(&x.country_y)),
            ("startDate", json_str(&x.start_date.to_string())),
            ("durationDays", x.duration_days.to_string()),
        ]),
        IcParams::Q4(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("startDate", json_str(&x.start_date.to_string())),
            ("durationDays", x.duration_days.to_string()),
        ]),
        IcParams::Q5(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("minDate", json_str(&x.min_date.to_string())),
        ]),
        IcParams::Q6(x) => {
            json_line(&[("personId", x.person_id.to_string()), ("tagName", json_str(&x.tag_name))])
        }
        IcParams::Q7(x) => json_line(&[("personId", x.person_id.to_string())]),
        IcParams::Q8(x) => json_line(&[("personId", x.person_id.to_string())]),
        IcParams::Q9(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("maxDate", json_str(&x.max_date.to_string())),
        ]),
        IcParams::Q10(x) => {
            json_line(&[("personId", x.person_id.to_string()), ("month", x.month.to_string())])
        }
        IcParams::Q11(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("countryName", json_str(&x.country)),
            ("workFromYear", x.work_from_year.to_string()),
        ]),
        IcParams::Q12(x) => json_line(&[
            ("personId", x.person_id.to_string()),
            ("tagClassName", json_str(&x.tag_class_name)),
        ]),
        IcParams::Q13(x) => json_line(&[
            ("person1Id", x.person1_id.to_string()),
            ("person2Id", x.person2_id.to_string()),
        ]),
        IcParams::Q14(x) => json_line(&[
            ("person1Id", x.person1_id.to_string()),
            ("person2Id", x.person2_id.to_string()),
        ]),
    }
}

/// Writes the substitution-parameter directory for a store: one file
/// per query template.
pub fn write_substitution_files(
    gen: &crate::ParamGen<'_>,
    per_query: usize,
    root: &Path,
) -> SnbResult<Vec<String>> {
    let dir = root.join("substitution_parameters");
    fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    for q in 1..=25u8 {
        let name = format!("bi_{q}_param.txt");
        let mut f = std::io::BufWriter::new(fs::File::create(dir.join(&name))?);
        for p in gen.bi_params(q, per_query) {
            writeln!(f, "{}", bi_binding_json(&p))?;
        }
        written.push(name);
    }
    for q in 1..=14u8 {
        let name = format!("interactive_{q}_param.txt");
        let mut f = std::io::BufWriter::new(fs::File::create(dir.join(&name))?);
        for p in gen.ic_params(q, per_query) {
            writeln!(f, "{}", ic_binding_json(&p))?;
        }
        written.push(name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamGen;
    use snb_datagen::GeneratorConfig;
    use snb_store::store_for_config;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("back\\slash"), "\"back\\\\slash\"");
    }

    #[test]
    fn writes_39_files_with_json_lines() {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 100;
        let s = store_for_config(&c);
        let gen = ParamGen::new(&s, c.seed);
        let dir = std::env::temp_dir().join(format!("snb_params_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let files = write_substitution_files(&gen, 3, &dir).unwrap();
        assert_eq!(files.len(), 39);
        for f in &files {
            let content = fs::read_to_string(dir.join("substitution_parameters").join(f)).unwrap();
            assert!(!content.is_empty(), "{f} empty");
            for line in content.lines() {
                assert!(line.starts_with('{') && line.ends_with('}'), "{f}: {line}");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
