//! The two-stage Parameter Curation procedure (spec §3.3).
//!
//! Stage 1 collects *factor counts* — cheap proxies for each candidate
//! binding's intermediate-result size (number of friends, messages per
//! tag, persons per country, …) — as a side effect of having the loaded
//! store. Stage 2 greedily selects the bindings whose factors are most
//! similar: the window of the sorted factor array with the smallest
//! spread. This yields bindings satisfying the spec's properties:
//!
//! * **P1** bounded runtime variance,
//! * **P2** stable runtime distribution across streams,
//! * **P3** a common optimal plan (similar cardinalities everywhere).

/// Selects the `n` candidates whose factor counts are most similar: the
/// minimum-spread window of the factor-sorted candidates. Deterministic:
/// ties prefer the window closest to the median.
pub fn curate<T: Clone>(candidates: &[(T, u64)], n: usize) -> Vec<T> {
    if candidates.is_empty() || n == 0 {
        return Vec::new();
    }
    let n = n.min(candidates.len());
    let mut sorted: Vec<(T, u64)> = candidates.to_vec();
    sorted.sort_by_key(|&(_, f)| f);
    let mut best_start = 0usize;
    let mut best_spread = u64::MAX;
    let mid = (sorted.len() - n) / 2;
    let mut best_mid_dist = usize::MAX;
    for start in 0..=sorted.len() - n {
        let spread = sorted[start + n - 1].1 - sorted[start].1;
        let mid_dist = start.abs_diff(mid);
        if spread < best_spread || (spread == best_spread && mid_dist < best_mid_dist) {
            best_spread = spread;
            best_start = start;
            best_mid_dist = mid_dist;
        }
    }
    sorted[best_start..best_start + n].iter().map(|(t, _)| t.clone()).collect()
}

/// Population variance of a factor slice (used by tests/experiments to
/// verify P1).
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_tightest_window() {
        let cands: Vec<(char, u64)> =
            vec![('a', 1), ('b', 100), ('c', 101), ('d', 102), ('e', 500)];
        let picked = curate(&cands, 3);
        assert_eq!(picked, vec!['b', 'c', 'd']);
    }

    #[test]
    fn n_larger_than_candidates_returns_all() {
        let cands = vec![(1, 5u64), (2, 6)];
        assert_eq!(curate(&cands, 10).len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let cands: Vec<(i32, u64)> = vec![];
        assert!(curate(&cands, 3).is_empty());
        assert!(curate(&[(1, 1)], 0).is_empty());
    }

    #[test]
    fn curated_variance_never_exceeds_population() {
        use snb_core::rng::Rng;
        let mut rng = Rng::new(17);
        for _ in 0..30 {
            let cands: Vec<(usize, u64)> =
                (0..200).map(|i| (i, rng.next_bounded(10_000))).collect();
            let picked_ids = curate(&cands, 20);
            let by_id: std::collections::HashMap<usize, u64> = cands.iter().copied().collect();
            let picked: Vec<f64> = picked_ids.iter().map(|i| by_id[i] as f64).collect();
            let all: Vec<f64> = cands.iter().map(|&(_, f)| f as f64).collect();
            assert!(variance(&picked) <= variance(&all) + 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let cands: Vec<(usize, u64)> = (0..50).map(|i| (i, (i as u64 * 37) % 100)).collect();
        assert_eq!(curate(&cands, 7), curate(&cands, 7));
    }
}
