#![warn(missing_docs)]

//! # snb-params
//!
//! Parameter curation (spec §3.3): factor-count collection, the greedy
//! minimum-spread selection, per-query binding generation for both
//! workloads, and substitution-parameter files in the official layout.

pub mod bindings;
pub mod curation;
pub mod files;

pub use bindings::ParamGen;
pub use curation::{curate, variance};
pub use files::write_substitution_files;
