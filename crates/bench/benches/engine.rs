//! Criterion ablations of the engine's design choices (the DESIGN.md
//! call-outs): bounded top-k vs sort-truncate, CSR base vs overflow
//! iteration, BFS variants, and tag-class closure strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use snb_core::rng::Rng;
use snb_datagen::GeneratorConfig;
use snb_engine::topk::{sort_truncate, TopK};
use snb_engine::traverse::{khop_neighborhood, shortest_path_len};
use snb_store::{store_for_config, Adj};
use std::hint::black_box;

fn bench_topk_ablation(c: &mut Criterion) {
    // Design choice: bounded heap + would_accept pruning vs the naive
    // materialise-sort-truncate plan, at growing candidate counts.
    let mut group = c.benchmark_group("topk_vs_sort");
    for n in [1_000usize, 10_000, 100_000] {
        let mut rng = Rng::new(42);
        let items: Vec<(u64, u64)> =
            (0..n).map(|i| (rng.next_bounded(1_000_000), i as u64)).collect();
        group.bench_function(format!("topk_{n}"), |b| {
            b.iter(|| {
                let mut tk = TopK::new(20);
                for &(key, v) in &items {
                    tk.push((key, v), v);
                }
                black_box(tk.into_sorted())
            })
        });
        group.bench_function(format!("sort_{n}"), |b| {
            b.iter(|| {
                let all: Vec<((u64, u64), u64)> =
                    items.iter().map(|&(key, v)| ((key, v), v)).collect();
                black_box(sort_truncate(all, 20))
            })
        });
    }
    group.finish();
}

fn bench_adjacency_ablation(c: &mut Criterion) {
    // Design choice: compacted CSR vs overflow-heavy adjacency.
    let mut rng = Rng::new(7);
    let n = 10_000u32;
    let edges: Vec<(u32, u32, ())> = (0..120_000)
        .map(|_| (rng.next_bounded(n as u64) as u32, rng.next_bounded(n as u64) as u32, ()))
        .collect();
    let compacted = Adj::from_edges(n as usize, &edges);
    let mut overflowed: Adj<()> = Adj::from_edges(n as usize, &edges[..60_000]);
    for &(s, t, _) in &edges[60_000..] {
        overflowed.insert(s, t, ());
    }
    let mut group = c.benchmark_group("adjacency");
    group.bench_function("scan_compacted", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for u in 0..n {
                for t in compacted.targets_of(u) {
                    acc = acc.wrapping_add(t as u64);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("scan_half_overflow", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for u in 0..n {
                for t in overflowed.targets_of(u) {
                    acc = acc.wrapping_add(t as u64);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_traversals(c: &mut Criterion) {
    let config = GeneratorConfig::for_scale_name("0.003").expect("scale exists");
    let store = store_for_config(&config);
    let hub = (0..store.persons.len() as u32).max_by_key(|&p| store.knows.degree(p)).unwrap();
    let far = (hub + store.persons.len() as u32 / 2) % store.persons.len() as u32;
    let mut group = c.benchmark_group("traverse");
    group.bench_function("khop2", |b| {
        b.iter(|| {
            black_box(khop_neighborhood(
                &store,
                snb_engine::QueryMetrics::sink(),
                black_box(hub),
                2,
            ))
        })
    });
    group.bench_function("khop3", |b| {
        b.iter(|| {
            black_box(khop_neighborhood(
                &store,
                snb_engine::QueryMetrics::sink(),
                black_box(hub),
                3,
            ))
        })
    });
    group.bench_function("shortest_path", |b| {
        b.iter(|| {
            black_box(shortest_path_len(
                &store,
                snb_engine::QueryMetrics::sink(),
                black_box(hub),
                black_box(far),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_topk_ablation, bench_adjacency_ablation, bench_traversals
}
criterion_main!(benches);
