//! Criterion benchmarks for the generator and the load path
//! (supporting E1's load-time disclosure requirement, spec §6.1.3).

use criterion::{criterion_group, criterion_main, Criterion};
use snb_datagen::{generate, GeneratorConfig};
use snb_store::build_store;
use std::hint::black_box;

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    for sf in ["0.001", "0.003"] {
        let config = GeneratorConfig::for_scale_name(sf).expect("scale exists");
        group.bench_function(format!("generate_sf{sf}"), |b| {
            b.iter(|| black_box(generate(black_box(&config))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("load");
    let config = GeneratorConfig::for_scale_name("0.003").expect("scale exists");
    let world = snb_datagen::dictionaries::StaticWorld::build(config.seed);
    let graph = generate(&config);
    group.bench_function("build_store_sf0.003", |b| {
        b.iter(|| black_box(build_store(black_box(&graph), &world, None)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_datagen
}
criterion_main!(benches);
