//! Criterion benchmarks: one benchmark per BI query (optimized engine)
//! plus a naive-engine counterpart for a representative subset — the
//! micro-benchmark layer of experiments E5/E6.

use criterion::{criterion_group, criterion_main, Criterion};
use snb_datagen::GeneratorConfig;
use snb_params::ParamGen;
use snb_store::store_for_config;
use std::hint::black_box;

fn bench_bi(c: &mut Criterion) {
    let config = GeneratorConfig::for_scale_name("0.001").expect("scale exists");
    let store = store_for_config(&config);
    let gen = ParamGen::new(&store, config.seed);

    let mut group = c.benchmark_group("bi_optimized");
    for q in 1..=25u8 {
        let bindings = gen.bi_params(q, 4);
        if bindings.is_empty() {
            continue;
        }
        group.bench_function(format!("bi{q:02}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let r = snb_bi::run(&store, black_box(&bindings[i % bindings.len()]));
                i += 1;
                black_box(r)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bi_naive");
    for q in [1u8, 6, 12, 14, 17, 20] {
        let bindings = gen.bi_params(q, 2);
        group.bench_function(format!("bi{q:02}_naive"), |b| {
            b.iter(|| black_box(snb_bi::run_naive(&store, black_box(&bindings[0]))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_bi
}
criterion_main!(benches);
