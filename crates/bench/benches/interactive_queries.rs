//! Criterion benchmarks for the Interactive workload: IC 1–14 complex
//! reads, the IS short-read set, and the IU insert path (E10's
//! micro-benchmark layer).

use criterion::{criterion_group, criterion_main, Criterion};
use snb_core::datetime::DateTime;
use snb_datagen::GeneratorConfig;
use snb_interactive::short;
use snb_params::ParamGen;
use snb_store::store_for_config;
use std::hint::black_box;

fn bench_interactive(c: &mut Criterion) {
    let config = GeneratorConfig::for_scale_name("0.001").expect("scale exists");
    let store = store_for_config(&config);
    let gen = ParamGen::new(&store, config.seed);

    let mut group = c.benchmark_group("ic");
    for q in 1..=14u8 {
        let bindings = gen.ic_params(q, 4);
        if bindings.is_empty() {
            continue;
        }
        group.bench_function(format!("ic{q:02}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let r =
                    snb_interactive::run_complex(&store, black_box(&bindings[i % bindings.len()]));
                i += 1;
                black_box(r)
            })
        });
    }
    group.finish();

    let person = store.persons.id[store.persons.len() / 3];
    let message = store.messages.id[store.messages.len() / 3];
    let mut group = c.benchmark_group("is");
    group.bench_function("is1", |b| {
        b.iter(|| black_box(short::is1::run(&store, &short::is1::Params { person_id: person })))
    });
    group.bench_function("is2", |b| {
        b.iter(|| black_box(short::is2::run(&store, &short::is2::Params { person_id: person })))
    });
    group.bench_function("is3", |b| {
        b.iter(|| black_box(short::is3::run(&store, &short::is3::Params { person_id: person })))
    });
    group.bench_function("is7", |b| {
        b.iter(|| black_box(short::is7::run(&store, &short::is7::Params { message_id: message })))
    });
    group.finish();

    // IU insert path (knows edges into the overflow adjacency).
    let mut group = c.benchmark_group("iu");
    group.bench_function("iu8_insert_knows", |b| {
        let mut s = store_for_config(&config);
        let ids: Vec<u64> = s.persons.id.clone();
        let mut i = 0usize;
        b.iter(|| {
            let a = ids[i % ids.len()];
            let bb = ids[(i / ids.len() + i + 1) % ids.len()];
            if a != bb {
                let _ = s.insert_knows(a, bb, DateTime(i as i64));
            }
            i += 1;
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_interactive
}
criterion_main!(benches);
