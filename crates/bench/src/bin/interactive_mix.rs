//! Experiment E3 — interactive query-mix ratios (spec Tables 3.1 and
//! B.1): run the full interactive driver and compare the achieved
//! per-query instance counts against the configured frequencies.

use snb_datagen::dictionaries::StaticWorld;
use snb_driver::{run_interactive, InteractiveConfig};
use snb_store::bulk_store_and_stream;

fn main() {
    let config = snb_bench::cli_config();
    let (mut store, events) = bulk_store_and_stream(&config);
    let world = StaticWorld::build(config.seed);
    eprintln!("# bulk store loaded, {} stream events", events.len());

    let driver_config = InteractiveConfig { sf_name: "1".into(), ..InteractiveConfig::default() };
    let report =
        run_interactive(&mut store, &world, &events, &driver_config).expect("run succeeds");

    let freqs = snb_driver::schedule::frequencies_for("1");
    let mut rows = Vec::new();
    for q in 1..=14u8 {
        let achieved =
            report.log.records.iter().filter(|r| r.operation == format!("IC {q}")).count();
        let expected = events.len() / freqs[q as usize - 1] as usize;
        rows.push(vec![
            format!("IC {q}"),
            freqs[q as usize - 1].to_string(),
            expected.to_string(),
            achieved.to_string(),
        ]);
    }
    snb_bench::print_table(
        "E3: interactive mix (SF1 frequencies)",
        &["query", "freq (updates per read)", "expected instances", "achieved"],
        &rows,
    );
    println!(
        "\nupdates applied: {}, complex reads: {}, short reads: {}",
        report.updates_applied, report.complex_reads, report.short_reads
    );
    let ratio = report.short_reads as f64 / report.complex_reads.max(1) as f64;
    println!("short reads per complex read: {ratio:.2}");
}
