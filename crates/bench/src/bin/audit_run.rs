//! Experiment E8 — the §6.2 audit rule: run the interactive workload
//! under timed pacing at several Time Compression Ratios and report the
//! fraction of operations that started within one second of schedule
//! (a valid run needs ≥ 95%).

use std::time::Duration;

use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::TimedEvent;
use snb_driver::{run_interactive, InteractiveConfig, Pacing};
use snb_store::bulk_store_and_stream;

fn main() {
    let config = snb_bench::cli_config();
    let world = StaticWorld::build(config.seed);

    // Target wall times per run; speedup derived from the sim span.
    let mut rows = Vec::new();
    for target_wall_s in [2.0f64, 1.0, 0.5] {
        let (mut store, events) = bulk_store_and_stream(&config);
        let slice: Vec<TimedEvent> = events.into_iter().take(2_000).collect();
        let span_s =
            (slice.last().unwrap().timestamp.0 - slice[0].timestamp.0).max(1) as f64 / 1000.0;
        let speedup = span_s / target_wall_s;
        let driver_config =
            InteractiveConfig { pacing: Pacing::Timed { speedup }, ..InteractiveConfig::default() };
        let started = std::time::Instant::now();
        let report =
            run_interactive(&mut store, &world, &slice, &driver_config).expect("run succeeds");
        let wall = started.elapsed();
        let on_time = report.log.on_schedule_fraction(Duration::from_secs(1));
        rows.push(vec![
            format!("{target_wall_s:.1}s"),
            format!("{speedup:.0}x"),
            report.log.records.len().to_string(),
            snb_bench::fmt_duration(wall),
            format!("{:.2}%", on_time * 100.0),
            if report.log.passes_audit() { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    snb_bench::print_table(
        "E8: audit (95% of operations must start < 1s late)",
        &["target wall", "TCR speedup", "operations", "actual wall", "on-time", "audit"],
        &rows,
    );

    // Latency table from the last run shape: rerun full-speed for stats.
    let (mut store, events) = bulk_store_and_stream(&config);
    let report = run_interactive(&mut store, &world, &events, &InteractiveConfig::default())
        .expect("run succeeds");
    let stats = report.log.latency_stats();
    let srows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.operation.clone(),
                s.count.to_string(),
                snb_bench::fmt_duration(s.mean),
                snb_bench::fmt_duration(s.p95),
            ]
        })
        .collect();
    snb_bench::print_table(
        "operation latencies (full-speed run)",
        &["operation", "count", "mean", "p95"],
        &srows,
    );
}
