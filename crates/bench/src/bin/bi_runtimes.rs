//! Experiment E5 — per-query BI runtimes (the shape of the BI paper's
//! per-query runtime tables): mean / median / max latency and row
//! volume for all 25 BI queries over curated parameter bindings, swept
//! over the intra-query thread count, plus the inter-query throughput
//! sweep. Emits `BENCH_bi.json` with the raw numbers.

use snb_driver::{power_test_ctx, Engine, QueryStats, ALL_BI_QUERIES};
use snb_engine::QueryContext;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];
const BINDINGS_PER_QUERY: usize = 8;

fn main() {
    let config = snb_bench::cli_config();
    let store = snb_bench::build_store_verbose(&config);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("# {cores} hardware core(s) available to this process");
    if cores < *THREAD_SWEEP.last().unwrap() {
        println!(
            "# WARNING: fewer cores than the widest sweep point — speedups \
             are bounded by the hardware, not the engine"
        );
    }

    // Intra-query thread sweep: one context per thread count, all 25
    // queries through it. Results are bit-identical across the sweep
    // (the determinism contract); only the latencies move.
    let mut sweep: Vec<(usize, Vec<QueryStats>)> = Vec::new();
    for threads in THREAD_SWEEP {
        let ctx = QueryContext::new(threads);
        let stats = power_test_ctx(
            &store,
            &ctx,
            &ALL_BI_QUERIES,
            BINDINGS_PER_QUERY,
            Engine::Optimized,
            config.seed,
        );
        sweep.push((threads, stats));
    }

    let base = &sweep[0].1;
    let peak = &sweep.last().unwrap().1;
    let rows: Vec<Vec<String>> = base
        .iter()
        .zip(peak)
        .map(|(s1, sn)| {
            let speedup = s1.mean.as_secs_f64() / sn.mean.as_secs_f64().max(1e-9);
            vec![
                format!("BI {}", s1.query),
                s1.executions.to_string(),
                snb_bench::fmt_duration(s1.mean),
                snb_bench::fmt_duration(sn.mean),
                format!("{speedup:.2}x"),
                format!("{:.2}", s1.cv),
                s1.total_rows.to_string(),
            ]
        })
        .collect();
    let peak_threads = THREAD_SWEEP[THREAD_SWEEP.len() - 1];
    snb_bench::print_table(
        &format!(
            "E5: BI power test (optimized engine, {} persons, {peak_threads}-thread sweep)",
            config.persons
        ),
        &["query", "runs", "mean@1t", &format!("mean@{peak_threads}t"), "speedup", "cv", "rows"],
        &rows,
    );

    let total_1: std::time::Duration = base.iter().map(|s| s.mean * s.executions as u32).sum();
    let total_n: std::time::Duration = peak.iter().map(|s| s.mean * s.executions as u32).sum();
    println!(
        "\ntotal power-test work: {} @1t, {} @{peak_threads}t ({:.2}x aggregate)",
        snb_bench::fmt_duration(total_1),
        snb_bench::fmt_duration(total_n),
        total_1.as_secs_f64() / total_n.as_secs_f64().max(1e-9),
    );

    // Inter-query throughput sweep (streams, one single-threaded
    // context each).
    let mut throughput = Vec::new();
    let mut t_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let r = snb_driver::throughput_test(&store, &ALL_BI_QUERIES, 4, threads, config.seed);
        t_rows.push(vec![
            threads.to_string(),
            r.queries_executed.to_string(),
            snb_bench::fmt_duration(r.wall),
            format!("{:.1}", r.qps),
        ]);
        throughput.push(r);
    }
    snb_bench::print_table(
        "E5: BI throughput test (stream sweep)",
        &["threads", "queries", "wall", "qps"],
        &t_rows,
    );

    // Machine-readable dump for downstream tooling / CI trend lines.
    let json = render_json(&config, cores, &sweep, &throughput);
    let path = "BENCH_bi.json";
    std::fs::write(path, json).expect("write BENCH_bi.json");
    println!("\nwrote {path}");
}

/// Hand-rolled JSON (the container has no serde): every value is a
/// number or a plain integer-keyed record, so escaping is not needed.
fn render_json(
    config: &snb_datagen::GeneratorConfig,
    cores: usize,
    sweep: &[(usize, Vec<QueryStats>)],
    throughput: &[snb_driver::ThroughputReport],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"persons\": {},\n  \"seed\": {},\n", config.persons, config.seed));
    out.push_str(&format!("  \"hardware_cores\": {cores},\n"));
    out.push_str(&format!("  \"bindings_per_query\": {BINDINGS_PER_QUERY},\n"));
    out.push_str("  \"power\": [\n");
    let mut first = true;
    for (threads, stats) in sweep {
        for s in stats {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"query\": {}, \"threads\": {}, \"runs\": {}, \"mean_us\": {}, \
                 \"p50_us\": {}, \"max_us\": {}, \"cv\": {:.4}, \"rows\": {}}}",
                s.query,
                threads,
                s.executions,
                s.mean.as_micros(),
                s.p50.as_micros(),
                s.max.as_micros(),
                s.cv,
                s.total_rows,
            ));
        }
    }
    out.push_str("\n  ],\n  \"throughput\": [\n");
    for (i, r) in throughput.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"threads\": {}, \"queries\": {}, \"wall_us\": {}, \"qps\": {:.2}}}",
            r.threads,
            r.queries_executed,
            r.wall.as_micros(),
            r.qps,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}
