//! Experiment E5 — per-query BI runtimes (the shape of the BI paper's
//! per-query runtime tables): min / mean / median / max latency and row
//! volume for all 25 BI queries over curated parameter bindings, swept
//! over the intra-query thread count, plus the inter-query throughput
//! sweep. Emits `BENCH_bi.json` (path overridable via the
//! `SNB_BENCH_OUT` env var) with the raw numbers and per-query operator
//! counters.
//!
//! Pass `--profile` for the EXPLAIN-ANALYZE-shaped per-query operator
//! breakdown (morsels, index hits vs. fallbacks, top-k prune rate, CSR
//! edges, worker skew); profiling also enables per-worker busy timing.

use snb_driver::{power_test_ctx, Engine, QueryStats, ALL_BI_QUERIES};
use snb_engine::QueryContext;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];
const BINDINGS_PER_QUERY: usize = 8;

/// Store partition counts swept by the determinism check — the same
/// values the `SNB_PARTITIONS` knob accepts in CI.
const PARTITION_SWEEP: [usize; 3] = [1, 2, 4];

/// One point of the partition sweep: every query over the same
/// bindings, results folded into an order-sensitive fingerprint.
struct PartitionPoint {
    partitions: usize,
    fingerprint: u64,
    rows: usize,
    wall: std::time::Duration,
}

fn main() {
    let profile_mode = snb_bench::cli_flag("--profile");
    let config = snb_bench::cli_config();
    let store = snb_bench::build_store_verbose(&config);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("# {cores} hardware core(s) available to this process");
    if cores < *THREAD_SWEEP.last().unwrap() {
        println!(
            "# WARNING: fewer cores than the widest sweep point — speedups \
             are bounded by the hardware, not the engine"
        );
    }

    // Intra-query thread sweep: one context per thread count, all 25
    // queries through it. Results are bit-identical across the sweep
    // (the determinism contract); only the latencies move.
    let mut sweep: Vec<(usize, Vec<QueryStats>)> = Vec::new();
    for threads in THREAD_SWEEP {
        let ctx = QueryContext::new(threads).with_profiling(profile_mode);
        let stats = power_test_ctx(
            &store,
            &ctx,
            &ALL_BI_QUERIES,
            BINDINGS_PER_QUERY,
            Engine::Optimized,
            config.seed,
        );
        sweep.push((threads, stats));
    }

    let base = &sweep[0].1;
    let peak = &sweep.last().unwrap().1;
    let rows: Vec<Vec<String>> = base
        .iter()
        .zip(peak)
        .map(|(s1, sn)| {
            let speedup = s1.mean.as_secs_f64() / sn.mean.as_secs_f64().max(1e-9);
            vec![
                format!("BI {}", s1.query),
                s1.executions.to_string(),
                snb_bench::fmt_duration(s1.min),
                snb_bench::fmt_duration(s1.mean),
                snb_bench::fmt_duration(sn.mean),
                format!("{speedup:.2}x"),
                format!("{:.2}", s1.cv),
                s1.total_rows.to_string(),
            ]
        })
        .collect();
    let peak_threads = THREAD_SWEEP[THREAD_SWEEP.len() - 1];
    snb_bench::print_table(
        &format!(
            "E5: BI power test (optimized engine, {} persons, {peak_threads}-thread sweep)",
            config.persons
        ),
        &[
            "query",
            "runs",
            "min@1t",
            "mean@1t",
            &format!("mean@{peak_threads}t"),
            "speedup",
            "cv",
            "rows",
        ],
        &rows,
    );

    if profile_mode {
        print_profile_breakdown(base, peak, peak_threads);
    }

    let total_1: std::time::Duration = base.iter().map(|s| s.mean * s.executions as u32).sum();
    let total_n: std::time::Duration = peak.iter().map(|s| s.mean * s.executions as u32).sum();
    println!(
        "\ntotal power-test work: {} @1t, {} @{peak_threads}t ({:.2}x aggregate)",
        snb_bench::fmt_duration(total_1),
        snb_bench::fmt_duration(total_n),
        total_1.as_secs_f64() / total_n.as_secs_f64().max(1e-9),
    );

    // Inter-query throughput sweep (streams, one single-threaded
    // context each).
    let mut throughput = Vec::new();
    let mut t_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let r = snb_driver::throughput_test(&store, &ALL_BI_QUERIES, 4, threads, config.seed);
        t_rows.push(vec![
            threads.to_string(),
            r.queries_executed.to_string(),
            snb_bench::fmt_duration(r.wall),
            format!("{:.1}", r.qps),
            snb_bench::fmt_duration(r.mean_queue_wait),
            snb_bench::fmt_duration(r.mean_exec),
        ]);
        throughput.push(r);
    }
    snb_bench::print_table(
        "E5: BI throughput test (stream sweep)",
        &["threads", "queries", "wall", "qps", "mean wait", "mean exec"],
        &t_rows,
    );

    // Partition sweep: sharded morsel plans must be invisible in the
    // results — every partition count folds to the same fingerprint
    // (CI greps this block and asserts exactly one distinct value).
    let partition_points = partition_sweep(&store, config.seed);
    let p_rows: Vec<Vec<String>> = partition_points
        .iter()
        .map(|p| {
            vec![
                p.partitions.to_string(),
                format!("{:#018x}", p.fingerprint),
                p.rows.to_string(),
                snb_bench::fmt_duration(p.wall),
            ]
        })
        .collect();
    snb_bench::print_table(
        "E14: partition sweep (2 threads, all 25 queries)",
        &["partitions", "fingerprint", "rows", "wall"],
        &p_rows,
    );
    for p in &partition_points[1..] {
        assert_eq!(
            (p.fingerprint, p.rows),
            (partition_points[0].fingerprint, partition_points[0].rows),
            "partition count {} changed the results",
            p.partitions
        );
    }

    // Machine-readable dump for downstream tooling / CI trend lines.
    let json = render_json(&config, cores, &sweep, &throughput, &partition_points);
    let path = std::env::var("SNB_BENCH_OUT").unwrap_or_else(|_| "BENCH_bi.json".into());
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}

/// The `--profile` operator breakdown — one row per query, counters
/// accumulated over the measured executions of the 1-thread run plus
/// the worker skew observed at the widest sweep point.
fn print_profile_breakdown(base: &[QueryStats], peak: &[QueryStats], peak_threads: usize) {
    let rows: Vec<Vec<String>> = base
        .iter()
        .zip(peak)
        .map(|(s1, sn)| {
            let p = &s1.profile;
            vec![
                format!("BI {}", s1.query),
                p.par_calls.to_string(),
                p.morsels.to_string(),
                p.rows_scanned.to_string(),
                format!("{}/{}", p.index_hits, p.index_fallbacks),
                p.index_rows.to_string(),
                p.topk_offered.to_string(),
                format!("{:.1}%", p.prune_rate() * 100.0),
                p.edges_traversed.to_string(),
                format!("{:.2}", sn.profile.worker_skew()),
            ]
        })
        .collect();
    snb_bench::print_table(
        &format!("E5: operator breakdown (counters @1t, skew @{peak_threads}t)"),
        &[
            "query",
            "par calls",
            "morsels",
            "rows scanned",
            "idx hit/fb",
            "idx rows",
            "topk offers",
            "pruned",
            "edges",
            "skew",
        ],
        &rows,
    );
}

/// Runs the determinism sweep over [`PARTITION_SWEEP`]: the same
/// curated bindings for all 25 queries through a 2-thread context per
/// partition count, results folded into one order-sensitive
/// fingerprint (rotate-xor, so a swapped pair of summaries cannot
/// cancel out the way plain xor would).
fn partition_sweep(store: &snb_store::Store, seed: u64) -> Vec<PartitionPoint> {
    let gen = snb_params::ParamGen::new(store, seed);
    let bindings: Vec<snb_bi::BiParams> =
        ALL_BI_QUERIES.iter().flat_map(|&q| gen.bi_params(q, 2)).collect();
    PARTITION_SWEEP
        .iter()
        .map(|&partitions| {
            let ctx = QueryContext::new(2).with_partitions(partitions);
            let started = std::time::Instant::now();
            let mut fingerprint = 0u64;
            let mut rows = 0usize;
            for b in &bindings {
                let s = snb_bi::run_with(store, &ctx, b);
                fingerprint = fingerprint.rotate_left(7) ^ s.fingerprint;
                rows += s.rows;
            }
            PartitionPoint { partitions, fingerprint, rows, wall: started.elapsed() }
        })
        .collect()
}

/// Hand-rolled JSON (the container has no serde): every value is a
/// number or a plain integer-keyed record, so escaping is not needed.
fn render_json(
    config: &snb_datagen::GeneratorConfig,
    cores: usize,
    sweep: &[(usize, Vec<QueryStats>)],
    throughput: &[snb_driver::ThroughputReport],
    partition_points: &[PartitionPoint],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(config)));
    out.push_str(&format!("  \"persons\": {},\n  \"seed\": {},\n", config.persons, config.seed));
    out.push_str(&format!("  \"hardware_cores\": {cores},\n"));
    out.push_str(&format!("  \"bindings_per_query\": {BINDINGS_PER_QUERY},\n"));
    out.push_str("  \"power\": [\n");
    let mut first = true;
    for (threads, stats) in sweep {
        for s in stats {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let p = &s.profile;
            out.push_str(&format!(
                "    {{\"query\": {}, \"threads\": {}, \"runs\": {}, \"min_us\": {}, \
                 \"mean_us\": {}, \"p50_us\": {}, \"max_us\": {}, \"cv\": {:.4}, \
                 \"rows\": {}, \"morsels\": {}, \"rows_scanned\": {}, \"index_hits\": {}, \
                 \"index_fallbacks\": {}, \"fallback_rows\": {}, \"topk_offered\": {}, \
                 \"topk_pruned\": {}, \"prune_rate\": {:.4}, \"edges_traversed\": {}}}",
                s.query,
                threads,
                s.executions,
                s.min.as_micros(),
                s.mean.as_micros(),
                s.p50.as_micros(),
                s.max.as_micros(),
                s.cv,
                s.total_rows,
                p.morsels,
                p.rows_scanned,
                p.index_hits,
                p.index_fallbacks,
                p.fallback_rows,
                p.topk_offered,
                p.topk_pruned,
                p.prune_rate(),
                p.edges_traversed,
            ));
        }
    }
    out.push_str("\n  ],\n  \"throughput\": [\n");
    for (i, r) in throughput.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"threads\": {}, \"queries\": {}, \"wall_us\": {}, \"qps\": {:.2}, \
             \"mean_queue_wait_us\": {}, \"mean_exec_us\": {}, \"total_queue_wait_us\": {}, \
             \"total_exec_us\": {}}}",
            r.threads,
            r.queries_executed,
            r.wall.as_micros(),
            r.qps,
            r.mean_queue_wait.as_micros(),
            r.mean_exec.as_micros(),
            r.total_queue_wait.as_micros(),
            r.total_exec.as_micros(),
        ));
    }
    out.push_str("\n  ],\n  \"partition_sweep\": [\n");
    for (i, p) in partition_points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"partitions\": {}, \"threads\": 2, \"fingerprint\": \"{:#018x}\", \
             \"rows\": {}, \"wall_us\": {}}}",
            p.partitions,
            p.fingerprint,
            p.rows,
            p.wall.as_micros(),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}
