//! Experiment E5 — per-query BI runtimes (the shape of the BI paper's
//! per-query runtime tables): mean / median / max latency and row
//! volume for all 25 BI queries over curated parameter bindings.

use snb_driver::{power_test, Engine, ALL_BI_QUERIES};

fn main() {
    let config = snb_bench::cli_config();
    let store = snb_bench::build_store_verbose(&config);
    let stats = power_test(&store, &ALL_BI_QUERIES, 8, Engine::Optimized, config.seed);
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                format!("BI {}", s.query),
                s.executions.to_string(),
                snb_bench::fmt_duration(s.mean),
                snb_bench::fmt_duration(s.p50),
                snb_bench::fmt_duration(s.max),
                format!("{:.2}", s.cv),
                s.total_rows.to_string(),
            ]
        })
        .collect();
    snb_bench::print_table(
        &format!("E5: BI power test (optimized engine, {} persons)", config.persons),
        &["query", "runs", "mean", "p50", "max", "cv", "rows"],
        &rows,
    );

    let total: std::time::Duration = stats.iter().map(|s| s.mean * s.executions as u32).sum();
    println!("\ntotal power-test work: {}", snb_bench::fmt_duration(total));

    // Throughput sweep.
    let mut t_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let r = snb_driver::throughput_test(&store, &ALL_BI_QUERIES, 4, threads, config.seed);
        t_rows.push(vec![
            threads.to_string(),
            r.queries_executed.to_string(),
            snb_bench::fmt_duration(r.wall),
            format!("{:.1}", r.qps),
        ]);
    }
    snb_bench::print_table(
        "E5: BI throughput test (thread sweep)",
        &["threads", "queries", "wall", "qps"],
        &t_rows,
    );
}
