//! Experiment E1 — scale-factor statistics (spec Table 2.12) and the
//! bulk/stream split (E9, spec §2.3.4).
//!
//! Generates a sweep of laptop scale factors and prints measured
//! node/edge counts next to the spec's published progression, so growth
//! ratios can be compared shape-wise.

use snb_core::scale::{SCALE_FACTORS, SPEC_TABLE_2_12};
use snb_datagen::GeneratorConfig;
use snb_store::{bulk_store_and_stream, store_for_config};

fn main() {
    let sweep = ["0.001", "0.003", "0.01", "0.03"];
    let mut rows = Vec::new();
    for name in sweep {
        let config = GeneratorConfig::for_scale_name(name).expect("scale exists");
        let store = store_for_config(&config);
        let stats = store.stats();
        rows.push(vec![
            name.to_string(),
            stats.persons.to_string(),
            stats.nodes.to_string(),
            stats.edges.to_string(),
            format!("{:.1}", stats.nodes as f64 / stats.persons as f64),
            format!("{:.1}", stats.edges as f64 / stats.nodes as f64),
            stats.posts.to_string(),
            stats.comments.to_string(),
            stats.knows.to_string(),
            stats.likes.to_string(),
        ]);
    }
    snb_bench::print_table(
        "E1: measured scale statistics (this reproduction)",
        &[
            "SF",
            "persons",
            "nodes",
            "edges",
            "nodes/person",
            "edges/node",
            "posts",
            "comments",
            "knows",
            "likes",
        ],
        &rows,
    );

    let spec_rows: Vec<Vec<String>> = SPEC_TABLE_2_12
        .iter()
        .map(|&(name, persons, nodes, edges)| {
            vec![
                name.to_string(),
                persons.to_string(),
                nodes.to_string(),
                edges.to_string(),
                format!("{:.1}", nodes as f64 / persons as f64),
                format!("{:.1}", edges as f64 / nodes as f64),
            ]
        })
        .collect();
    snb_bench::print_table(
        "spec Table 2.12 (published)",
        &["SF", "persons", "nodes", "edges", "nodes/person", "edges/node"],
        &spec_rows,
    );

    // E9: bulk/stream split fractions.
    let mut split_rows = Vec::new();
    for name in ["0.001", "0.003", "0.01"] {
        let config = GeneratorConfig::for_scale_name(name).expect("scale exists");
        let full = store_for_config(&config);
        let (bulk, events) = bulk_store_and_stream(&config);
        let total_records = full.persons.len()
            + full.messages.len()
            + full.forums.len()
            + full.knows.edge_count() / 2
            + full.person_likes.edge_count()
            + full.forum_member.edge_count();
        let bulk_records = bulk.persons.len()
            + bulk.messages.len()
            + bulk.forums.len()
            + bulk.knows.edge_count() / 2
            + bulk.person_likes.edge_count()
            + bulk.forum_member.edge_count();
        split_rows.push(vec![
            name.to_string(),
            total_records.to_string(),
            bulk_records.to_string(),
            events.len().to_string(),
            format!("{:.1}%", 100.0 * bulk_records as f64 / total_records as f64),
        ]);
    }
    snb_bench::print_table(
        "E9: bulk vs update-stream split (spec: ~90% bulk)",
        &["SF", "dynamic records", "bulk", "stream events", "bulk fraction"],
        &split_rows,
    );

    println!(
        "\nknown scale factors: {}",
        SCALE_FACTORS.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
    );
}
