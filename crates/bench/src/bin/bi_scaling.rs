//! Experiment E5b — per-query runtime scaling across scale factors
//! (the BI paper's runtime-vs-SF figure): mean optimized-engine latency
//! for each BI query at SF 0.001 / 0.003 / 0.01 / 0.03, plus the
//! growth factor from the smallest to the largest scale.

use snb_datagen::GeneratorConfig;
use snb_driver::{power_test, Engine, ALL_BI_QUERIES};

fn main() {
    let sweep = ["0.001", "0.003", "0.01", "0.03"];
    let mut per_sf = Vec::new();
    for sf in sweep {
        let config = GeneratorConfig::for_scale_name(sf).expect("scale exists");
        let store = snb_bench::build_store_verbose(&config);
        per_sf.push(power_test(&store, &ALL_BI_QUERIES, 4, Engine::Optimized, config.seed));
    }
    let mut rows = Vec::new();
    for (qi, q) in ALL_BI_QUERIES.iter().enumerate() {
        let mut row = vec![format!("BI {q}")];
        for stats in &per_sf {
            row.push(snb_bench::fmt_duration(stats[qi].mean));
        }
        let first = per_sf[0][qi].mean.as_secs_f64().max(1e-9);
        let last = per_sf[per_sf.len() - 1][qi].mean.as_secs_f64();
        row.push(format!("{:.1}x", last / first));
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("query".to_string())
        .chain(sweep.iter().map(|s| format!("SF {s}")))
        .chain(std::iter::once("growth".to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    snb_bench::print_table(
        "E5b: BI mean latency vs scale factor (optimized engine)",
        &header_refs,
        &rows,
    );
    println!(
        "\npersons per SF: {}",
        sweep
            .iter()
            .map(|s| {
                let c = GeneratorConfig::for_scale_name(s).expect("scale exists");
                format!("{s}={}", c.persons)
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
}
