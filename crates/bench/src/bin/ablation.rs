//! Experiment E6 — optimized vs naive engine ablation (the
//! reproduction's analogue of the paper's cross-system comparison):
//! per-query speedup of the CSR/top-k plans over the
//! full-materialisation reference plans. Validation (both engines must
//! agree) is implied because the naive engine doubles as the oracle.

use snb_driver::{power_test, Engine, ALL_BI_QUERIES};

fn main() {
    let config = snb_bench::cli_config();
    let store = snb_bench::build_store_verbose(&config);
    eprintln!("# validating engines agree on every binding ...");
    let validated = snb_driver::validate_all(&store, &ALL_BI_QUERIES, 3, config.seed)
        .expect("engines disagree");
    eprintln!("# {validated} bindings validated");

    let optimized = power_test(&store, &ALL_BI_QUERIES, 4, Engine::Optimized, config.seed);
    let naive = power_test(&store, &ALL_BI_QUERIES, 4, Engine::Naive, config.seed);
    let rows: Vec<Vec<String>> = optimized
        .iter()
        .zip(&naive)
        .map(|(o, n)| {
            let speedup = n.mean.as_secs_f64() / o.mean.as_secs_f64().max(1e-9);
            vec![
                format!("BI {}", o.query),
                snb_bench::fmt_duration(o.mean),
                snb_bench::fmt_duration(n.mean),
                format!("{speedup:.2}x"),
            ]
        })
        .collect();
    snb_bench::print_table(
        "E6: optimized vs naive engine (mean latency)",
        &["query", "optimized", "naive", "speedup"],
        &rows,
    );
    let geo: f64 = optimized
        .iter()
        .zip(&naive)
        .map(|(o, n)| (n.mean.as_secs_f64() / o.mean.as_secs_f64().max(1e-9)).ln())
        .sum::<f64>()
        / optimized.len() as f64;
    println!("\ngeometric-mean speedup: {:.2}x", geo.exp());
}
