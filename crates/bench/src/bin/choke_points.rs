//! Experiment E7 — the choke-point coverage matrix (spec Table A.1),
//! regenerated from the query metadata in `snb-bi::meta`.

use snb_bi::meta::CHOKE_POINTS;

fn main() {
    let mut rows = Vec::new();
    for cp in CHOKE_POINTS {
        let bi: Vec<String> = cp.bi.iter().map(|q| q.to_string()).collect();
        let ic: Vec<String> = cp.ic.iter().map(|q| q.to_string()).collect();
        rows.push(vec![format!("CP-{}", cp.id), cp.name.to_string(), bi.join(","), ic.join(",")]);
    }
    snb_bench::print_table(
        "E7: choke-point coverage (spec Table A.1)",
        &["cp", "name", "BI queries", "IC queries"],
        &rows,
    );

    // Coverage summary per query.
    let mut bi_cov = Vec::new();
    for q in 1..=25u8 {
        bi_cov.push(vec![format!("BI {q}"), snb_bi::meta::choke_points_of_bi(q).join(", ")]);
    }
    snb_bench::print_table("choke points per BI query", &["query", "choke points"], &bi_cov);
    let total: usize = CHOKE_POINTS.iter().map(|cp| cp.bi.len() + cp.ic.len()).sum();
    println!("\nmatrix entries: {total} across {} choke points", CHOKE_POINTS.len());
}
