//! `--split-brain`: experiment E18 — fencing epochs under a network
//! partition.
//!
//! The scenario the fencing epoch exists for: a primary that is only
//! *partitioned* — not dead — while a follower is promoted in its
//! place. Without fencing, the old primary keeps acking client writes
//! into a history no follower will ever replicate (split-brain);
//! with it, the first frame at a higher epoch that reaches the zombie
//! turns every subsequent client write into a typed, terminal
//! `fenced` refusal carrying a redirect to the real primary.
//!
//! Mechanics: the primary is spawned with a deterministic
//! `net.partition` fault (`$SNB_FAULTS`, hit-counted on its Nth
//! submitted write batch) that black-holes its sockets without closing
//! them — reads are discarded, writes pretend to succeed, nothing
//! disconnects. The harness then:
//!
//! 1. drives a pre-partition write ladder, waiting for *both*
//!    followers to converge after every ack (so every acked write is
//!    provably replicated before the lights go out);
//! 2. trips the partition with one more write — applied on the
//!    primary, but the ack is black-holed, so the client treats it as
//!    unacked and will resubmit it to the new primary;
//! 3. promotes follower 1 via `Promote` (epoch floor 0 → the node
//!    durably bumps to its own term + 1 and fsyncs it into the WAL
//!    headers *before* going writable), passing its own endpoints and
//!    the sibling list — follower 2 plus the zombie itself;
//! 4. keeps driving writes at both nodes: the new primary acks them,
//!    the zombie black-holes them (and must never ack);
//! 5. waits for follower 2 to re-subscribe to the new primary — the
//!    `Announce` carried the reconnect target, no operator re-pointing
//!    — and converge on the post-promotion writes;
//! 6. waits out the heal: the promoted node's announce-retry thread
//!    finally reaches the zombie, which fences itself (scraped from
//!    its `fenced epoch=` stdout line) and starts refusing writes with
//!    the typed `fenced` error;
//! 7. follows the refusal's `(primary=HOST:PORT)` redirect with the
//!    same batch seq (dedupe-protected) and gets it acked by the real
//!    primary;
//! 8. proves the new primary (and the re-subscribed follower) answer
//!    all 25 BI queries identically to an oracle that applied every
//!    batch exactly once.
//!
//! Hard gates: `zombie_acks_after_promotion == 0`,
//! `lost_acked_writes == 0`, `mismatches == 0`. Results land in a
//! `"failover"` block of `BENCH_service.json` with the
//! partition→promote→re-subscribe→first-ack timings; `ci.sh` greps the
//! gates.

use std::io::BufRead;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snb_bi::BiParams;
use snb_datagen::dictionaries::StaticWorld;
use snb_engine::QueryContext;
use snb_params::ParamGen;
use snb_server::proto::{self, Request};
use snb_server::{replication, retry, ErrorKind, Response, ServiceParams, WriteBatch, WriteOps};

use crate::Args;

/// Read timeout on healthy-node client connections.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);
/// Read timeout on connections to the (possibly black-holed) zombie: a
/// partitioned node answers nothing, so probes must give up fast.
const ZOMBIE_TIMEOUT: Duration = Duration::from_millis(1000);
/// Partition window: long enough to promote, re-subscribe and drive
/// split-brain traffic inside it; short enough that waiting out the
/// heal keeps the experiment snappy.
const PARTITION_MS: u64 = 6_000;
/// How long the harness waits for the zombie to get fenced after the
/// heal (the announce retry cadence is 200ms, so this is generous).
const FENCE_DEADLINE: Duration = Duration::from_secs(40);

/// One spawned `snb-server` process, with a stdout scraper that keeps
/// watching for the promotion/fencing lines after startup.
struct Node {
    child: Child,
    /// Client (query) endpoint.
    addr: String,
    /// Replication (log-shipping / promotion / announce) endpoint.
    repl_addr: String,
    name: String,
    fenced: Arc<AtomicBool>,
    fenced_epoch: Arc<AtomicU64>,
}

impl Node {
    fn spawn(
        args: &Args,
        bin: &str,
        name: &str,
        wal_dir: &std::path::Path,
        replicate_from: Option<&str>,
        faults: Option<&str>,
    ) -> Node {
        let mut cmd = Command::new(bin);
        cmd.arg(&args.scale)
            .arg(args.config.seed.to_string())
            .args(["--port", "0", "--repl-port", "0", "--workers", "2"])
            .args(["--snapshot-every", "5", "--partitions", "2"])
            .arg("--wal-dir")
            .arg(wal_dir)
            .env_remove("SNB_FAULTS")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = faults {
            cmd.env("SNB_FAULTS", spec);
        }
        if let Some(primary) = replicate_from {
            cmd.args(["--follower", "--replicate-from", primary]);
        }
        let mut child = cmd.spawn().unwrap_or_else(|e| panic!("spawn {name} ({bin}): {e}"));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut repl_addr = None;
        let mut addr = None;
        let mut reader = std::io::BufReader::new(stdout);
        for line in (&mut reader).lines() {
            let line = line.expect("server stdout");
            if let Some(a) = line.strip_prefix("replication on ") {
                repl_addr = Some(a.trim().to_string());
            } else if let Some(a) = line.strip_prefix("listening on ") {
                addr = Some(a.trim().to_string());
                break;
            }
        }
        // Keep scraping stdout for the process lifetime: the fencing
        // line arrives minutes after startup, and the pipe must never
        // fill up and block the server.
        let fenced = Arc::new(AtomicBool::new(false));
        let fenced_epoch = Arc::new(AtomicU64::new(0));
        {
            let fenced = Arc::clone(&fenced);
            let fenced_epoch = Arc::clone(&fenced_epoch);
            std::thread::spawn(move || {
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if let Some(rest) = line.strip_prefix("fenced epoch=") {
                        fenced_epoch.store(rest.trim().parse().unwrap_or(0), Ordering::Release);
                        fenced.store(true, Ordering::Release);
                    }
                }
            });
        }
        let addr = addr.unwrap_or_else(|| panic!("{name} exited before listening"));
        let repl_addr = repl_addr.unwrap_or_else(|| panic!("{name} printed no replication port"));
        Node { child, addr, repl_addr, name: name.to_string(), fenced, fenced_epoch }
    }

    fn connect_with(&self, timeout: Duration) -> TcpStream {
        for _ in 0..100 {
            if let Ok(s) = TcpStream::connect(&self.addr) {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(timeout));
                return s;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("could not connect to {} at {}", self.name, self.addr);
    }

    fn connect(&self) -> TcpStream {
        self.connect_with(ACK_TIMEOUT)
    }

    /// Graceful stop for teardown.
    #[cfg(unix)]
    fn terminate(mut self) {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        unsafe {
            kill(self.child.id() as i32, 15);
        }
        let _ = self.child.wait();
    }

    #[cfg(not(unix))]
    fn terminate(mut self) {
        self.child.kill().expect("kill node");
        let _ = self.child.wait();
    }
}

fn call(
    stream: &mut TcpStream,
    id: u64,
    min_seq: u64,
    params: ServiceParams,
) -> Result<Response, String> {
    let req = Request { id, deadline_us: 0, min_seq, params };
    proto::write_frame(stream, &proto::encode_request(&req)).map_err(|e| format!("write: {e}"))?;
    let payload = proto::read_frame(stream).map_err(|e| format!("read: {e}"))?;
    proto::decode_response(&payload).map_err(|e| format!("decode: {}", e.detail))
}

/// A submit attempt's three distinguishable fates at a possibly
/// partitioned or fenced node.
enum SubmitOutcome {
    /// Acked (`"deduped"` exactly when the ack applied nothing).
    Acked(&'static str),
    /// A typed refusal came back — kind plus the full detail.
    Refused(ErrorKind, String),
    /// No answer at all (black-holed / timeout / dead socket).
    Silent(String),
}

fn submit(stream: &mut TcpStream, seq: u64, ops: &WriteOps) -> SubmitOutcome {
    let params = ServiceParams::Write(WriteBatch { seq, ops: ops.clone() });
    match call(stream, seq, 0, params) {
        Ok(resp) => match resp.body {
            Ok(ok) if ok.rows == 0 => SubmitOutcome::Acked("deduped"),
            Ok(_) => SubmitOutcome::Acked("ok"),
            Err(e) => SubmitOutcome::Refused(e.kind, e.detail),
        },
        Err(detail) => SubmitOutcome::Silent(detail),
    }
}

fn submit_acked(stream: &mut TcpStream, seq: u64, ops: &WriteOps) -> &'static str {
    match submit(stream, seq, ops) {
        SubmitOutcome::Acked(flavor) => flavor,
        SubmitOutcome::Refused(kind, detail) => {
            panic!("write seq {seq} refused: {}: {detail}", kind.name())
        }
        SubmitOutcome::Silent(detail) => panic!("write seq {seq} got no answer: {detail}"),
    }
}

/// Polls `min_seq = target` reads until one serves. Returns wall-clock.
fn wait_min_seq(stream: &mut TcpStream, target: u64, probe: &BiParams, what: &str) -> Duration {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(60);
    let mut id = 1_000_000;
    loop {
        id += 1;
        let resp = call(stream, id, target, ServiceParams::Bi(probe.clone()))
            .unwrap_or_else(|e| panic!("{what}: probe: {e}"));
        match resp.body {
            Ok(ok) => {
                assert!(ok.applied_seq >= target, "{what}: served below min_seq");
                return started.elapsed();
            }
            Err(e) if e.kind == ErrorKind::StaleRead => {
                assert!(Instant::now() < deadline, "{what}: stuck below seq {target}");
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("{what}: probe refused: {}: {}", e.kind.name(), e.detail),
        }
    }
}

pub fn run(args: &Args) {
    let bin = args.server_bin.clone().unwrap_or_else(|| {
        let exe = std::env::current_exe().expect("current_exe");
        exe.parent().expect("target dir").join("snb-server").display().to_string()
    });
    assert!(
        std::path::Path::new(&bin).exists(),
        "snb-server binary not found at {bin} (build it or pass --server-bin)"
    );
    let base_dir = std::env::temp_dir().join(format!("snb_splitbrain_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    let wal_dir = |name: &str| base_dir.join(name);

    eprintln!(
        "# split-brain: carving write batches (scale {}, seed {})",
        args.scale, args.config.seed
    );
    let (base_store, stream) = snb_store::bulk_store_and_stream(&args.config);
    let batches = crate::chaos::carve_stream(&stream, 16);
    let total = batches.len() as u64;
    assert!(total >= 8, "need at least 8 batches for the phases, got {total}");
    let seq_ops = |seq: u64| &batches[(seq - 1) as usize];
    let gen = ParamGen::new(&base_store, args.config.seed);
    let probe = gen.bi_params(1, 1).pop().expect("one BI 1 binding");

    // The partition trips on the primary's (pre+1)-th submitted batch:
    // pre acked-and-replicated writes, then one applied-but-unacked
    // trigger the client must resubmit to the new primary.
    let pre = total / 2;
    let partitioned_at = pre + 1;
    // The last batch is reserved for the redirect-follow leg (step 7);
    // the new primary drives partitioned_at..=total-1 itself.
    let driven_to = total - 1;
    let fault_spec = format!("net.partition=partition:{PARTITION_MS}@h{partitioned_at}");

    // ---- Phase 1: cluster up, pre-partition convergence ladder.
    eprintln!("# split-brain phase 1: primary (fault: {fault_spec}) + 2 followers");
    let primary = Node::spawn(args, &bin, "primary", &wal_dir("primary"), None, Some(&fault_spec));
    let f1 = Node::spawn(
        args,
        &bin,
        "follower1",
        &wal_dir("follower1"),
        Some(primary.repl_addr.as_str()),
        None,
    );
    let f2 = Node::spawn(
        args,
        &bin,
        "follower2",
        &wal_dir("follower2"),
        Some(primary.repl_addr.as_str()),
        None,
    );
    let mut pconn = primary.connect();
    let mut f1conn = f1.connect();
    let mut f2conn = f2.connect();
    eprintln!("# split-brain: driving {pre} pre-partition batches with per-ack convergence");
    for seq in 1..=pre {
        assert_eq!(submit_acked(&mut pconn, seq, seq_ops(seq)), "ok");
        // Every acked write is on both followers before the partition
        // can possibly fire — that is what makes lost_acked_writes a
        // deterministic zero, not a race.
        wait_min_seq(&mut f1conn, seq, &probe, "follower1 pre-partition");
        wait_min_seq(&mut f2conn, seq, &probe, "follower2 pre-partition");
    }

    // ---- Phase 2: trip the partition.
    eprintln!("# split-brain phase 2: tripping net.partition at seq {partitioned_at}");
    let mut trigger_conn = primary.connect_with(ZOMBIE_TIMEOUT);
    let t_partition = Instant::now();
    match submit(&mut trigger_conn, partitioned_at, seq_ops(partitioned_at)) {
        SubmitOutcome::Silent(_) => {} // applied, ack black-holed — as designed
        SubmitOutcome::Acked(f) => {
            panic!("partition never fired: seq {partitioned_at} acked ({f})")
        }
        SubmitOutcome::Refused(kind, detail) => {
            panic!("trigger write refused: {}: {detail}", kind.name())
        }
    }
    drop(pconn);

    // ---- Phase 3: promote follower 1, siblings = follower 2 + zombie.
    eprintln!("# split-brain phase 3: promoting follower1 (announce to sibling + zombie)");
    let siblings = vec![f2.repl_addr.clone(), primary.repl_addr.clone()];
    let promotion = replication::promote_with(&f1.repl_addr, 0, &f1.repl_addr, &f1.addr, &siblings)
        .expect("promote follower1");
    let promote_ms = t_partition.elapsed().as_millis() as u64;
    let t_promoted = Instant::now();
    assert_eq!(
        promotion.writable_from, pre,
        "promotion frontier must be the replicated prefix, not the unacked trigger"
    );
    assert!(promotion.epoch >= 1, "promotion must bump the epoch: {promotion:?}");
    eprintln!(
        "# split-brain: follower1 writable from seq {} at epoch {} ({promote_ms} ms)",
        promotion.writable_from, promotion.epoch
    );

    // ---- Phase 4: drive writes at both nodes while partitioned.
    // New primary: resubmit the unacked trigger, then the live tail.
    let mut first_ack_ms = 0u64;
    let mut resubmitted = 0u64;
    let mut rededuped = 0u64;
    for seq in promotion.writable_from + 1..=driven_to {
        let flavor = submit_acked(&mut f1conn, seq, seq_ops(seq));
        if first_ack_ms == 0 {
            first_ack_ms = t_partition.elapsed().as_millis() as u64;
        }
        resubmitted += 1;
        if flavor == "deduped" {
            rededuped += 1;
        }
    }
    eprintln!(
        "# split-brain phase 4: new primary acked {resubmitted} writes \
         ({rededuped} deduped, first ack {first_ack_ms} ms after partition)"
    );

    // Follower 2 must re-point itself at the announced primary and
    // converge on writes the zombie never shipped.
    let resubscribe_ms = (t_promoted.elapsed()
        + wait_min_seq(&mut f2conn, driven_to, &probe, "follower2 failover"))
    .as_millis() as u64;
    eprintln!("# split-brain: follower2 re-subscribed and converged in {resubscribe_ms} ms");

    // Zombie traffic, leg 1: keep throwing writes at the black-holed
    // primary while the partition window is provably open (stop a
    // safety margin before the heal — the in-flight send must land
    // inside the window). Every one must vanish; a single ack is
    // split-brain and fails the run. Each pass also re-acks a write on
    // the new primary, so both nodes see client traffic the whole
    // time.
    let mut zombie_attempts = 0u64;
    let mut zombie_acks = 0u64;
    let mut zombie_silent = 0u64;
    let silent_until = t_partition + Duration::from_millis(PARTITION_MS.saturating_sub(1500));
    while Instant::now() < silent_until {
        let mut zconn = primary.connect_with(ZOMBIE_TIMEOUT);
        zombie_attempts += 1;
        match submit(&mut zconn, driven_to + 1, seq_ops(driven_to + 1)) {
            SubmitOutcome::Acked(flavor) => {
                zombie_acks += 1;
                eprintln!("SPLIT-BRAIN: zombie acked seq {} ({flavor})", driven_to + 1);
            }
            SubmitOutcome::Refused(ErrorKind::Fenced, _) => break, // fenced early: fine
            SubmitOutcome::Refused(kind, detail) => {
                panic!("zombie refused with {} (want silence or fenced): {detail}", kind.name())
            }
            SubmitOutcome::Silent(_) => zombie_silent += 1,
        }
        assert_eq!(submit_acked(&mut f1conn, driven_to, seq_ops(driven_to)), "deduped");
    }
    eprintln!(
        "# split-brain: {zombie_attempts} zombie writes inside the window \
         ({zombie_silent} black-holed, {zombie_acks} acked)"
    );

    // Leg 2: wait out the heal. The promoted node's announce-retry
    // thread finally gets through and the zombie fences itself — the
    // typed stdout line is the signal. No client write is risked in
    // the brief healed-but-not-yet-fenced gap: the harness only
    // resumes zombie traffic once the fence is confirmed, because the
    // announce is best-effort delivery, not a lease — the gap is
    // closed by the fence landing, not by wall-clock.
    let fence_deadline = Instant::now() + FENCE_DEADLINE;
    while !primary.fenced.load(Ordering::Acquire) {
        assert!(
            Instant::now() < fence_deadline,
            "zombie never fenced after the heal ({zombie_attempts} in-window attempts)"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let zombie_epoch = primary.fenced_epoch.load(Ordering::Acquire);
    assert_eq!(
        zombie_epoch, promotion.epoch,
        "zombie fenced at a different epoch than the promotion"
    );
    let fenced_after_ms = t_partition.elapsed().as_millis() as u64;
    eprintln!(
        "# split-brain: zombie fenced at epoch {zombie_epoch}, \
         {fenced_after_ms} ms after the partition opened"
    );

    // Leg 3: the fenced zombie must now refuse with the typed terminal
    // error, carrying the new primary's address.
    let mut fenced_rejects = 0u64;
    let fenced_detail;
    let mut zconn = primary.connect_with(ACK_TIMEOUT);
    zombie_attempts += 1;
    match submit(&mut zconn, driven_to + 1, seq_ops(driven_to + 1)) {
        SubmitOutcome::Refused(ErrorKind::Fenced, detail) => {
            fenced_rejects += 1;
            fenced_detail = detail;
        }
        SubmitOutcome::Acked(flavor) => {
            panic!("fenced zombie acked seq {} ({flavor})", driven_to + 1)
        }
        SubmitOutcome::Refused(kind, detail) => {
            panic!("fenced zombie refused with {} (want fenced): {detail}", kind.name())
        }
        SubmitOutcome::Silent(detail) => panic!("fenced zombie went silent: {detail}"),
    }

    // ---- Phase 5: follow the fenced redirect with the same batch seq.
    let redirect = retry::redirect_target(&fenced_detail)
        .unwrap_or_else(|| panic!("fenced refusal carries no redirect: {fenced_detail}"))
        .to_string();
    assert_eq!(redirect, f1.addr, "redirect must point at the new primary");
    let mut redirected = TcpStream::connect(&redirect).expect("follow redirect");
    let _ = redirected.set_nodelay(true);
    let _ = redirected.set_read_timeout(Some(ACK_TIMEOUT));
    assert_eq!(
        submit_acked(&mut redirected, driven_to + 1, seq_ops(driven_to + 1)),
        "ok",
        "redirected resubmit must apply fresh on the new primary"
    );
    let redirect_followed = 1u64;
    eprintln!("# split-brain phase 5: fenced redirect followed to {redirect}, seq {} acked", total);

    // Every acked write must live on the new primary: the pre-partition
    // prefix was under the promotion frontier, everything after was
    // acked by the new primary itself.
    let acked_frontier = total;
    wait_min_seq(&mut f1conn, acked_frontier, &probe, "new primary frontier");
    let lost_acked_writes = pre.saturating_sub(promotion.writable_from);

    // ---- Phase 6: 25-query oracle equality on the new primary AND the
    // re-subscribed follower (sibling convergence is only proven if the
    // follower answers from the same history).
    wait_min_seq(&mut f2conn, acked_frontier, &probe, "follower2 final");
    eprintln!("# split-brain phase 6: verifying 25 BI queries on both survivors");
    let mut oracle = base_store;
    let world = StaticWorld::build(args.config.seed);
    for ops in &batches {
        match ops {
            WriteOps::Updates(events) => {
                for ev in events {
                    oracle.apply_event(ev, &world).expect("oracle apply");
                }
            }
            WriteOps::Deletes(dels) => {
                oracle.apply_deletes(dels).expect("oracle delete");
            }
        }
    }
    if !oracle.date_index_fresh() {
        oracle.rebuild_date_index();
    }
    oracle.validate_invariants().expect("oracle invariants");
    let gen = ParamGen::new(&oracle, args.config.seed);
    let ctx = QueryContext::single_threaded();
    let mut verified = 0u64;
    let mut mismatches = 0u64;
    for q in 1..=25u8 {
        for params in gen.bi_params(q, 2) {
            let want = snb_bi::run_with(&oracle, &ctx, &params);
            for (conn, who) in [(&mut f1conn, "new-primary"), (&mut f2conn, "follower2")] {
                let resp = call(
                    conn,
                    10_000_000 + verified,
                    acked_frontier,
                    ServiceParams::Bi(params.clone()),
                )
                .expect("verify read");
                verified += 1;
                match resp.body {
                    Ok(ok) if ok.rows == want.rows as u64 && ok.fingerprint == want.fingerprint => {
                    }
                    Ok(ok) => {
                        mismatches += 1;
                        eprintln!(
                            "SPLIT-BRAIN VERIFY FAILURE: BI {q} on {who}: rows {} fp {:#x}, \
                             oracle rows {} fp {:#x}",
                            ok.rows, ok.fingerprint, want.rows, want.fingerprint
                        );
                    }
                    Err(e) => {
                        mismatches += 1;
                        eprintln!(
                            "SPLIT-BRAIN VERIFY FAILURE: BI {q} on {who}: {}: {}",
                            e.kind.name(),
                            e.detail
                        );
                    }
                }
            }
        }
    }

    drop((f1conn, f2conn, redirected, trigger_conn));
    primary.terminate();
    f1.terminate();
    f2.terminate();
    let _ = std::fs::remove_dir_all(&base_dir);

    assert_eq!(zombie_acks, 0, "the fenced ex-primary acked post-promotion writes");
    assert_eq!(lost_acked_writes, 0, "acked writes missing from the new primary");
    assert_eq!(mismatches, 0, "survivors diverge from the every-batch oracle");

    // ---- Report.
    snb_bench::print_table(
        "E18: split-brain",
        &[
            "batches",
            "partition@",
            "epoch",
            "promote",
            "first ack",
            "resubscribe",
            "zombie acks",
            "lost acked",
            "verified",
        ],
        &[vec![
            total.to_string(),
            partitioned_at.to_string(),
            promotion.epoch.to_string(),
            format!("{promote_ms} ms"),
            format!("{first_ack_ms} ms"),
            format!("{resubscribe_ms} ms"),
            zombie_acks.to_string(),
            lost_acked_writes.to_string(),
            verified.to_string(),
        ]],
    );

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(&args.config)));
    out.push_str(&format!(
        "  \"failover\": {{\"total_batches\": {total}, \"partitioned_at_seq\": {partitioned_at}, \
         \"partition_ms\": {PARTITION_MS}, \"writable_from\": {}, \"epoch\": {}, \
         \"promote_ms\": {promote_ms}, \"first_ack_ms\": {first_ack_ms}, \
         \"resubscribe_ms\": {resubscribe_ms}, \"fenced_after_ms\": {fenced_after_ms}, \
         \"resubmitted\": {resubmitted}, \
         \"rededuped\": {rededuped}, \"zombie_write_attempts\": {zombie_attempts}, \
         \"zombie_silent\": {zombie_silent}, \"zombie_acks_after_promotion\": {zombie_acks}, \
         \"fenced_rejects_observed\": {fenced_rejects}, \"redirect_followed\": {redirect_followed}, \
         \"lost_acked_writes\": {lost_acked_writes}, \"queries_verified\": {verified}, \
         \"mismatches\": {mismatches}}}\n",
        promotion.writable_from, promotion.epoch,
    ));
    out.push_str("}\n");
    std::fs::write(&args.out, out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
    eprintln!(
        "# split-brain: PASS (epoch {}, {zombie_attempts} zombie attempts all refused or \
         black-holed, {verified} queries verified)",
        promotion.epoch
    );
}
