//! `--loading`: Experiment E19 — the millions-scale loading path.
//!
//! Four measurements over the same scale factor, emitted as the
//! `"loading"` block of `BENCH_service.json`:
//!
//! 1. **Streaming ingest throughput.** The datagen→store pipeline is
//!    driven through the streaming builder with a counting sink in the
//!    middle, so every entity type (persons, knows, forums,
//!    memberships, messages, likes) reports rows/sec and MB/sec of
//!    logical payload — the numbers a loader data sheet would quote.
//! 2. **Packed string footprint.** The interned/packed columns are
//!    summed against the `String`-per-row baseline the store replaced;
//!    the run **fails hard** if packing is not at least 2× smaller —
//!    that is the acceptance gate for the storage refactor, enforced
//!    where it is measured.
//! 3. **Peak RSS, streaming vs materialised.** The streaming phase
//!    runs first (`VmHWM` is sticky), the high-water mark is reset via
//!    `/proc/self/clear_refs` where the kernel allows it, and the
//!    classic materialise-everything build runs second, so the two
//!    peaks are attributable per phase.
//! 4. **Recovery vs history length.** The same update history is
//!    pushed through in-process durable servers at three lengths, with
//!    and without store-image writing. With images the replayed tail
//!    is bounded by `snapshot_every` no matter the history (asserted);
//!    without, replay grows linearly. The longest image recovery is
//!    proven equal to a direct-apply oracle before anything is
//!    reported.

use std::time::Instant;

use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::graph::{RawForum, RawKnows, RawLike, RawMembership, RawMessage, RawPerson};
use snb_datagen::ActivitySink;
use snb_server::{Server, ServiceParams, WalOptions, WriteBatch, WriteOps};
use snb_store::StreamBuilder;

use crate::Args;

/// Events per write batch in the recovery curve (matches the chaos
/// harness carve).
const EVENTS_PER_BATCH: usize = 10;
/// Compaction cadence for the recovery curve: an image (when armed)
/// every four batches.
const SNAPSHOT_EVERY: u64 = 4;

/// Rows and logical payload bytes for one entity type.
#[derive(Default, Clone, Copy)]
struct Tally {
    rows: u64,
    bytes: u64,
}

impl Tally {
    fn add(&mut self, bytes: usize) {
        self.rows += 1;
        self.bytes += bytes as u64;
    }

    /// `{"rows": …, "bytes": …, "rows_per_sec": …, "mb_per_sec": …}`
    /// against the wall-clock of the stage that produced the rows.
    fn json(&self, wall_us: u64) -> String {
        let secs = wall_us.max(1) as f64 / 1e6;
        format!(
            "{{\"rows\": {}, \"bytes\": {}, \"rows_per_sec\": {:.0}, \"mb_per_sec\": {:.2}}}",
            self.rows,
            self.bytes,
            self.rows as f64 / secs,
            self.bytes as f64 / (1u64 << 20) as f64 / secs,
        )
    }
}

/// Logical payload size of each raw record: the variable-length content
/// plus a fixed overhead for the scalar fields. This is what a CSV/raw
/// loader would have to move, so it is the honest numerator for MB/sec.
fn person_bytes(p: &RawPerson) -> usize {
    64 + p.first_name.len()
        + p.last_name.len()
        + p.location_ip.len()
        + p.emails.iter().map(String::len).sum::<usize>()
        + p.languages.len()
        + p.interests.len() * 8
        + if p.study_at.is_some() { 12 } else { 0 }
        + p.work_at.len() * 12
}

fn forum_bytes(f: &RawForum) -> usize {
    32 + f.title.len() + f.tags.len() * 8
}

fn message_bytes(m: &RawMessage) -> usize {
    64 + m.content.len()
        + m.location_ip.len()
        + m.image_file.as_ref().map_or(0, String::len)
        + m.tags.len() * 8
}

/// [`ActivitySink`] adaptor: tallies every record, then hands it to the
/// real [`StreamBuilder`]. Generation order and content are untouched,
/// so the built store is bit-identical to an uncounted streaming build.
struct CountingSink<'a, 'w> {
    inner: &'a mut StreamBuilder<'w>,
    forums: Tally,
    memberships: Tally,
    messages: Tally,
    likes: Tally,
}

impl ActivitySink for CountingSink<'_, '_> {
    fn forum(&mut self, f: RawForum) {
        self.forums.add(forum_bytes(&f));
        self.inner.forum(f);
    }
    fn membership(&mut self, m: RawMembership) {
        self.memberships.add(std::mem::size_of::<RawMembership>());
        self.inner.membership(m);
    }
    fn message(&mut self, m: RawMessage) {
        self.messages.add(message_bytes(&m));
        self.inner.message(m);
    }
    fn like(&mut self, l: RawLike) {
        self.likes.add(std::mem::size_of::<RawLike>());
        self.inner.like(l);
    }
}

/// One point on the recovery-vs-history curve.
struct RecPoint {
    history: usize,
    image: bool,
    recovery_us: u64,
    image_seq: u64,
    tail_replayed: u64,
    snapshot_entries: u64,
    /// Recovered node/edge counts, for the oracle gate at the longest
    /// image history.
    stats: (u64, u64),
}

/// Drives `history` batches through an in-process durable server
/// (image writing on or off), kills it cleanly, and measures a cold
/// recovery of the directory.
fn recovery_point(args: &Args, batches: &[WriteOps], history: usize, image: bool) -> RecPoint {
    let dir = std::env::temp_dir().join(format!(
        "snb_loading_{history}_{}_{}",
        if image { "img" } else { "noimg" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let options = WalOptions {
        fsync_every: 1,
        snapshot_every: SNAPSHOT_EVERY,
        image,
        ..WalOptions::default()
    };
    let recovered = snb_server::recover(&dir, &args.config, &args.scale, options)
        .expect("loading: recovery on a fresh directory");
    let (store, durability, _) = recovered.into_durability();
    let server = Server::start_durable(store, args.server.clone(), durability);
    let client = server.client();
    for (i, ops) in batches.iter().take(history).enumerate() {
        let resp =
            client.call(ServiceParams::Write(WriteBatch { seq: i as u64 + 1, ops: ops.clone() }), 0);
        assert!(resp.body.is_ok(), "loading: batch {} refused: {:?}", i + 1, resp.body.err());
    }
    server.shutdown();

    let rec = snb_server::recover(&dir, &args.config, &args.scale, WalOptions::default())
        .expect("loading: cold recovery");
    assert_eq!(rec.report.last_seq, history as u64, "recovery must reach the full history");
    if image {
        assert!(
            rec.report.tail_replayed <= SNAPSHOT_EVERY,
            "history {history}: image recovery replayed {} > snapshot_every — \
             the image is not bounding recovery",
            rec.report.tail_replayed
        );
    }
    let stats = rec.store.stats();
    let point = RecPoint {
        history,
        image,
        recovery_us: rec.report.recovery_us,
        image_seq: rec.report.image_seq,
        tail_replayed: rec.report.tail_replayed,
        snapshot_entries: rec.report.snapshot_entries,
        stats: (stats.nodes as u64, stats.edges as u64),
    };
    let _ = std::fs::remove_dir_all(&dir);
    point
}

/// Best-effort `VmHWM` reset between phases; returns whether it worked
/// (containerised kernels sometimes refuse the write).
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Runs the loading experiment and writes the full JSON document.
pub fn run(args: &Args) {
    let config = &args.config;
    eprintln!(
        "# loading: streaming datagen→ingest at {} persons (seed {})",
        config.persons, config.seed
    );

    // ---- Phase 1: streaming build with per-entity tallies.
    let world = StaticWorld::build(config.seed);
    let streaming_started = Instant::now();
    let mut builder = StreamBuilder::new(&world, Some(config.stream_cut()));

    let mut person_tally = Tally::default();
    let mut persons: Vec<RawPerson> = Vec::with_capacity(config.persons as usize);
    let t0 = Instant::now();
    for chunk in snb_datagen::person_chunks(config, &world, 4096) {
        for p in &chunk {
            person_tally.add(person_bytes(p));
        }
        builder.add_persons(&chunk);
        persons.extend(chunk);
    }
    let persons_us = t0.elapsed().as_micros() as u64;

    let mut knows_tally = Tally::default();
    let t0 = Instant::now();
    let knows: Vec<RawKnows> = snb_datagen::knows::generate_knows(config, &persons);
    for _ in &knows {
        knows_tally.add(std::mem::size_of::<RawKnows>());
    }
    builder.add_knows(&knows);
    let knows_us = t0.elapsed().as_micros() as u64;

    let t0 = Instant::now();
    let mut sink = CountingSink {
        inner: &mut builder,
        forums: Tally::default(),
        memberships: Tally::default(),
        messages: Tally::default(),
        likes: Tally::default(),
    };
    snb_datagen::generate_activity_into(config, &world, &persons, &knows, &mut sink);
    let CountingSink { forums, memberships, messages, likes, .. } = sink;
    let activity_us = t0.elapsed().as_micros() as u64;
    drop(persons);
    drop(knows);

    let t0 = Instant::now();
    let (streaming_store, stream) = builder.finish();
    let finish_us = t0.elapsed().as_micros() as u64;
    let streaming_us = streaming_started.elapsed().as_micros() as u64;
    let rss_streaming = snb_bench::peak_rss_bytes();
    let streaming_stats = streaming_store.stats();
    eprintln!(
        "# loading: streamed {} messages in {} ({} MiB peak RSS)",
        messages.rows,
        snb_bench::fmt_duration(std::time::Duration::from_micros(streaming_us)),
        rss_streaming >> 20,
    );

    // ---- Phase 2: packed vs String-baseline footprint. The gate of
    // the storage refactor is per-person bytes: person string columns
    // are dictionary-heavy (names, browsers, languages), so interning
    // must carry them in at most half the bytes a String-per-row
    // layout would. Forum and message columns are reported alongside
    // for the full picture — message *content* is unique text, where
    // packing only recovers the per-row `String` header and allocator
    // slack, so no 2× is possible or claimed there.
    let (p_packed, p_base) = streaming_store.persons.string_bytes();
    let (f_packed, f_base) = streaming_store.forums.string_bytes();
    let (m_packed, m_base) = streaming_store.messages.string_bytes();
    let packed = (p_packed + f_packed + m_packed) as u64;
    let baseline = (p_base + f_base + m_base) as u64;
    let ratio = baseline as f64 / packed.max(1) as f64;
    let person_ratio = p_base as f64 / p_packed.max(1) as f64;
    let per_person_packed = p_packed as f64 / config.persons.max(1) as f64;
    let per_person_base = p_base as f64 / config.persons.max(1) as f64;
    eprintln!(
        "# loading: person strings {p_packed} B packed vs {p_base} B baseline \
         ({person_ratio:.2}x, {per_person_packed:.0} vs {per_person_base:.0} B/person); \
         all strings {packed} vs {baseline} B ({ratio:.2}x)"
    );
    assert!(
        person_ratio >= 2.0,
        "LOADING GATE FAILURE: packed person columns are only {person_ratio:.2}x smaller than \
         the String-per-row baseline (need >= 2x): {p_packed} vs {p_base} bytes"
    );

    // ---- Phase 3: the materialise-everything baseline build.
    drop(streaming_store);
    let rss_reset = reset_peak_rss();
    let t0 = Instant::now();
    let (bulk_store, bulk_stream) = snb_store::bulk_store_and_stream(config);
    let materialized_us = t0.elapsed().as_micros() as u64;
    let rss_materialized = snb_bench::peak_rss_bytes();
    let bulk_stats = bulk_store.stats();
    assert_eq!(
        (streaming_stats.nodes, streaming_stats.edges),
        (bulk_stats.nodes, bulk_stats.edges),
        "streaming and materialised builds must agree"
    );
    assert_eq!(stream.len(), bulk_stream.len(), "both builds must carve the same update tail");
    drop(bulk_store);
    drop(bulk_stream);

    // ---- Phase 4: recovery vs history length, image on and off.
    let batches: Vec<WriteOps> = stream
        .chunks(EVENTS_PER_BATCH)
        .map(|chunk| WriteOps::Updates(chunk.to_vec()))
        .collect();
    let mut histories: Vec<usize> =
        [4usize, 8, 12].into_iter().map(|h| h.min(batches.len())).collect();
    histories.dedup();
    let longest = *histories.last().expect("at least one history length");
    let mut points = Vec::new();
    for &history in &histories {
        for image in [false, true] {
            eprintln!("# loading: recovery point history={history} image={image}");
            points.push(recovery_point(args, &batches, history, image));
        }
    }

    // Oracle: the longest image recovery equals direct application of
    // the same batches onto a fresh bulk store.
    let oracle_stats = {
        let (mut store, _) = snb_store::bulk_store_and_stream(config);
        for ops in batches.iter().take(longest) {
            let WriteOps::Updates(events) = ops else { unreachable!("loading carves updates") };
            for ev in events {
                store.apply_event(ev, &world).expect("oracle apply");
            }
        }
        if !store.date_index_fresh() {
            store.rebuild_date_index();
        }
        let s = store.stats();
        (s.nodes as u64, s.edges as u64)
    };
    for p in points.iter().filter(|p| p.history == longest) {
        assert_eq!(
            p.stats, oracle_stats,
            "LOADING VERIFY FAILURE: history {} (image={}) diverges from the oracle",
            p.history, p.image
        );
    }

    // ---- Report.
    snb_bench::print_table(
        "E19: streaming ingest",
        &["entity", "rows", "MB", "rows/s"],
        &[
            ("persons", person_tally, persons_us),
            ("knows", knows_tally, knows_us),
            ("forums", forums, activity_us),
            ("memberships", memberships, activity_us),
            ("messages", messages, activity_us),
            ("likes", likes, activity_us),
        ]
        .iter()
        .map(|(name, t, us)| {
            vec![
                name.to_string(),
                t.rows.to_string(),
                format!("{:.1}", t.bytes as f64 / (1u64 << 20) as f64),
                format!("{:.0}", t.rows as f64 / (*us).max(1) as f64 * 1e6),
            ]
        })
        .collect::<Vec<_>>(),
    );
    snb_bench::print_table(
        "E19: recovery vs history",
        &["history", "image", "recovery", "tail", "image_seq"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.history.to_string(),
                    p.image.to_string(),
                    snb_bench::fmt_duration(std::time::Duration::from_micros(p.recovery_us)),
                    p.tail_replayed.to_string(),
                    p.image_seq.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(config)));
    out.push_str("  \"loading\": {\n");
    out.push_str(&format!("    \"persons\": {},\n", person_tally.json(persons_us)));
    out.push_str(&format!("    \"knows\": {},\n", knows_tally.json(knows_us)));
    out.push_str(&format!("    \"forums\": {},\n", forums.json(activity_us)));
    out.push_str(&format!("    \"memberships\": {},\n", memberships.json(activity_us)));
    out.push_str(&format!("    \"messages\": {},\n", messages.json(activity_us)));
    out.push_str(&format!("    \"likes\": {},\n", likes.json(activity_us)));
    out.push_str(&format!(
        "    \"streaming\": {{\"wall_us\": {streaming_us}, \"finish_us\": {finish_us}, \
         \"peak_rss_bytes\": {rss_streaming}}},\n"
    ));
    out.push_str(&format!(
        "    \"materialized\": {{\"wall_us\": {materialized_us}, \
         \"peak_rss_bytes\": {rss_materialized}, \"rss_reset\": {rss_reset}}},\n"
    ));
    out.push_str(&format!(
        "    \"strings\": {{\"packed_bytes\": {packed}, \"baseline_bytes\": {baseline}, \
         \"ratio\": {ratio:.2}, \"person_packed_bytes\": {p_packed}, \
         \"person_baseline_bytes\": {p_base}, \"person_ratio\": {person_ratio:.2}, \
         \"forum_packed_bytes\": {f_packed}, \"forum_baseline_bytes\": {f_base}, \
         \"message_packed_bytes\": {m_packed}, \"message_baseline_bytes\": {m_base}, \
         \"bytes_per_person_packed\": {per_person_packed:.1}, \
         \"bytes_per_person_baseline\": {per_person_base:.1}}},\n"
    ));
    out.push_str("    \"recovery\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"history\": {}, \"image\": {}, \"recovery_us\": {}, \"image_seq\": {}, \
             \"tail_replayed\": {}, \"snapshot_entries\": {}}}{}\n",
            p.history,
            p.image,
            p.recovery_us,
            p.image_seq,
            p.tail_replayed,
            p.snapshot_entries,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"oracle\": {{\"verified_history\": {longest}, \"nodes\": {}, \"edges\": {}}}\n",
        oracle_stats.0, oracle_stats.1
    ));
    out.push_str("  }\n}\n");
    std::fs::write(&args.out, out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
    eprintln!(
        "# loading: PASS ({person_ratio:.2}x person-string packing, {} recovery points, \
         oracle verified)",
        points.len()
    );
}
