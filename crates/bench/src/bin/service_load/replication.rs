//! `--replication`: experiment E17 — log-shipping replication under
//! real processes.
//!
//! Spawns one primary `snb-server` with a WAL and a replication
//! listener, plus `--followers N` follower processes (`--follower
//! --replicate-from`), each with its own WAL directory, and measures
//! the four properties the replication design claims:
//!
//! 1. **Catch-up**: the primary accumulates a write backlog before any
//!    follower exists; a cold follower must converge to the backlog
//!    high-water mark through the shipped-record path. Measured as
//!    wall-clock from spawn to the first read that satisfies
//!    `min_seq = backlog`, counting the typed `stale_read` refusals
//!    absorbed along the way (the client-visible face of lag).
//! 2. **Lag**: while writes stream through the primary, every ack is
//!    immediately followed by a probe read against a follower; the
//!    sampled `acked_seq - applied_seq` distribution (p50/p99/max, in
//!    records) is the staleness a `min_seq`-free read can observe.
//! 3. **Read scaling**: an identical closed-loop read window runs
//!    first against the primary alone, then against the full cluster
//!    (same clients per node), all reads pinned to the replicated
//!    high-water mark via `min_seq` so stale answers cannot inflate
//!    the cluster number. With ≥ 4 cores and ≥ 2 followers the
//!    cluster must clear 1.8× the single-node throughput; on smaller
//!    machines the ratio is recorded but the gate is waived
//!    (`scaling_gated`) — one core cannot prove a parallel speedup,
//!    only the protocol (see ROADMAP on 1-core physics).
//! 4. **Failover**: the primary is SIGKILLed immediately after acking
//!    a batch (mid-ship: the ack is client-visible but possibly not
//!    yet on any follower), a follower is promoted over the
//!    replication port, and the client replays its outbox — every
//!    batch not acked by a *surviving* node — against the new
//!    primary, where the seq-dedupe gate absorbs whatever did ship.
//!    Failover wall-clock runs from the kill to the first write ack
//!    on the promoted node. Finally the promoted store must answer
//!    all 25 BI queries identically to an oracle that applied every
//!    batch exactly once — a lost shipped record or a double apply is
//!    a fingerprint divergence and a hard failure.
//!
//! Results land in a `"replication"` block of `BENCH_service.json`.

use std::io::BufRead;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use snb_bi::BiParams;
use snb_datagen::dictionaries::StaticWorld;
use snb_engine::QueryContext;
use snb_params::ParamGen;
use snb_server::proto::{self, Request};
use snb_server::{replication, Response, ServiceParams, WriteBatch, WriteOps};

use crate::Args;

/// Read timeout on client connections: long enough for a slow CI BI
/// query, short enough to notice a dead process.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);
/// Closed-loop read window per ladder rung.
const WINDOW: Duration = Duration::from_millis(1500);
/// Clients per node in the read ladder (same on both rungs, so the
/// cluster rung offers proportionally more concurrency — that is the
/// point: capacity must come from the added nodes).
const CLIENTS_PER_NODE: usize = 4;
/// Batches held back from the lag stream for the failover phase.
const FAILOVER_TAIL: u64 = 3;

/// One spawned `snb-server` process (primary or follower).
struct Node {
    child: Child,
    /// Client (query) endpoint.
    addr: String,
    /// Replication (log-shipping / promotion) endpoint.
    repl_addr: String,
    recovered_seq: u64,
    name: String,
}

impl Node {
    fn spawn(
        args: &Args,
        bin: &str,
        name: &str,
        wal_dir: &std::path::Path,
        replicate_from: Option<&str>,
    ) -> Node {
        let mut cmd = Command::new(bin);
        cmd.arg(&args.scale)
            .arg(args.config.seed.to_string())
            .args(["--port", "0", "--repl-port", "0", "--workers", "2"])
            .args(["--snapshot-every", "5", "--partitions", "2"])
            .arg("--wal-dir")
            .arg(wal_dir)
            .env_remove("SNB_FAULTS")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(primary) = replicate_from {
            cmd.args(["--follower", "--replicate-from", primary]);
        }
        let mut child = cmd.spawn().unwrap_or_else(|e| panic!("spawn {name} ({bin}): {e}"));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut recovered_seq = 0;
        let mut repl_addr = None;
        let mut addr = None;
        let mut reader = std::io::BufReader::new(stdout);
        for line in (&mut reader).lines() {
            let line = line.expect("server stdout");
            if let Some(rest) = line.strip_prefix("recovered seq=") {
                let seq = rest.split_whitespace().next().unwrap_or("0");
                recovered_seq = seq.parse().unwrap_or(0);
            } else if let Some(a) = line.strip_prefix("replication on ") {
                repl_addr = Some(a.trim().to_string());
            } else if let Some(a) = line.strip_prefix("listening on ") {
                addr = Some(a.trim().to_string());
                break;
            }
        }
        // Keep draining stdout for the process lifetime: the node keeps
        // talking (e.g. `promoted writable_from=`) and must never block
        // — or die with EPIPE — on a full or closed pipe.
        std::thread::spawn(move || for _ in reader.lines() {});
        let addr = addr.unwrap_or_else(|| panic!("{name} exited before listening"));
        let repl_addr = repl_addr.unwrap_or_else(|| panic!("{name} printed no replication port"));
        Node { child, addr, repl_addr, recovered_seq, name: name.to_string() }
    }

    fn connect(&self) -> TcpStream {
        for _ in 0..100 {
            if let Ok(s) = TcpStream::connect(&self.addr) {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(ACK_TIMEOUT));
                return s;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("could not connect to {} at {}", self.name, self.addr);
    }

    /// SIGKILL — the crash under test; no drain, no destructors.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL node");
        self.child.wait().expect("reap node");
    }

    /// Graceful stop for teardown.
    #[cfg(unix)]
    fn terminate(mut self) {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        unsafe {
            kill(self.child.id() as i32, 15);
        }
        let _ = self.child.wait();
    }

    #[cfg(not(unix))]
    fn terminate(self) {
        self.sigkill();
    }
}

fn call(
    stream: &mut TcpStream,
    id: u64,
    min_seq: u64,
    params: ServiceParams,
) -> Result<Response, String> {
    let req = Request { id, deadline_us: 0, min_seq, params };
    proto::write_frame(stream, &proto::encode_request(&req)).map_err(|e| format!("write: {e}"))?;
    let payload = proto::read_frame(stream).map_err(|e| format!("read: {e}"))?;
    proto::decode_response(&payload).map_err(|e| format!("decode: {}", e.detail))
}

/// Submits batch `seq`; `Ok((flavor, rows))` mirrors the chaos harness:
/// `"deduped"` exactly when the ack applied nothing.
fn submit(stream: &mut TcpStream, seq: u64, ops: &WriteOps) -> Result<(&'static str, u64), String> {
    let params = ServiceParams::Write(WriteBatch { seq, ops: ops.clone() });
    let resp = call(stream, seq, 0, params)?;
    match resp.body {
        Ok(ok) if ok.rows == 0 => Ok(("deduped", 0)),
        Ok(ok) => Ok(("ok", ok.rows)),
        Err(e) => Err(format!("{}: {}", e.kind.name(), e.detail)),
    }
}

/// One probe read; returns the responding node's `applied_seq` stamp.
fn probe_applied(stream: &mut TcpStream, id: u64, probe: &BiParams) -> u64 {
    match call(stream, id, 0, ServiceParams::Bi(probe.clone())).expect("probe read").body {
        Ok(ok) => ok.applied_seq,
        Err(e) => panic!("probe read refused: {}: {}", e.kind.name(), e.detail),
    }
}

/// Polls `min_seq = target` reads until one serves, counting the typed
/// `stale_read` refusals along the way. Returns (wall-clock, refusals).
fn wait_min_seq(stream: &mut TcpStream, target: u64, probe: &BiParams) -> (Duration, u64) {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(60);
    let mut stale = 0u64;
    let mut id = 1_000_000;
    loop {
        id += 1;
        let resp = call(stream, id, target, ServiceParams::Bi(probe.clone())).expect("probe");
        match resp.body {
            Ok(ok) => {
                assert!(ok.applied_seq >= target, "served below min_seq: {}", ok.applied_seq);
                return (started.elapsed(), stale);
            }
            Err(e) if e.kind == snb_server::ErrorKind::StaleRead => {
                stale += 1;
                assert!(Instant::now() < deadline, "catch-up stuck below seq {target}");
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("catch-up probe refused: {}: {}", e.kind.name(), e.detail),
        }
    }
}

/// A closed-loop read window: `CLIENTS_PER_NODE` clients per address,
/// every read pinned to `min_seq`. Returns (ok count, stale-read
/// retries, achieved QPS).
fn read_window(addrs: &[&str], min_seq: u64, pool: &[(u8, BiParams)]) -> (u64, u64, f64) {
    let started = Instant::now();
    let end = started + WINDOW;
    let (mut ok_total, mut stale_total) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (n, addr) in addrs.iter().enumerate() {
            for c in 0..CLIENTS_PER_NODE {
                handles.push(scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("ladder connect");
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(ACK_TIMEOUT));
                    let (mut ok, mut stale) = (0u64, 0u64);
                    let mut i = n * 131 + c * 17;
                    let mut id = ((n * CLIENTS_PER_NODE + c) as u64) << 32;
                    while Instant::now() < end {
                        let (_, params) = &pool[i % pool.len()];
                        i += 1;
                        id += 1;
                        let resp =
                            call(&mut stream, id, min_seq, ServiceParams::Bi(params.clone()))
                                .expect("ladder read");
                        match resp.body {
                            Ok(_) => ok += 1,
                            Err(e) if e.kind == snb_server::ErrorKind::StaleRead => stale += 1,
                            Err(e) => panic!("ladder read: {}: {}", e.kind.name(), e.detail),
                        }
                    }
                    (ok, stale)
                }));
            }
        }
        for h in handles {
            let (ok, stale) = h.join().expect("ladder client");
            ok_total += ok;
            stale_total += stale;
        }
    });
    (ok_total, stale_total, ok_total as f64 / started.elapsed().as_secs_f64())
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

pub fn run(args: &Args) {
    let bin = args.server_bin.clone().unwrap_or_else(|| {
        let exe = std::env::current_exe().expect("current_exe");
        exe.parent().expect("target dir").join("snb-server").display().to_string()
    });
    assert!(
        std::path::Path::new(&bin).exists(),
        "snb-server binary not found at {bin} (build it or pass --server-bin)"
    );
    let base_dir = std::env::temp_dir().join(format!("snb_repl_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    let wal_dir = |name: &str| base_dir.join(name);

    eprintln!(
        "# replication: carving write batches (scale {}, seed {})",
        args.scale, args.config.seed
    );
    let (base_store, stream) = snb_store::bulk_store_and_stream(&args.config);
    let batches = crate::chaos::carve_stream(&stream, 16);
    let total = batches.len() as u64;
    assert!(total >= 12, "need at least 12 batches for the three phases, got {total}");
    let seq_ops = |seq: u64| &batches[(seq - 1) as usize];
    // Probe + ladder bindings, generated against the bulk image (reads
    // stay valid as updates apply; correctness is proven by the final
    // oracle pass, the ladder only counts).
    let gen = ParamGen::new(&base_store, args.config.seed);
    let probe = gen.bi_params(1, 1).pop().expect("one BI 1 binding");
    let pool: Vec<(u8, BiParams)> = args
        .queries
        .iter()
        .flat_map(|&q| gen.bi_params(q, args.bindings_per_query).into_iter().map(move |p| (q, p)))
        .collect();
    assert!(!pool.is_empty(), "no ladder bindings generated");

    // ---- Phase 1: backlog + cold-follower catch-up.
    let backlog = total / 3;
    eprintln!("# replication phase 1: primary + {} batch backlog, then catch-up", backlog);
    let primary = Node::spawn(args, &bin, "primary", &wal_dir("primary"), None);
    assert_eq!(primary.recovered_seq, 0, "fresh primary recovers to the bulk image");
    let mut pconn = primary.connect();
    for seq in 1..=backlog {
        let (flavor, _) = submit(&mut pconn, seq, seq_ops(seq)).expect("backlog ack");
        assert_eq!(flavor, "ok");
    }

    let mut followers = Vec::new();
    let mut fconns = Vec::new();
    let mut catch_up = Vec::new();
    for i in 0..args.followers {
        let name = format!("follower{i}");
        let spawned = Instant::now();
        let node =
            Node::spawn(args, &bin, &name, &wal_dir(&name), Some(primary.repl_addr.as_str()));
        let mut conn = node.connect();
        let (waited, stale_retries) = wait_min_seq(&mut conn, backlog, &probe);
        let catch_up_ms = spawned.elapsed().as_millis() as u64;
        eprintln!(
            "# replication: {name} caught up to seq {backlog} in {catch_up_ms} ms \
             ({stale_retries} stale_read refusals, {} ms behind min_seq)",
            waited.as_millis()
        );
        catch_up.push((name, catch_up_ms, stale_retries));
        followers.push(node);
        fconns.push(conn);
    }

    // ---- Phase 2: live stream with lag sampling.
    let streamed_to = total - FAILOVER_TAIL;
    eprintln!(
        "# replication phase 2: streaming seqs {}..={streamed_to} with lag probes",
        backlog + 1
    );
    let mut lag_samples: Vec<u64> = Vec::new();
    for seq in backlog + 1..=streamed_to {
        let (flavor, _) = submit(&mut pconn, seq, seq_ops(seq)).expect("stream ack");
        assert_eq!(flavor, "ok");
        let f = ((seq - backlog - 1) as usize) % fconns.len();
        let applied = probe_applied(&mut fconns[f], 2_000_000 + seq, &probe);
        lag_samples.push(seq.saturating_sub(applied));
    }
    lag_samples.sort_unstable();
    let (lag_p50, lag_p99) = (percentile(&lag_samples, 0.50), percentile(&lag_samples, 0.99));
    let lag_max = lag_samples.last().copied().unwrap_or(0);

    // Drain: every follower reaches the streamed high-water mark before
    // the ladder, so ladder reads pinned there never wait out lag.
    for conn in fconns.iter_mut() {
        let _ = wait_min_seq(conn, streamed_to, &probe);
    }

    // ---- Phase 3: read-scaling ladder.
    eprintln!("# replication phase 3: read ladder (1 node, then {} nodes)", 1 + followers.len());
    let (single_ok, single_stale, single_qps) =
        read_window(&[primary.addr.as_str()], streamed_to, &pool);
    let mut cluster_addrs: Vec<&str> = vec![primary.addr.as_str()];
    cluster_addrs.extend(followers.iter().map(|f| f.addr.as_str()));
    let (cluster_ok, cluster_stale, cluster_qps) = read_window(&cluster_addrs, streamed_to, &pool);
    let scaling = if single_qps > 0.0 { cluster_qps / single_qps } else { 0.0 };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // 1-core physics: a single core timeslicing three processes cannot
    // show a parallel speedup, only protocol correctness — the ratio is
    // recorded but the 1.8x gate needs real cores to mean anything.
    let scaling_gated = cores < 4 || args.followers < 2;
    eprintln!(
        "# replication: single {single_qps:.1} qps, cluster {cluster_qps:.1} qps \
         ({scaling:.2}x, {cores} cores{})",
        if scaling_gated { ", gate waived" } else { "" }
    );
    if !scaling_gated {
        assert!(
            scaling >= 1.8,
            "read scaling {scaling:.2}x with {} followers on {cores} cores (want >= 1.8x)",
            args.followers
        );
    }

    // ---- Phase 4: failover. Ack one more batch and SIGKILL the
    // primary before shipping can be presumed complete; promote; replay
    // the client outbox; verify against the every-batch oracle.
    let killed_at = streamed_to + 1;
    eprintln!("# replication phase 4: SIGKILL primary after acking seq {killed_at}, promote");
    let (flavor, _) = submit(&mut pconn, killed_at, seq_ops(killed_at)).expect("pre-kill ack");
    assert_eq!(flavor, "ok");
    let t_kill = Instant::now();
    drop(pconn);
    primary.sigkill();
    let new_primary = followers.remove(0);
    drop(fconns.remove(0));
    let writable_from =
        replication::promote(&new_primary.repl_addr).expect("promote over the repl port");
    assert!(
        writable_from <= killed_at,
        "promoted above the primary's ack frontier: {writable_from} > {killed_at}"
    );
    let mut conn = new_primary.connect();
    let mut resubmitted = 0u64;
    let mut rededuped = 0u64;
    let mut failover = None;
    for seq in writable_from + 1..=total {
        let (flavor, _) = submit(&mut conn, seq, seq_ops(seq)).expect("outbox replay");
        if failover.is_none() {
            failover = Some(t_kill.elapsed());
        }
        resubmitted += 1;
        if flavor == "deduped" {
            rededuped += 1;
        }
    }
    let failover_ms = failover.unwrap_or_else(|| t_kill.elapsed()).as_millis() as u64;
    eprintln!(
        "# replication: writable from seq {writable_from} in {failover_ms} ms; \
         replayed {resubmitted} ({rededuped} deduped)"
    );

    // ---- Oracle: every batch applied exactly once, all 25 BI queries.
    eprintln!("# replication: verifying 25 BI queries against the every-batch oracle");
    let mut oracle = base_store;
    let world = StaticWorld::build(args.config.seed);
    for ops in &batches {
        match ops {
            WriteOps::Updates(events) => {
                for ev in events {
                    oracle.apply_event(ev, &world).expect("oracle apply");
                }
            }
            WriteOps::Deletes(dels) => {
                oracle.apply_deletes(dels).expect("oracle delete");
            }
        }
    }
    if !oracle.date_index_fresh() {
        oracle.rebuild_date_index();
    }
    oracle.validate_invariants().expect("oracle invariants");
    let gen = ParamGen::new(&oracle, args.config.seed);
    let ctx = QueryContext::single_threaded();
    let mut verified = 0u64;
    let mut mismatches = 0u64;
    for q in 1..=25u8 {
        for params in gen.bi_params(q, 2) {
            let want = snb_bi::run_with(&oracle, &ctx, &params);
            let resp = call(&mut conn, 10_000_000 + verified, total, ServiceParams::Bi(params))
                .expect("verify read");
            verified += 1;
            match resp.body {
                Ok(ok) if ok.rows == want.rows as u64 && ok.fingerprint == want.fingerprint => {}
                Ok(ok) => {
                    mismatches += 1;
                    eprintln!(
                        "REPLICATION VERIFY FAILURE: BI {q}: rows {} fp {:#x}, \
                         oracle rows {} fp {:#x}",
                        ok.rows, ok.fingerprint, want.rows, want.fingerprint
                    );
                }
                Err(e) => {
                    mismatches += 1;
                    eprintln!(
                        "REPLICATION VERIFY FAILURE: BI {q}: {}: {}",
                        e.kind.name(),
                        e.detail
                    );
                }
            }
        }
    }
    drop(conn);
    new_primary.terminate();
    for f in followers {
        f.terminate();
    }
    let _ = std::fs::remove_dir_all(&base_dir);
    assert_eq!(mismatches, 0, "promoted node diverges from the every-batch oracle");

    // ---- Report.
    snb_bench::print_table(
        "E17: replication",
        &[
            "followers",
            "batches",
            "catch-up",
            "lag p99",
            "single qps",
            "cluster qps",
            "scaling",
            "failover",
            "verified",
        ],
        &[vec![
            args.followers.to_string(),
            total.to_string(),
            format!("{} ms", catch_up.iter().map(|(_, ms, _)| *ms).max().unwrap_or(0)),
            format!("{lag_p99} rec"),
            format!("{single_qps:.1}"),
            format!("{cluster_qps:.1}"),
            format!("{scaling:.2}x{}", if scaling_gated { " (gated)" } else { "" }),
            format!("{failover_ms} ms"),
            verified.to_string(),
        ]],
    );

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(&args.config)));
    out.push_str("  \"replication\": {\n");
    out.push_str(&format!(
        "    \"followers\": {}, \"total_batches\": {total}, \"backlog_batches\": {backlog},\n",
        args.followers
    ));
    out.push_str("    \"catch_up\": [\n");
    for (i, (name, ms, stale)) in catch_up.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"node\": \"{name}\", \"ms\": {ms}, \"stale_read_refusals\": {stale}}}{}\n",
            if i + 1 < catch_up.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"lag_records\": {{\"samples\": {}, \"p50\": {lag_p50}, \"p99\": {lag_p99}, \
         \"max\": {lag_max}}},\n",
        lag_samples.len()
    ));
    out.push_str(&format!(
        "    \"read_scaling\": {{\"clients_per_node\": {CLIENTS_PER_NODE}, \
         \"window_us\": {}, \"min_seq\": {streamed_to}, \"single_ok\": {single_ok}, \
         \"single_qps\": {single_qps:.2}, \"cluster_ok\": {cluster_ok}, \
         \"cluster_qps\": {cluster_qps:.2}, \"scaling\": {scaling:.3}, \"cores\": {cores}, \
         \"scaling_gated\": {scaling_gated}, \"stale_reads\": {}}},\n",
        WINDOW.as_micros(),
        single_stale + cluster_stale,
    ));
    out.push_str(&format!(
        "    \"failover\": {{\"killed_at_seq\": {killed_at}, \"writable_from\": {writable_from}, \
         \"failover_ms\": {failover_ms}, \"resubmitted\": {resubmitted}, \
         \"rededuped\": {rededuped}, \"queries_verified\": {verified}, \
         \"mismatches\": {mismatches}}}\n"
    ));
    out.push_str("  }\n}\n");
    std::fs::write(&args.out, out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
    eprintln!(
        "# replication: PASS ({} followers, {total} batches, {failover_ms} ms failover, \
         {verified} queries)",
        args.followers
    );
}
