//! Experiment E12 — service-layer load generation against `snb-server`.
//!
//! Drives the query service with curated BI bindings in closed-loop
//! (each client issues its next request when the previous one answers)
//! or open-loop (`--open --rate R`: requests fire on a fixed schedule
//! regardless of completions, so queueing is visible as latency)
//! mode, and emits `BENCH_service.json` with the latency distribution,
//! offered vs achieved throughput, and the shed / deadline-miss
//! counters from the server's admission control.
//!
//! ```text
//! service_load [SF] [SEED] [--clients N] [--duration 10s]
//!              [--open --rate QPS] [--deadline-us N]
//!              [--workers N] [--queue-cap N] [--partitions N] [--profile]
//!              [--queries 2,12,18] [--bindings N]
//!              [--tcp | --connect HOST:PORT]
//!              [--updates] [--exercise-edges] [--retries N]
//!              [--wal-bench] [--loading] [--chaos [--server-bin PATH]]
//!              [--replication [--followers N]] [--split-brain]
//!              [--interference] [--out PATH]
//!              [--sweep] [--sweep-levels 1,2,...,1024] [--sweep-duration 2s]
//! ```
//!
//! Default transport is in-process (deterministic); `--tcp` drives the
//! same in-process server over loopback TCP; `--connect` targets an
//! externally started `snb-server`. Without `--updates`, every `ok`
//! response is verified against an in-process power-run oracle (same
//! store, same bindings, single-threaded context) — any fingerprint
//! divergence is a hard failure. `--updates` replays the update stream
//! (inserts plus interleaved like-deletes) through the server's write
//! path while clients read. `--exercise-edges` appends two bursts after
//! the measured window: a pipelined overload burst that must shed, and
//! a tiny-deadline burst that must miss deadlines.
//!
//! `--retries N` arms capped-exponential-backoff/full-jitter retries
//! (N attempts total) on transient rejections (`overloaded`,
//! `shutting_down`). `--wal-bench` measures write-batch ack latency
//! through the durable write path with `fsync_every` 1 vs 64 and adds a
//! `"wal"` block to the JSON. `--chaos` runs the crash-recovery
//! experiment instead of the load window: it spawns `snb-server`
//! (`--server-bin`, default: next to this binary) with a WAL, SIGKILLs
//! it at three injected fault points (torn append, durable-but-unacked
//! append, mid-apply panic), restarts it, resubmits every unacked batch
//! (the server dedupes by sequence number), and finally proves the
//! recovered store answers all 25 BI queries identically to an oracle
//! that applied exactly the acknowledged batches once each.
//!
//! `--loading` runs experiment E19 instead of the load window: the
//! streaming datagen→ingest pipeline with per-entity rows/sec and
//! MB/sec, the packed-vs-`String` string-footprint gate (hard failure
//! below 2×), peak-RSS attribution for the streaming vs materialised
//! builds, and a recovery-time-vs-history-length curve with and
//! without store-image snapshots, oracle-verified (see `loading.rs`).
//!
//! `--replication` runs experiment E17 instead of the load window: it
//! spawns one primary `snb-server` plus `--followers N` follower
//! processes subscribed over the log-shipping port, measures catch-up
//! from a cold WAL, samples replication lag while writes stream,
//! ladders read throughput from the primary alone to the full cluster,
//! then SIGKILLs the primary mid-ship, promotes a follower, resubmits
//! the unacked suffix, and proves the promoted node answers all 25 BI
//! queries identically to an every-batch oracle (see `replication.rs`).
//!
//! `--split-brain` runs experiment E18 instead of the load window: it
//! spawns a primary armed with a deterministic `net.partition` fault
//! plus two followers, black-holes the primary mid-traffic, promotes a
//! follower (which durably bumps the fencing epoch and announces itself
//! to its siblings), keeps driving writes at *both* nodes, heals the
//! partition, and asserts the zombie acked zero post-promotion writes,
//! no acked write was lost, the surviving follower re-subscribed
//! without operator help, and the new primary answers all 25 BI
//! queries identically to an every-batch oracle (see `split_brain.rs`).
//!
//! `--interference` runs experiment E15 instead of the plain load
//! window: two identical closed-loop read windows against the same
//! server, first write-free (the baseline), then with a writer
//! publishing store versions, and emits both latency curves plus the
//! version-publish counters so the read-p99 cost of concurrent writes
//! is measured, not assumed (see `interference.rs`).
//!
//! `--sweep` runs experiment E16 instead of the plain load window: a
//! connection-count ladder (default 1 → 1024 concurrent TCP
//! connections, one outstanding request each) against the
//! reactor-backed server, with an 80/20 short-read/heavy-BI mix. Each
//! level reports QPS, latency percentiles, error rate, and the
//! per-lane served/shed breakdown; a final BI-flood phase pins the
//! starvation guarantee (zero short-read sheds while the heavy lane is
//! saturated). See `sweep.rs`.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snb_bi::{BiParams, QuerySummary};
use snb_datagen::GeneratorConfig;
use snb_engine::QueryContext;
use snb_params::ParamGen;
use snb_server::proto::{self, Request};
use snb_server::{
    ErrorKind, Response, RetryPolicy, Server, ServerConfig, ServiceParams, ServiceReport,
};
use snb_store::DeleteOp;

mod chaos;
mod interference;
mod loading;
mod replication;
mod split_brain;
mod sweep;
mod wal_bench;

#[derive(Clone)]
struct Args {
    config: GeneratorConfig,
    scale: String,
    clients: usize,
    duration: Duration,
    open: bool,
    rate: f64,
    deadline_us: u64,
    queries: Vec<u8>,
    bindings_per_query: usize,
    tcp: bool,
    connect: Option<String>,
    updates: bool,
    exercise_edges: bool,
    retries: u32,
    wal_bench: bool,
    loading: bool,
    chaos: bool,
    replication: bool,
    split_brain: bool,
    followers: usize,
    interference: bool,
    sweep: bool,
    sweep_levels: Vec<usize>,
    sweep_duration: Duration,
    server_bin: Option<String>,
    server: ServerConfig,
    out: String,
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let t = s.trim();
    if let Some(ms) = t.strip_suffix("ms") {
        return ms.parse::<u64>().map(Duration::from_millis).map_err(|e| e.to_string());
    }
    let secs = t.strip_suffix('s').unwrap_or(t);
    secs.parse::<f64>().map(Duration::from_secs_f64).map_err(|e| e.to_string())
}

fn parse_args() -> Result<Args, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut args = Args {
        config: GeneratorConfig::for_scale_name("0.01").unwrap(),
        scale: "0.01".into(),
        clients: 8,
        duration: Duration::from_secs(10),
        open: false,
        rate: 0.0,
        deadline_us: 0,
        queries: (1..=25).collect(),
        bindings_per_query: 4,
        tcp: false,
        connect: None,
        updates: false,
        exercise_edges: false,
        retries: 0,
        wal_bench: false,
        loading: false,
        chaos: false,
        replication: false,
        split_brain: false,
        followers: 2,
        interference: false,
        sweep: false,
        sweep_levels: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
        sweep_duration: Duration::from_secs(2),
        server_bin: None,
        server: ServerConfig { threads_per_worker: 1, ..ServerConfig::default() },
        out: std::env::var("SNB_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".into()),
    };
    let mut argv = std::env::args().skip(1);
    let need = |name: &str, v: Option<String>| v.ok_or_else(|| format!("{name} needs a value"));
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--clients" => {
                args.clients =
                    need("--clients", argv.next())?.parse().map_err(|e| format!("{e}"))?
            }
            "--duration" => args.duration = parse_duration(&need("--duration", argv.next())?)?,
            "--open" => args.open = true,
            "--rate" => {
                args.rate = need("--rate", argv.next())?.parse().map_err(|e| format!("{e}"))?
            }
            "--deadline-us" => {
                args.deadline_us =
                    need("--deadline-us", argv.next())?.parse().map_err(|e| format!("{e}"))?
            }
            "--queries" => {
                args.queries = need("--queries", argv.next())?
                    .split(',')
                    .map(|q| q.trim().parse::<u8>().map_err(|e| format!("--queries: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.queries.iter().any(|&q| q == 0 || q > 25) {
                    return Err("--queries entries must be in 1..=25".into());
                }
            }
            "--bindings" => {
                args.bindings_per_query =
                    need("--bindings", argv.next())?.parse().map_err(|e| format!("{e}"))?
            }
            "--tcp" => args.tcp = true,
            "--connect" => args.connect = Some(need("--connect", argv.next())?),
            "--updates" => args.updates = true,
            "--exercise-edges" => args.exercise_edges = true,
            "--retries" => {
                args.retries =
                    need("--retries", argv.next())?.parse().map_err(|e| format!("{e}"))?
            }
            "--wal-bench" => args.wal_bench = true,
            "--loading" => args.loading = true,
            "--chaos" => args.chaos = true,
            "--replication" => args.replication = true,
            "--split-brain" => args.split_brain = true,
            "--followers" => {
                args.followers =
                    need("--followers", argv.next())?.parse().map_err(|e| format!("{e}"))?;
                if args.followers == 0 {
                    return Err("--followers needs at least one follower".into());
                }
            }
            "--interference" => args.interference = true,
            "--sweep" => args.sweep = true,
            "--sweep-levels" => {
                args.sweep_levels = need("--sweep-levels", argv.next())?
                    .split(',')
                    .map(|l| l.trim().parse::<usize>().map_err(|e| format!("--sweep-levels: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.sweep_levels.is_empty() || args.sweep_levels.contains(&0) {
                    return Err("--sweep-levels needs positive connection counts".into());
                }
            }
            "--sweep-duration" => {
                args.sweep_duration = parse_duration(&need("--sweep-duration", argv.next())?)?
            }
            "--server-bin" => args.server_bin = Some(need("--server-bin", argv.next())?),
            "--workers" => {
                args.server.workers =
                    need("--workers", argv.next())?.parse().map_err(|e| format!("{e}"))?
            }
            "--queue-cap" => {
                args.server.queue_capacity =
                    need("--queue-cap", argv.next())?.parse().map_err(|e| format!("{e}"))?
            }
            "--partitions" => {
                args.server.partitions = need("--partitions", argv.next())?
                    .parse::<usize>()
                    .map_err(|e| format!("{e}"))?
                    .max(1)
            }
            "--profile" => args.server.profiling = true,
            "--out" => args.out = need("--out", argv.next())?,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => positionals.push(other.to_string()),
        }
    }
    if let Some(sf) = positionals.first() {
        args.config = GeneratorConfig::for_scale_name(sf)
            .ok_or_else(|| format!("unknown scale factor {sf:?}"))?;
        args.scale = sf.clone();
    }
    if let Some(seed) = positionals.get(1) {
        args.config.seed = seed.parse().map_err(|e| format!("seed: {e}"))?;
    }
    if args.open && args.rate <= 0.0 {
        return Err("--open requires --rate QPS".into());
    }
    if args.connect.is_some() && (args.updates || args.tcp) {
        return Err("--connect is exclusive with --tcp/--updates (no server handle)".into());
    }
    if args.interference && (args.tcp || args.connect.is_some() || args.updates || args.open) {
        return Err("--interference drives its own in-process windows (no --tcp/--connect/--updates/--open)".into());
    }
    if args.replication && (args.tcp || args.connect.is_some() || args.updates || args.open) {
        return Err(
            "--replication spawns its own server processes (no --tcp/--connect/--updates/--open)"
                .into(),
        );
    }
    if args.split_brain && (args.tcp || args.connect.is_some() || args.updates || args.open) {
        return Err(
            "--split-brain spawns its own server processes (no --tcp/--connect/--updates/--open)"
                .into(),
        );
    }
    if args.sweep && (args.tcp || args.connect.is_some() || args.updates || args.open) {
        return Err(
            "--sweep drives its own TCP connection ladder (no --tcp/--connect/--updates/--open)"
                .into(),
        );
    }
    // `--partitions` defaults to `$SNB_PARTITIONS` like the bench and
    // server binaries.
    if args.server.partitions <= 1 {
        args.server.partitions = snb_bench::partitions_resolved();
    }
    Ok(args)
}

/// One client's transport to the service.
enum Transport {
    InProc(snb_server::InProcClient),
    Tcp(TcpStream),
}

impl Transport {
    fn call(
        &mut self,
        id: u64,
        params: ServiceParams,
        deadline_us: u64,
    ) -> Result<Response, String> {
        match self {
            Transport::InProc(c) => Ok(c.call(params, deadline_us)),
            Transport::Tcp(stream) => {
                let req = Request { id, deadline_us, min_seq: 0, params };
                proto::write_frame(stream, &proto::encode_request(&req))
                    .map_err(|e| format!("write: {e}"))?;
                let payload = proto::read_frame(stream).map_err(|e| format!("read: {e}"))?;
                let resp = proto::decode_response(&payload)
                    .map_err(|e| format!("decode: {}", e.detail))?;
                if resp.id != id {
                    return Err(format!("correlation mismatch: sent {id}, got {}", resp.id));
                }
                Ok(resp)
            }
        }
    }

    /// [`Transport::call`] with capped-exponential-backoff/full-jitter
    /// retries on transient rejections. Works uniformly over both
    /// transports; the request is re-sent verbatim (reads are
    /// idempotent, writes are deduplicated by sequence number).
    /// Terminal-with-redirect refusals (`not_primary`, `fenced`) that
    /// carry a `(primary=HOST:PORT)` hint are followed automatically on
    /// the TCP transport: reconnect to the carried target and resubmit
    /// the same request — the seq-dedupe gate absorbs a duplicate write
    /// if the original actually applied. Bounded to two hops so a
    /// misconfigured redirect loop cannot spin forever.
    fn call_with_retries(
        &mut self,
        id: u64,
        params: ServiceParams,
        deadline_us: u64,
        policy: RetryPolicy,
    ) -> Result<Response, String> {
        let mut backoff = snb_server::retry::Backoff::new(policy);
        let mut hops = 0u32;
        loop {
            let resp = self.call(id, params.clone(), deadline_us)?;
            let redirect: Option<String> = match &resp.body {
                Err(e) if matches!(e.kind, ErrorKind::NotPrimary | ErrorKind::Fenced) => {
                    snb_server::retry::redirect_target(&e.detail).map(str::to_string)
                }
                _ => None,
            };
            if let Some(target) = redirect {
                if hops < 2 {
                    if let Transport::Tcp(stream) = self {
                        if let Ok(s) = TcpStream::connect(&target) {
                            let _ = s.set_nodelay(true);
                            let _ = s.set_read_timeout(stream.read_timeout().ok().flatten());
                            *stream = s;
                            hops += 1;
                            continue;
                        }
                    }
                }
                return Ok(resp);
            }
            match &resp.body {
                Err(e) if snb_server::retry::retryable(e.kind) && backoff.attempts_left() => {
                    std::thread::sleep(backoff.next_delay());
                }
                _ => return Ok(resp),
            }
        }
    }
}

#[derive(Default)]
struct ClientStats {
    latencies_us: Vec<u64>,
    issued: u64,
    ok: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    deadline_overrun: u64,
    shutting_down: u64,
    bad_request: u64,
    internal: u64,
    store_poisoned: u64,
    not_primary: u64,
    stale_read: u64,
    fenced: u64,
    protocol_errors: u64,
    verify_failures: u64,
}

impl ClientStats {
    fn absorb(&mut self, other: ClientStats) {
        self.latencies_us.extend(other.latencies_us);
        self.issued += other.issued;
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.deadline_exceeded += other.deadline_exceeded;
        self.deadline_overrun += other.deadline_overrun;
        self.shutting_down += other.shutting_down;
        self.bad_request += other.bad_request;
        self.internal += other.internal;
        self.store_poisoned += other.store_poisoned;
        self.not_primary += other.not_primary;
        self.stale_read += other.stale_read;
        self.fenced += other.fenced;
        self.protocol_errors += other.protocol_errors;
        self.verify_failures += other.verify_failures;
    }

    fn note(&mut self, resp: &Response, latency_us: u64, oracle: Option<&QuerySummary>) {
        match &resp.body {
            Ok(ok) => {
                self.ok += 1;
                self.latencies_us.push(latency_us);
                if let Some(want) = oracle {
                    if ok.rows as usize != want.rows || ok.fingerprint != want.fingerprint {
                        self.verify_failures += 1;
                        eprintln!(
                            "VERIFY FAILURE: rows {} fp {:#x}, oracle rows {} fp {:#x}",
                            ok.rows, ok.fingerprint, want.rows, want.fingerprint
                        );
                    }
                }
            }
            Err(e) => match e.kind {
                ErrorKind::Overloaded => self.overloaded += 1,
                ErrorKind::DeadlineExceeded => self.deadline_exceeded += 1,
                ErrorKind::DeadlineOverrun => self.deadline_overrun += 1,
                ErrorKind::ShuttingDown => self.shutting_down += 1,
                ErrorKind::BadRequest => self.bad_request += 1,
                ErrorKind::Internal => self.internal += 1,
                ErrorKind::StorePoisoned => self.store_poisoned += 1,
                ErrorKind::NotPrimary => self.not_primary += 1,
                ErrorKind::StaleRead => self.stale_read += 1,
                ErrorKind::Fenced => self.fenced += 1,
            },
        }
    }
}

/// Deterministic per-client binding order (splitmix-style).
struct BindingPicker {
    state: u64,
    len: usize,
}

impl BindingPicker {
    fn new(seed: u64, client: usize, len: usize) -> Self {
        BindingPicker { state: seed ^ (client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15), len }
    }

    fn next(&mut self) -> usize {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.state >> 33) as usize) % self.len
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("service_load: {e}");
            std::process::exit(2);
        }
    };

    if args.loading {
        loading::run(&args);
        return;
    }
    if args.chaos {
        chaos::run(&args);
        return;
    }
    if args.replication {
        replication::run(&args);
        return;
    }
    if args.split_brain {
        split_brain::run(&args);
        return;
    }
    if args.interference {
        interference::run(&args);
        return;
    }
    if args.sweep {
        sweep::run(&args);
        return;
    }

    // Build the dataset once: the store feeds the server, the stream
    // feeds the optional update replay, and the bindings + oracle are
    // derived before the server takes ownership.
    eprintln!("# building store: {} persons (seed {}) ...", args.config.persons, args.config.seed);
    let (store, stream) = snb_store::bulk_store_and_stream(&args.config);
    let pool: Vec<(u8, BiParams)> = {
        let gen = ParamGen::new(&store, args.config.seed);
        args.queries
            .iter()
            .flat_map(|&q| {
                gen.bi_params(q, args.bindings_per_query).into_iter().map(move |p| (q, p))
            })
            .collect()
    };
    assert!(!pool.is_empty(), "no bindings generated");

    // Oracle: one in-process single-threaded run per binding. Skipped
    // under --updates (the store moves) and --connect (remote store).
    let oracle: Option<Vec<QuerySummary>> = if args.updates || args.connect.is_some() {
        None
    } else {
        eprintln!("# computing power-run oracle for {} bindings ...", pool.len());
        let ctx = QueryContext::single_threaded();
        Some(pool.iter().map(|(_, p)| snb_bi::run_with(&store, &ctx, p)).collect())
    };

    // Start (or connect to) the service.
    let mut server: Option<Server> = None;
    let mut tcp_addr: Option<std::net::SocketAddr> = None;
    if args.connect.is_none() {
        let mut s = Server::start(store, args.server.clone());
        if args.tcp || args.exercise_edges {
            tcp_addr = Some(s.listen("127.0.0.1:0").expect("bind loopback"));
        }
        server = Some(s);
    } else {
        drop(store);
    }

    let make_transport = |client: usize| -> Transport {
        if let Some(addr) = &args.connect {
            let stream = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("client {client}: connect {addr}: {e}"));
            let _ = stream.set_nodelay(true);
            Transport::Tcp(stream)
        } else if args.tcp {
            let stream = TcpStream::connect(tcp_addr.unwrap()).expect("connect loopback");
            let _ = stream.set_nodelay(true);
            Transport::Tcp(stream)
        } else {
            Transport::InProc(server.as_ref().unwrap().client())
        }
    };

    // Optional concurrent update replay through the server write path:
    // inserts in stream order, plus a like-delete for every other
    // previously applied like (no later event depends on a like, so
    // deletes never orphan subsequent inserts).
    let stop_writer = Arc::new(AtomicU64::new(0));
    let writer_handle = if args.updates {
        let writer = server.as_ref().unwrap().writer();
        let world = snb_datagen::dictionaries::StaticWorld::build(args.config.seed);
        let stop = Arc::clone(&stop_writer);
        let pace = args.duration.div_f64((stream.len().max(1)) as f64);
        Some(std::thread::spawn(move || {
            // Batched replay: one published store version per chunk
            // keeps the copy-on-write cost amortized while readers stay
            // on their pinned snapshots throughout.
            const CHUNK: usize = 48;
            let mut pending_likes: Vec<DeleteOp> = Vec::new();
            'replay: for (c, chunk) in stream.chunks(CHUNK).enumerate() {
                if stop.load(Ordering::Acquire) != 0 {
                    break 'replay;
                }
                for (i, event) in chunk.iter().enumerate() {
                    if let snb_datagen::stream::UpdateEvent::AddLikePost(like) = &event.event {
                        if (c * CHUNK + i).is_multiple_of(2) {
                            pending_likes.push(DeleteOp::Like(like.person.0, like.message.0));
                        }
                    }
                }
                writer.apply_update_batch(chunk, &world).expect("update apply");
                if pending_likes.len() >= 32 {
                    writer.apply_deletes(&pending_likes).expect("delete apply");
                    pending_likes.clear();
                }
                if pace > Duration::ZERO {
                    std::thread::sleep((pace * CHUNK as u32).min(Duration::from_millis(20)));
                }
            }
            if !pending_likes.is_empty() {
                writer.apply_deletes(&pending_likes).expect("delete apply");
            }
            writer.validate_invariants().expect("store invariants after replay");
        }))
    } else {
        None
    };

    // The measured window.
    eprintln!(
        "# driving {} client(s) for {:?} ({} loop) ...",
        args.clients,
        args.duration,
        if args.open { "open" } else { "closed" }
    );
    let started = Instant::now();
    let end = started + args.duration;
    let handles: Vec<std::thread::JoinHandle<ClientStats>> = (0..args.clients)
        .map(|client| {
            let mut transport = make_transport(client);
            let pool = pool.clone();
            let oracle = oracle.clone();
            let args = args.clone();
            std::thread::spawn(move || {
                let mut stats = ClientStats::default();
                let mut picker = BindingPicker::new(args.config.seed, client, pool.len());
                let mut next_id: u64 = (client as u64) << 32;
                // Open loop: this client's share of the offered rate.
                let interarrival = if args.open {
                    Duration::from_secs_f64(args.clients as f64 / args.rate)
                } else {
                    Duration::ZERO
                };
                let mut next_fire = Instant::now();
                loop {
                    let now = Instant::now();
                    if now >= end {
                        break;
                    }
                    if args.open {
                        if next_fire > now {
                            std::thread::sleep(next_fire - now);
                        }
                        next_fire += interarrival;
                        if Instant::now() >= end {
                            break;
                        }
                    }
                    let bidx = picker.next();
                    let (_, params) = &pool[bidx];
                    next_id += 1;
                    stats.issued += 1;
                    let t0 = Instant::now();
                    let call = if args.retries > 1 {
                        transport.call_with_retries(
                            next_id,
                            ServiceParams::Bi(params.clone()),
                            args.deadline_us,
                            RetryPolicy {
                                max_attempts: args.retries,
                                seed: args.config.seed ^ (client as u64),
                                ..RetryPolicy::default()
                            },
                        )
                    } else {
                        transport.call(next_id, ServiceParams::Bi(params.clone()), args.deadline_us)
                    };
                    match call {
                        Ok(resp) => {
                            let latency_us = t0.elapsed().as_micros() as u64;
                            stats.note(&resp, latency_us, oracle.as_ref().map(|o| &o[bidx]));
                        }
                        Err(detail) => {
                            stats.protocol_errors += 1;
                            eprintln!("client {client}: protocol error: {detail}");
                        }
                    }
                }
                stats
            })
        })
        .collect();

    let mut total = ClientStats::default();
    for h in handles {
        total.absorb(h.join().expect("client thread"));
    }
    let wall = started.elapsed();
    stop_writer.store(1, Ordering::Release);
    if let Some(h) = writer_handle {
        h.join().expect("writer thread");
    }

    // Edge-case bursts (after the measured window, so they do not
    // pollute the latency distribution).
    let mut burst_shed = 0u64;
    let mut burst_deadline_missed = 0u64;
    if args.exercise_edges {
        let addr = tcp_addr
            .map(|a| a.to_string())
            .or_else(|| args.connect.clone())
            .expect("edge bursts need a TCP endpoint");
        let (shed, missed) = exercise_edges(&addr, &pool);
        burst_shed = shed;
        burst_deadline_missed = missed;
        eprintln!("# edge bursts: {burst_shed} shed, {burst_deadline_missed} deadline-missed");
    }

    // Shut the server down (drain) and collect its side of the story.
    let server_report: Option<ServiceReport> = server.map(|s| s.shutdown());

    total.latencies_us.sort_unstable();
    let lat = &total.latencies_us;
    let mean_us = if lat.is_empty() { 0 } else { lat.iter().sum::<u64>() / lat.len() as u64 };
    let offered_qps = total.issued as f64 / wall.as_secs_f64();
    let achieved_qps = total.ok as f64 / wall.as_secs_f64();

    snb_bench::print_table(
        "E12: service load",
        &["clients", "issued", "ok", "shed", "deadline", "p50", "p95", "p99", "achieved qps"],
        &[vec![
            args.clients.to_string(),
            total.issued.to_string(),
            total.ok.to_string(),
            total.overloaded.to_string(),
            total.deadline_exceeded.to_string(),
            snb_bench::fmt_duration(Duration::from_micros(percentile(lat, 0.50))),
            snb_bench::fmt_duration(Duration::from_micros(percentile(lat, 0.95))),
            snb_bench::fmt_duration(Duration::from_micros(percentile(lat, 0.99))),
            format!("{achieved_qps:.1}"),
        ]],
    );

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(&args.config)));
    out.push_str(&format!(
        "  \"config\": {{\"clients\": {}, \"duration_us\": {}, \"mode\": \"{}\", \
         \"rate_qps\": {:.2}, \"deadline_us\": {}, \"transport\": \"{}\", \"workers\": {}, \
         \"queue_capacity\": {}, \"partitions\": {}, \"updates\": {}, \"bindings\": {}}},\n",
        args.clients,
        args.duration.as_micros(),
        if args.open { "open" } else { "closed" },
        args.rate,
        args.deadline_us,
        if args.connect.is_some() {
            "connect"
        } else if args.tcp {
            "tcp"
        } else {
            "inproc"
        },
        args.server.workers,
        args.server.queue_capacity,
        args.server.partitions,
        args.updates,
        pool.len(),
    ));
    out.push_str(&format!(
        "  \"latency_us\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \
         \"p99\": {}, \"max\": {}}},\n",
        lat.len(),
        mean_us,
        percentile(lat, 0.50),
        percentile(lat, 0.95),
        percentile(lat, 0.99),
        lat.last().copied().unwrap_or(0),
    ));
    out.push_str(&format!(
        "  \"throughput\": {{\"offered\": {}, \"offered_qps\": {:.2}, \"achieved_qps\": {:.2}, \
         \"wall_us\": {}}},\n",
        total.issued,
        offered_qps,
        achieved_qps,
        wall.as_micros(),
    ));
    out.push_str(&format!(
        "  \"outcomes\": {{\"ok\": {}, \"shed\": {}, \"deadline_missed\": {}, \
         \"deadline_overrun\": {}, \"shutting_down\": {}, \"bad_request\": {}, \"internal\": {}, \
         \"store_poisoned\": {}, \"not_primary\": {}, \"stale_read\": {}, \"fenced\": {}, \
         \"protocol_errors\": {}, \"verify_failures\": {}, \
         \"burst_shed\": {}, \"burst_deadline_missed\": {}}}",
        total.ok,
        total.overloaded + burst_shed,
        total.deadline_exceeded + burst_deadline_missed,
        total.deadline_overrun,
        total.shutting_down,
        total.bad_request,
        total.internal,
        total.store_poisoned,
        total.not_primary,
        total.stale_read,
        total.fenced,
        total.protocol_errors,
        total.verify_failures,
        burst_shed,
        burst_deadline_missed,
    ));
    if let Some(r) = &server_report {
        out.push_str(&format!(
            ",\n  \"server\": {{\"served\": {}, \"shed\": {}, \"deadline_missed\": {}, \
             \"deadline_overrun\": {}, \"served_by_lane\": [{}, {}, {}], \
             \"shed_by_lane\": [{}, {}, {}], \
             \"rejected_shutdown\": {}, \"bad_requests\": {}, \"internal_errors\": {}, \
             \"updates_applied\": {}, \"deletes_applied\": {}, \"log_records\": {}, \
             \"batches_applied\": {}, \"batches_deduped\": {}, \"poisoned_rejects\": {}, \
             \"not_primary_rejects\": {}, \"stale_read_rejects\": {}, \"fenced_rejects\": {}, \
             \"conn_stalled\": {}, \"store_version\": {}, \"versions_published\": {}, \
             \"peak_live_snapshots\": {}, \"reader_retries\": {}, \"reader_blocked\": {}}}",
            r.served,
            r.shed,
            r.deadline_missed,
            r.deadline_overrun,
            r.served_by_lane[0],
            r.served_by_lane[1],
            r.served_by_lane[2],
            r.shed_by_lane[0],
            r.shed_by_lane[1],
            r.shed_by_lane[2],
            r.rejected_shutdown,
            r.bad_requests,
            r.internal_errors,
            r.updates_applied,
            r.deletes_applied,
            r.log_records,
            r.batches_applied,
            r.batches_deduped,
            r.poisoned_rejects,
            r.not_primary_rejects,
            r.stale_read_rejects,
            r.fenced_rejects,
            r.conn_stalled,
            r.versions_published,
            r.versions_published,
            r.peak_live_snapshots,
            r.reader_retries,
            r.reader_blocked,
        ));
    }
    if args.wal_bench {
        eprintln!("# measuring WAL ack-latency overhead ...");
        out.push_str(",\n");
        out.push_str(&wal_bench::run(&args));
    }
    out.push_str("\n}\n");
    std::fs::write(&args.out, out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);

    if total.protocol_errors > 0 || total.verify_failures > 0 {
        eprintln!(
            "service_load: FAILED ({} protocol errors, {} verify failures)",
            total.protocol_errors, total.verify_failures
        );
        std::process::exit(1);
    }
}

/// The two overload edges, exercised via a pipelined TCP connection:
/// a burst far larger than the queue must shed (not buffer without
/// bound), and a burst of microsecond deadlines must miss (not hang).
fn exercise_edges(addr: &str, pool: &[(u8, BiParams)]) -> (u64, u64) {
    let count_kind = |responses: &[Response], kind: ErrorKind| {
        responses.iter().filter(|r| matches!(&r.body, Err(e) if e.kind == kind)).count() as u64
    };
    let pipelined_burst = |n: usize, deadline_us: u64| -> Vec<Response> {
        let mut conn = TcpStream::connect(addr).expect("edge burst connect");
        let _ = conn.set_nodelay(true);
        for i in 0..n {
            let (_, params) = &pool[i % pool.len()];
            let req = Request {
                id: i as u64 + 1,
                deadline_us,
                min_seq: 0,
                params: ServiceParams::Bi(params.clone()),
            };
            proto::write_frame(&mut conn, &proto::encode_request(&req)).expect("burst write");
        }
        (0..n)
            .map(|_| {
                let payload = proto::read_frame(&mut conn).expect("burst read");
                proto::decode_response(&payload).expect("burst decode")
            })
            .collect()
    };

    let overload = pipelined_burst(512, 0);
    let shed = count_kind(&overload, ErrorKind::Overloaded);
    let deadline = pipelined_burst(64, 1);
    // A 1µs deadline either expires in the queue (`deadline_exceeded`)
    // or — if the job is dequeued inside the window — is caught by the
    // completion-time check (`deadline_overrun`). Both count as missed.
    let missed = count_kind(&deadline, ErrorKind::DeadlineExceeded)
        + count_kind(&deadline, ErrorKind::DeadlineOverrun);
    (shed, missed)
}
