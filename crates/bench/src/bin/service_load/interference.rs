//! `--interference`: experiment E15 — read-latency cost of concurrent
//! writes on the snapshot-published store.
//!
//! Two identical closed-loop read windows run against the same
//! in-process server:
//!
//! 1. **baseline** — reads only; results are verified per request
//!    against the power-run oracle (the store is quiescent).
//! 2. **with_writes** — the same read load while a writer replays the
//!    update stream (inserts plus interleaved like-deletes) through
//!    the snapshot write path, one published store version per batch.
//!
//! On a lock-free read path the second window's p99 should sit close
//! to the first — readers pin a version at admission and never wait
//! for the writer — so the emitted `"interference"` block carries both
//! latency curves, their p99 ratio, and the version-publish counters
//! (`versions_published`, `peak_live_snapshots`, `reader_retries`,
//! `reader_blocked`). CI asserts `reader_blocked == 0`: a reader that
//! ever had to yield means the read path regressed to blocking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snb_bi::{BiParams, QuerySummary};
use snb_engine::QueryContext;
use snb_params::ParamGen;
use snb_server::{Server, ServiceParams};
use snb_store::DeleteOp;

use crate::{percentile, Args, BindingPicker, ClientStats};

/// Update events per published version during the write window.
const WRITE_BATCH: usize = 48;

/// One closed-loop read window against the running server.
fn drive_window(
    server: &Server,
    args: &Args,
    pool: &[(u8, BiParams)],
    oracle: Option<&[QuerySummary]>,
    label: &str,
) -> (ClientStats, Duration) {
    eprintln!("# {label}: {} client(s) for {:?} ...", args.clients, args.duration);
    let started = Instant::now();
    let end = started + args.duration;
    let mut total = ClientStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client| {
                let client_conn = server.client();
                scope.spawn(move || {
                    let mut stats = ClientStats::default();
                    let mut picker = BindingPicker::new(args.config.seed, client, pool.len());
                    while Instant::now() < end {
                        let bidx = picker.next();
                        let (_, params) = &pool[bidx];
                        stats.issued += 1;
                        let t0 = Instant::now();
                        let resp =
                            client_conn.call(ServiceParams::Bi(params.clone()), args.deadline_us);
                        let latency_us = t0.elapsed().as_micros() as u64;
                        stats.note(&resp, latency_us, oracle.map(|o| &o[bidx]));
                    }
                    stats
                })
            })
            .collect();
        for h in handles {
            total.absorb(h.join().expect("interference client"));
        }
    });
    (total, started.elapsed())
}

fn latency_json(stats: &ClientStats) -> String {
    let lat = &stats.latencies_us;
    let mean = if lat.is_empty() { 0 } else { lat.iter().sum::<u64>() / lat.len() as u64 };
    format!(
        "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
        lat.len(),
        mean,
        percentile(lat, 0.50),
        percentile(lat, 0.95),
        percentile(lat, 0.99),
        lat.last().copied().unwrap_or(0),
    )
}

pub fn run(args: &Args) {
    eprintln!("# building store: {} persons (seed {}) ...", args.config.persons, args.config.seed);
    let (store, stream) = snb_store::bulk_store_and_stream(&args.config);
    let pool: Vec<(u8, BiParams)> = {
        let gen = ParamGen::new(&store, args.config.seed);
        args.queries
            .iter()
            .flat_map(|&q| {
                gen.bi_params(q, args.bindings_per_query).into_iter().map(move |p| (q, p))
            })
            .collect()
    };
    assert!(!pool.is_empty(), "no bindings generated");
    let oracle: Vec<QuerySummary> = {
        let ctx = QueryContext::single_threaded();
        pool.iter().map(|(_, p)| snb_bi::run_with(&store, &ctx, p)).collect()
    };

    let server = Server::start(store, args.server.clone());

    // Window 1: write-free baseline, oracle-verified.
    let (baseline, base_wall) = drive_window(&server, args, &pool, Some(&oracle), "baseline");
    let stats_after_baseline = server.snapshot_stats();
    assert_eq!(stats_after_baseline.version, 0, "baseline window must not publish store versions");

    // Window 2: the same read load with the writer publishing versions.
    let stop = Arc::new(AtomicU64::new(0));
    let writer_handle = {
        let writer = server.writer();
        let world = snb_datagen::dictionaries::StaticWorld::build(args.config.seed);
        let stop = Arc::clone(&stop);
        let stream = stream.clone();
        // Pace the replay across the whole window so writes stay live
        // for every read, not just the first slice.
        let pace = args.duration.div_f64(stream.len().max(1) as f64);
        std::thread::spawn(move || {
            let mut pending_likes: Vec<DeleteOp> = Vec::new();
            for (c, chunk) in stream.chunks(WRITE_BATCH).enumerate() {
                if stop.load(Ordering::Acquire) != 0 {
                    break;
                }
                for (i, event) in chunk.iter().enumerate() {
                    if let snb_datagen::stream::UpdateEvent::AddLikePost(like) = &event.event {
                        if (c * WRITE_BATCH + i).is_multiple_of(2) {
                            pending_likes.push(DeleteOp::Like(like.person.0, like.message.0));
                        }
                    }
                }
                writer.apply_update_batch(chunk, &world).expect("interference update apply");
                // Deletes rebuild the partition layout wholesale, so
                // flush them sparsely rather than per batch.
                if pending_likes.len() >= 32 {
                    writer.apply_deletes(&pending_likes).expect("interference delete apply");
                    pending_likes.clear();
                }
                // Spread the replay across the whole window (no cap:
                // the write rate is the experiment's independent
                // variable, and saturating a single core with the
                // writer would measure CPU contention, not the read
                // path).
                if pace > Duration::ZERO {
                    std::thread::sleep(pace * WRITE_BATCH as u32);
                }
            }
            if !pending_likes.is_empty() {
                writer.apply_deletes(&pending_likes).expect("interference delete apply");
            }
            writer.validate_invariants().expect("store invariants after interference replay");
        })
    };
    let (with_writes, write_wall) = drive_window(&server, args, &pool, None, "with_writes");
    stop.store(1, Ordering::Release);
    writer_handle.join().expect("interference writer");

    let report = server.shutdown();
    assert!(report.versions_published > 0, "write window never published a store version");

    let p99_base = percentile(
        &{
            let mut l = baseline.latencies_us.clone();
            l.sort_unstable();
            l
        },
        0.99,
    );
    let p99_writes = percentile(
        &{
            let mut l = with_writes.latencies_us.clone();
            l.sort_unstable();
            l
        },
        0.99,
    );
    let ratio = if p99_base == 0 { 0.0 } else { p99_writes as f64 / p99_base as f64 };

    let mut baseline = baseline;
    let mut with_writes = with_writes;
    baseline.latencies_us.sort_unstable();
    with_writes.latencies_us.sort_unstable();

    snb_bench::print_table(
        "E15: read-latency interference (write-free vs concurrent writes)",
        &["window", "issued", "ok", "p50", "p95", "p99", "achieved qps"],
        &[
            vec![
                "baseline".into(),
                baseline.issued.to_string(),
                baseline.ok.to_string(),
                snb_bench::fmt_duration(Duration::from_micros(percentile(
                    &baseline.latencies_us,
                    0.50,
                ))),
                snb_bench::fmt_duration(Duration::from_micros(percentile(
                    &baseline.latencies_us,
                    0.95,
                ))),
                snb_bench::fmt_duration(Duration::from_micros(p99_base)),
                format!("{:.1}", baseline.ok as f64 / base_wall.as_secs_f64()),
            ],
            vec![
                "with_writes".into(),
                with_writes.issued.to_string(),
                with_writes.ok.to_string(),
                snb_bench::fmt_duration(Duration::from_micros(percentile(
                    &with_writes.latencies_us,
                    0.50,
                ))),
                snb_bench::fmt_duration(Duration::from_micros(percentile(
                    &with_writes.latencies_us,
                    0.95,
                ))),
                snb_bench::fmt_duration(Duration::from_micros(p99_writes)),
                format!("{:.1}", with_writes.ok as f64 / write_wall.as_secs_f64()),
            ],
        ],
    );
    println!(
        "read p99 under writes: {:.2}x baseline ({} versions published, {} peak live, \
         {} reader retries, {} reader blocked)",
        ratio,
        report.versions_published,
        report.peak_live_snapshots,
        report.reader_retries,
        report.reader_blocked,
    );

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(&args.config)));
    out.push_str(&format!(
        "  \"config\": {{\"clients\": {}, \"duration_us\": {}, \"mode\": \"interference\", \
         \"deadline_us\": {}, \"transport\": \"inproc\", \"workers\": {}, \
         \"queue_capacity\": {}, \"partitions\": {}, \"bindings\": {}}},\n",
        args.clients,
        args.duration.as_micros(),
        args.deadline_us,
        args.server.workers,
        args.server.queue_capacity,
        args.server.partitions,
        pool.len(),
    ));
    out.push_str(&format!(
        "  \"interference\": {{\n    \"baseline\": {},\n    \"with_writes\": {},\n    \
         \"read_p99_ratio\": {:.4},\n    \"writes\": {{\"updates_applied\": {}, \
         \"deletes_applied\": {}, \"versions_published\": {}}},\n    \
         \"snapshots\": {{\"store_version\": {}, \"versions_published\": {}, \
         \"peak_live_snapshots\": {}, \"reader_retries\": {}, \"reader_blocked\": {}}}\n  }}\n",
        latency_json(&baseline),
        latency_json(&with_writes),
        ratio,
        report.updates_applied,
        report.deletes_applied,
        report.versions_published,
        report.versions_published,
        report.versions_published,
        report.peak_live_snapshots,
        report.reader_retries,
        report.reader_blocked,
    ));
    out.push_str("}\n");
    std::fs::write(&args.out, out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);

    let failures = baseline.protocol_errors
        + baseline.verify_failures
        + with_writes.protocol_errors
        + with_writes.verify_failures;
    if failures > 0 || baseline.ok == 0 || with_writes.ok == 0 {
        eprintln!(
            "interference: FAILED ({} protocol/verify failures, baseline ok={}, \
             with_writes ok={})",
            failures, baseline.ok, with_writes.ok
        );
        std::process::exit(1);
    }
}
