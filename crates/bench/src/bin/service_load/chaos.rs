//! `--chaos`: the crash-recovery experiment.
//!
//! Spawns a real `snb-server` process with a WAL, drives sequenced
//! write batches at it, and SIGKILLs it at four injected fault points:
//!
//! 1. `wal.append.short_write` — the append tears mid-record. Recovery
//!    must truncate the torn tail; the batch was never durable, so the
//!    resubmission applies it for the first time (`ok`).
//! 2. `wal.append.post_append` — the record is durable (synced) but the
//!    server dies before applying/acking. Recovery must replay it; the
//!    resubmission is acknowledged `deduped` with zero rows.
//! 3. `writer.apply.panic` — the apply panics mid-batch after the
//!    append. The server answers `store_poisoned` (typed, no hang),
//!    refuses further traffic, and after restart the WAL'd batch is
//!    replayed; the resubmission dedupes.
//! 4. `image.write.torn` — with `--image`, the store-image replacement
//!    at a compaction point tears mid-write (temp file abandoned, no
//!    rename). The write is non-fatal, so the server keeps acking; the
//!    SIGKILL then proves recovery falls back to the *previous* intact
//!    image plus the WAL tail — never a torn or lost image.
//!
//! After the last restart the harness quiesces and proves the recovered
//! store answers **all 25 BI queries** with the same row counts and
//! fingerprints as an in-process oracle that applied exactly the
//! acknowledged batches once each. Any lost ack (a batch the server
//! confirmed but the recovered store is missing) or duplicate
//! application (a dedupe that re-applied) shows up as a fingerprint
//! divergence or a non-zero `rows` on a dedupe ack — both are hard
//! failures.
//!
//! Every stall fault here is "sleep forever"; the harness detects the
//! missing ack with a read timeout and delivers the actual SIGKILL via
//! `Child::kill`, so the process dies exactly at the armed point with
//! no destructors run.

use std::io::BufRead;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::UpdateEvent;
use snb_datagen::GeneratorConfig;
use snb_engine::QueryContext;
use snb_params::ParamGen;
use snb_server::proto::{self, Request};
use snb_server::{ErrorKind, Response, ServiceParams, WriteBatch, WriteOps};
use snb_store::DeleteOp;

use crate::Args;

/// How long a client waits for an ack before declaring the server
/// stalled at a fault point and SIGKILLing it. The injected stalls
/// sleep for 600 s, so this cleanly separates "stalled" from "slow".
const ACK_TIMEOUT: Duration = Duration::from_secs(10);

/// Sequenced batches carved from a real update stream: chunks of
/// inserts in stream order, with a like-delete batch interleaved after
/// any chunk that produced likes (both write families hit the WAL).
pub fn carve_stream(stream: &[snb_datagen::stream::TimedEvent], chunks: usize) -> Vec<WriteOps> {
    let mut out = Vec::new();
    let mut likes = Vec::new();
    for chunk in stream.chunks(20).take(chunks) {
        for ev in chunk {
            if let UpdateEvent::AddLikePost(l) = &ev.event {
                likes.push(DeleteOp::Like(l.person.0, l.message.0));
            }
        }
        out.push(WriteOps::Updates(chunk.to_vec()));
        if !likes.is_empty() {
            out.push(WriteOps::Deletes(std::mem::take(&mut likes)));
        }
    }
    out
}

/// [`carve_stream`] over a freshly generated stream for `config`.
pub fn carve_batches(config: &GeneratorConfig, chunks: usize) -> Vec<WriteOps> {
    let (_, stream) = snb_store::bulk_store_and_stream(config);
    carve_stream(&stream, chunks)
}

/// Parsed `recovered seq=...` startup line.
#[derive(Clone, Copy, Debug, Default)]
struct Recovery {
    seq: u64,
    snapshot_entries: u64,
    wal_entries: u64,
    truncated_bytes: u64,
    image_seq: u64,
    tail_replayed: u64,
}

struct ChaosServer {
    child: Child,
    addr: String,
    recovery: Recovery,
}

impl ChaosServer {
    fn spawn(
        args: &Args,
        bin: &str,
        wal_dir: &std::path::Path,
        faults: Option<&str>,
        image: bool,
    ) -> Self {
        let mut cmd = Command::new(bin);
        cmd.arg(&args.scale)
            .arg(args.config.seed.to_string())
            .args(["--port", "0", "--workers", "2", "--snapshot-every", "5", "--partitions", "2"])
            .arg("--wal-dir")
            .arg(wal_dir)
            .env_remove("SNB_FAULTS")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if image {
            cmd.arg("--image");
        }
        if let Some(spec) = faults {
            cmd.env("SNB_FAULTS", spec).env("SNB_FAULT_SEED", "42");
        }
        let mut child = cmd.spawn().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut recovery = Recovery::default();
        let mut addr = None;
        for line in std::io::BufReader::new(stdout).lines() {
            let line = line.expect("server stdout");
            if let Some(rest) = line.strip_prefix("recovered ") {
                for field in rest.split_whitespace() {
                    let (key, value) = field.split_once('=').unwrap_or((field, "0"));
                    let value: u64 = value.parse().unwrap_or(0);
                    match key {
                        "seq" => recovery.seq = value,
                        "snapshot_entries" => recovery.snapshot_entries = value,
                        "wal_entries" => recovery.wal_entries = value,
                        "truncated_bytes" => recovery.truncated_bytes = value,
                        "image_seq" => recovery.image_seq = value,
                        "tail_replayed" => recovery.tail_replayed = value,
                        _ => {}
                    }
                }
            } else if let Some(a) = line.strip_prefix("listening on ") {
                addr = Some(a.trim().to_string());
                break;
            }
        }
        let addr = addr.expect("server exited before printing its address");
        ChaosServer { child, addr, recovery }
    }

    fn connect(&self) -> TcpStream {
        for _ in 0..100 {
            if let Ok(s) = TcpStream::connect(&self.addr) {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(ACK_TIMEOUT));
                return s;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("could not connect to {}", self.addr);
    }

    /// SIGKILL — no drain, no destructors; the crash we are testing.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }

    /// Graceful stop (SIGTERM, drain, exit 0) for the final teardown.
    #[cfg(unix)]
    fn terminate(mut self) {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        unsafe {
            kill(self.child.id() as i32, 15);
        }
        let _ = self.child.wait();
    }

    #[cfg(not(unix))]
    fn terminate(self) {
        self.sigkill();
    }
}

fn call(stream: &mut TcpStream, id: u64, params: ServiceParams) -> Result<Response, String> {
    let req = Request { id, deadline_us: 0, min_seq: 0, params };
    proto::write_frame(stream, &proto::encode_request(&req)).map_err(|e| format!("write: {e}"))?;
    let payload = proto::read_frame(stream).map_err(|e| format!("read: {e}"))?;
    proto::decode_response(&payload).map_err(|e| format!("decode: {}", e.detail))
}

/// Submits batch `seq`; `Ok((flavor, rows))` where flavor is `"ok"`
/// or `"deduped"` (rows must be 0 for the latter), `Err` when the ack
/// never arrived (stall → timeout) or came back as a typed error.
fn submit(stream: &mut TcpStream, seq: u64, ops: &WriteOps) -> Result<(&'static str, u64), String> {
    let params = ServiceParams::Write(WriteBatch { seq, ops: ops.clone() });
    let resp = call(stream, seq, params)?;
    match resp.body {
        // The ack contract: `rows` is the number of operations applied
        // by *this* call — zero exactly when the batch was already
        // applied and the server merely re-acknowledged it.
        Ok(ok) if ok.rows == 0 => Ok(("deduped", 0)),
        Ok(ok) => Ok(("ok", ok.rows)),
        Err(e) => Err(format!("{}: {}", e.kind.name(), e.detail)),
    }
}

struct PhaseOutcome {
    name: &'static str,
    killed_at_seq: u64,
    recovered_seq: u64,
    truncated_bytes: u64,
    resubmit_flavor: &'static str,
}

pub fn run(args: &Args) {
    let bin = args.server_bin.clone().unwrap_or_else(|| {
        let exe = std::env::current_exe().expect("current_exe");
        exe.parent().expect("target dir").join("snb-server").display().to_string()
    });
    assert!(
        std::path::Path::new(&bin).exists(),
        "snb-server binary not found at {bin} (build it or pass --server-bin)"
    );
    let wal_dir = std::env::temp_dir().join(format!("snb_chaos_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);

    eprintln!("# chaos: carving write batches (scale {}, seed {})", args.scale, args.config.seed);
    let (base_store, stream) = snb_store::bulk_store_and_stream(&args.config);
    let batches = carve_stream(&stream, 12);
    // A read binding for probing the degraded server; generated against
    // the bulk image (only the error kind matters, not the result).
    let probe = ParamGen::new(&base_store, args.config.seed)
        .bi_params(1, 1)
        .pop()
        .expect("one BI 1 binding");
    let total = batches.len() as u64;
    // Phases 1-3 burn seqs 1-5; the image phases need >= 5 appends
    // before the first kill (so an image lands at a compaction point)
    // and >= 5 after (so the replacement attempt trips the torn write).
    assert!(total >= 16, "need at least 16 batches for the four phases, got {total}");
    // Everything after this seq exercises the store-image fault.
    let image_drain = total - 5;
    let mut ack_flavor: Vec<Option<&'static str>> = vec![None; batches.len()];
    let mut dedupes = 0u64;
    let mut phases: Vec<PhaseOutcome> = Vec::new();
    let seq_ops = |seq: u64| &batches[(seq - 1) as usize];

    // ---- Phase 1: torn append. The 3rd WAL append writes 8 bytes and
    // stalls; seqs 1-2 are acked, seq 3 is neither durable nor applied.
    eprintln!("# chaos phase 1: SIGKILL at wal.append.short_write (seq 3)");
    let server = ChaosServer::spawn(
        args,
        &bin,
        &wal_dir,
        Some("wal.append.short_write=short:8,stall:600000@h3"),
        false,
    );
    assert_eq!(server.recovery.seq, 0, "fresh directory recovers to the bulk image");
    let mut conn = server.connect();
    for seq in 1..=2u64 {
        let (flavor, _) = submit(&mut conn, seq, seq_ops(seq)).expect("pre-fault ack");
        assert_eq!(flavor, "ok");
        ack_flavor[seq as usize - 1] = Some("ok");
    }
    let stalled = submit(&mut conn, 3, seq_ops(3));
    assert!(stalled.is_err(), "seq 3 must stall at the torn append, got {stalled:?}");
    server.sigkill();

    // ---- Phase 2: restart, verify truncation, resubmit seq 3 (first
    // apply), then die after a durable append of seq 4 (pre-apply).
    eprintln!("# chaos phase 2: recover; SIGKILL at wal.append.post_append (seq 4)");
    let server = ChaosServer::spawn(
        args,
        &bin,
        &wal_dir,
        Some("wal.append.post_append=stall:600000@h2"),
        false,
    );
    // (effects in one clause are comma-separated; `@h2` because the
    // resubmitted seq 3 consumes this fresh process's first append.)
    assert_eq!(server.recovery.seq, 2, "torn seq 3 must not be replayed");
    assert!(server.recovery.truncated_bytes > 0, "the torn tail must be truncated");
    let mut conn = server.connect();
    let (flavor, rows) = submit(&mut conn, 3, seq_ops(3)).expect("resubmit seq 3");
    assert_eq!((flavor, rows > 0), ("ok", true), "seq 3 was never durable: first apply");
    ack_flavor[2] = Some("ok");
    phases.push(PhaseOutcome {
        name: "wal.append.short_write",
        killed_at_seq: 3,
        recovered_seq: server.recovery.seq,
        truncated_bytes: server.recovery.truncated_bytes,
        resubmit_flavor: flavor,
    });
    let stalled = submit(&mut conn, 4, seq_ops(4));
    assert!(stalled.is_err(), "seq 4 must stall after the durable append, got {stalled:?}");
    server.sigkill();

    // ---- Phase 3: restart, seq 4 must have been replayed from the
    // WAL; its resubmission dedupes. Then seq 5 panics mid-apply: the
    // server answers store_poisoned (typed, no hang) and refuses reads.
    eprintln!("# chaos phase 3: recover; SIGKILL after writer.apply.panic (seq 5)");
    let server =
        ChaosServer::spawn(args, &bin, &wal_dir, Some("writer.apply.panic=panic@h1"), false);
    assert_eq!(server.recovery.seq, 4, "durable seq 4 must be replayed, not lost");
    assert_eq!(server.recovery.truncated_bytes, 0, "seq 4's append was clean");
    let mut conn = server.connect();
    let (flavor, rows) = submit(&mut conn, 4, seq_ops(4)).expect("resubmit seq 4");
    assert_eq!((flavor, rows), ("deduped", 0), "durable+replayed seq 4 must dedupe");
    ack_flavor[3] = Some("deduped");
    dedupes += 1;
    phases.push(PhaseOutcome {
        name: "wal.append.post_append",
        killed_at_seq: 4,
        recovered_seq: server.recovery.seq,
        truncated_bytes: server.recovery.truncated_bytes,
        resubmit_flavor: flavor,
    });
    let poisoned = submit(&mut conn, 5, seq_ops(5));
    match &poisoned {
        Err(detail) if detail.starts_with("store_poisoned") => {}
        other => panic!("seq 5 must be refused store_poisoned, got {other:?}"),
    }
    // The degraded store refuses reads too — with a typed error, not a
    // hang or a poisoned-lock panic cascade.
    let read =
        call(&mut conn, 9_999, ServiceParams::Bi(probe.clone())).expect("probe read answers");
    match read.body {
        Err(e) if e.kind == ErrorKind::StorePoisoned => {}
        other => panic!("degraded server must refuse reads store_poisoned, got {other:?}"),
    }
    server.sigkill();

    // ---- Phase 4: recovery with `--image`. Seq 5 was WAL-appended
    // before the injected panic, so replay (which sees no fault)
    // applies it; the resubmission dedupes. Drain most of the schedule
    // normally — each compaction point (every 5 appends) now also
    // writes a store image, so by the kill an image anchors the WAL.
    eprintln!("# chaos phase 4: recover; drain under --image; SIGKILL");
    let server = ChaosServer::spawn(args, &bin, &wal_dir, None, true);
    assert_eq!(server.recovery.seq, 5, "seq 5 was durable before the panic: replayed");
    assert_eq!(server.recovery.image_seq, 0, "no image exists yet: full-history replay");
    let mut conn = server.connect();
    let (flavor, rows) = submit(&mut conn, 5, seq_ops(5)).expect("resubmit seq 5");
    assert_eq!((flavor, rows), ("deduped", 0), "replayed seq 5 must dedupe");
    ack_flavor[4] = Some("deduped");
    dedupes += 1;
    phases.push(PhaseOutcome {
        name: "writer.apply.panic",
        killed_at_seq: 5,
        recovered_seq: server.recovery.seq,
        truncated_bytes: server.recovery.truncated_bytes,
        resubmit_flavor: flavor,
    });
    for seq in 6..=image_drain {
        let (flavor, _) = submit(&mut conn, seq, seq_ops(seq)).expect("drain ack");
        assert_eq!(flavor, "ok");
        ack_flavor[seq as usize - 1] = Some("ok");
    }
    server.sigkill();

    // ---- Phase 5: image-anchored recovery, then a torn image write.
    // Recovery must start from the store image the previous process
    // wrote, replaying only the WAL tail past it — not full history.
    // Every image *replacement* in this process tears (`@p1` fires on
    // each hit): a partial temp file, never renamed over `store.img`.
    // The write is non-fatal, so the acks keep flowing; the SIGKILL
    // then leaves a directory whose newest durable state lives only in
    // the WAL tail past the old image.
    eprintln!("# chaos phase 5: recover from image; SIGKILL after image.write.torn");
    let server =
        ChaosServer::spawn(args, &bin, &wal_dir, Some("image.write.torn=short:120@p1"), true);
    assert!(server.recovery.image_seq > 0, "recovery must anchor on the store image");
    assert_eq!(server.recovery.seq, image_drain, "every acked batch survives the kill");
    assert_eq!(
        server.recovery.tail_replayed,
        server.recovery.seq - server.recovery.image_seq,
        "tail replay is bounded by the image, not by history length"
    );
    let anchor = server.recovery.image_seq;
    let mut conn = server.connect();
    for seq in image_drain + 1..=total {
        let (flavor, _) = submit(&mut conn, seq, seq_ops(seq)).expect("post-image ack");
        assert_eq!(flavor, "ok");
        ack_flavor[seq as usize - 1] = Some("ok");
    }
    server.sigkill();
    // Five appends crossed a compaction point, so the server tried to
    // replace the image and tore every attempt. The on-disk image must
    // still be the intact anchor — a torn write never lands.
    let on_disk = snb_server::image_info(&wal_dir, &args.scale, args.config.seed)
        .expect("peek store.img")
        .expect("store.img present after the torn replacement");
    assert_eq!(on_disk.seq, anchor, "torn image write must not replace the previous image");

    // ---- Phase 6: final recovery. The replacement image never landed,
    // so recovery falls back to the previous image plus the WAL tail —
    // which now includes the post-image batches. The last batch was
    // durable before the kill, so its resubmission dedupes.
    eprintln!("# chaos phase 6: recover; verify fallback to previous image + WAL tail");
    let server = ChaosServer::spawn(args, &bin, &wal_dir, None, true);
    assert_eq!(server.recovery.image_seq, anchor, "fallback to the intact previous image");
    assert_eq!(server.recovery.seq, total, "WAL tail past the image replays in full");
    assert_eq!(server.recovery.tail_replayed, total - anchor, "tail = everything past the image");
    let mut conn = server.connect();
    let (flavor, rows) = submit(&mut conn, total, seq_ops(total)).expect("resubmit last batch");
    assert_eq!((flavor, rows), ("deduped", 0), "durable post-image batch must dedupe");
    dedupes += 1;
    phases.push(PhaseOutcome {
        name: "image.write.torn",
        killed_at_seq: total,
        recovered_seq: server.recovery.seq,
        truncated_bytes: server.recovery.truncated_bytes,
        resubmit_flavor: flavor,
    });
    let lost_acks = ack_flavor.iter().filter(|f| f.is_none()).count() as u64;
    assert_eq!(lost_acks, 0, "every batch must end acknowledged");

    // ---- Oracle: a quiesced in-process store that applied exactly the
    // acknowledged batches once each, compared over all 25 BI queries.
    eprintln!("# chaos: building acked-batches oracle and verifying 25 BI queries");
    let mut oracle = base_store;
    let world = StaticWorld::build(args.config.seed);
    for ops in &batches {
        match ops {
            WriteOps::Updates(events) => {
                for ev in events {
                    oracle.apply_event(ev, &world).expect("oracle apply");
                }
            }
            WriteOps::Deletes(dels) => {
                oracle.apply_deletes(dels).expect("oracle delete");
            }
        }
    }
    if !oracle.date_index_fresh() {
        oracle.rebuild_date_index();
    }
    oracle.validate_invariants().expect("oracle invariants");

    let gen = ParamGen::new(&oracle, args.config.seed);
    let ctx = QueryContext::single_threaded();
    let mut verified = 0u64;
    let mut mismatches = 0u64;
    for q in 1..=25u8 {
        for params in gen.bi_params(q, 2) {
            let want = snb_bi::run_with(&oracle, &ctx, &params);
            let resp =
                call(&mut conn, 10_000 + verified, ServiceParams::Bi(params)).expect("verify read");
            verified += 1;
            match resp.body {
                Ok(ok) if ok.rows == want.rows as u64 && ok.fingerprint == want.fingerprint => {}
                Ok(ok) => {
                    mismatches += 1;
                    eprintln!(
                        "CHAOS VERIFY FAILURE: BI {q}: rows {} fp {:#x}, oracle rows {} fp {:#x}",
                        ok.rows, ok.fingerprint, want.rows, want.fingerprint
                    );
                }
                Err(e) => {
                    mismatches += 1;
                    eprintln!("CHAOS VERIFY FAILURE: BI {q}: {}: {}", e.kind.name(), e.detail);
                }
            }
        }
    }
    server.terminate();
    let _ = std::fs::remove_dir_all(&wal_dir);
    assert_eq!(mismatches, 0, "recovered store diverges from the acked-batches oracle");

    // ---- Report.
    snb_bench::print_table(
        "E13: chaos recovery",
        &["batches", "faults", "dedupes", "queries verified", "mismatches"],
        &[vec![
            total.to_string(),
            phases.len().to_string(),
            dedupes.to_string(),
            verified.to_string(),
            mismatches.to_string(),
        ]],
    );
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(&args.config)));
    out.push_str("  \"chaos\": {\n");
    out.push_str(&format!("    \"batches\": {total},\n    \"phases\": [\n"));
    for (i, p) in phases.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"fault\": \"{}\", \"killed_at_seq\": {}, \"recovered_seq\": {}, \
             \"truncated_bytes\": {}, \"resubmit\": \"{}\"}}{}\n",
            p.name,
            p.killed_at_seq,
            p.recovered_seq,
            p.truncated_bytes,
            p.resubmit_flavor,
            if i + 1 < phases.len() { "," } else { "" },
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"image\": {{\"anchor_seq\": {anchor}, \"tail_replayed\": {}}},\n",
        total - anchor
    ));
    out.push_str(&format!(
        "    \"dedupes\": {dedupes}, \"lost_acks\": {lost_acks}, \
         \"queries_verified\": {verified}, \"mismatches\": {mismatches}\n"
    ));
    out.push_str("  }\n}\n");
    std::fs::write(&args.out, out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
    eprintln!(
        "# chaos: PASS ({total} batches, 4 faults, 5 kills, {dedupes} dedupes, {verified} queries)"
    );
}
