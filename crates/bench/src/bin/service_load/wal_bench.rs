//! `--wal-bench`: write-batch ack latency through the durable write
//! path, with and without fsync batching.
//!
//! Two in-process durable servers are stood up over fresh WAL
//! directories, one with `fsync_every = 1` (every ack waits for the
//! disk) and one with `fsync_every = 64` (the flush is amortised; the
//! record is still `write(2)`-complete before the ack). The same
//! deterministic batch schedule is replayed through both and the ack
//! latency distributions land in the JSON as the `"wal"` block.

use std::time::Instant;

use snb_server::{Server, ServiceParams, WalOptions, WriteBatch};

use crate::{percentile, Args};

fn bench_one(args: &Args, fsync_every: u64) -> (Vec<u64>, u64) {
    let dir =
        std::env::temp_dir().join(format!("snb_walbench_{}_{}", fsync_every, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = WalOptions { fsync_every, snapshot_every: 0 };
    let recovered = snb_server::recover(&dir, &args.config, &args.scale, options)
        .expect("wal-bench recovery on a fresh directory");
    let (store, durability, _) = recovered.into_durability();
    let server = Server::start_durable(store, args.server.clone(), durability);
    let client = server.client();

    let batches = crate::chaos::carve_batches(&args.config, 64);
    let mut latencies_us = Vec::with_capacity(batches.len());
    for (i, ops) in batches.into_iter().enumerate() {
        let t0 = Instant::now();
        let resp = client.call(ServiceParams::Write(WriteBatch { seq: i as u64 + 1, ops }), 0);
        latencies_us.push(t0.elapsed().as_micros() as u64);
        assert!(
            resp.body.is_ok(),
            "wal-bench batch {} rejected: {:?}",
            i + 1,
            resp.body.err().map(|e| e.detail)
        );
    }
    let report = server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    latencies_us.sort_unstable();
    (latencies_us, report.batches_applied)
}

fn stats_json(lat: &[u64]) -> String {
    let mean = if lat.is_empty() { 0 } else { lat.iter().sum::<u64>() / lat.len() as u64 };
    format!(
        "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        lat.len(),
        mean,
        percentile(lat, 0.50),
        percentile(lat, 0.99),
        lat.last().copied().unwrap_or(0),
    )
}

/// Runs both configurations and renders the `"wal"` JSON block
/// (no surrounding braces; the caller owns the document).
pub fn run(args: &Args) -> String {
    let (every_ack, applied_1) = bench_one(args, 1);
    let (batched, applied_64) = bench_one(args, 64);
    assert_eq!(applied_1, applied_64, "both runs must apply the same schedule");
    format!(
        "  \"wal\": {{\"batches\": {}, \"fsync_every_1\": {}, \"fsync_every_64\": {}}}",
        applied_1,
        stats_json(&every_ack),
        stats_json(&batched),
    )
}
