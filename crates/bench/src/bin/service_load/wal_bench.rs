//! `--wal-bench`: write-batch ack latency through the durable write
//! path, with and without fsync batching.
//!
//! Three in-process durable servers are stood up over fresh WAL
//! directories: one with `fsync_every = 1` (every ack waits for the
//! disk), one with `fsync_every = 64` (the flush is amortised; the
//! record is still `write(2)`-complete before the ack), and one in
//! group-commit mode (concurrent clients, acks released only after the
//! covering flush, many acks sharing one `fsync(2)`). The same
//! deterministic batch schedule is replayed through all three and the
//! ack latency distributions, per-run fsync counts, and the
//! group-commit throughput delta land in the JSON as the `"wal"`
//! block.

use std::time::Instant;

use snb_server::{Server, ServerConfig, ServiceParams, WalOptions, WriteBatch, WriteOps};

use crate::{percentile, Args};

/// Clients driving the group-commit run concurrently. Each owns the
/// sequence numbers `i % GROUP_CLIENTS == t` and retries on the
/// server's typed `sequence gap` rejection until its predecessor
/// lands, so the global sequence stays contiguous without a
/// coordinator.
const GROUP_CLIENTS: usize = 4;

struct BenchRun {
    latencies_us: Vec<u64>,
    applied: u64,
    wall_us: u64,
    fsyncs: u64,
}

fn bench_one(args: &Args, fsync_every: u64) -> BenchRun {
    let dir =
        std::env::temp_dir().join(format!("snb_walbench_{}_{}", fsync_every, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = WalOptions { fsync_every, snapshot_every: 0, ..WalOptions::default() };
    let recovered = snb_server::recover(&dir, &args.config, &args.scale, options)
        .expect("wal-bench recovery on a fresh directory");
    let (store, durability, _) = recovered.into_durability();
    let server = Server::start_durable(store, args.server.clone(), durability);
    let client = server.client();

    let batches = crate::chaos::carve_batches(&args.config, 64);
    let mut latencies_us = Vec::with_capacity(batches.len());
    let started = Instant::now();
    for (i, ops) in batches.into_iter().enumerate() {
        let t0 = Instant::now();
        let resp = client.call(ServiceParams::Write(WriteBatch { seq: i as u64 + 1, ops }), 0);
        latencies_us.push(t0.elapsed().as_micros() as u64);
        assert!(
            resp.body.is_ok(),
            "wal-bench batch {} rejected: {:?}",
            i + 1,
            resp.body.err().map(|e| e.detail)
        );
    }
    let wall_us = started.elapsed().as_micros() as u64;
    let fsyncs = server.wal_syncs();
    let report = server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    latencies_us.sort_unstable();
    BenchRun { latencies_us, applied: report.batches_applied, wall_us, fsyncs }
}

/// Group-commit run: the same schedule, pushed by [`GROUP_CLIENTS`]
/// concurrent clients through a two-segment WAL. Acks block on the
/// covering flush (flusher election inside the server), so one fsync
/// releases every waiter it covers — the fsync count, not the ack
/// count, is what the disk sees.
fn bench_group(args: &Args) -> BenchRun {
    let dir = std::env::temp_dir().join(format!("snb_walbench_group_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options =
        WalOptions {
            fsync_every: 32,
            snapshot_every: 0,
            partitions: 2,
            group_commit: true,
            ..WalOptions::default()
        };
    let recovered = snb_server::recover(&dir, &args.config, &args.scale, options)
        .expect("wal-bench group-commit recovery on a fresh directory");
    let (store, durability, _) = recovered.into_durability();
    let server_config = ServerConfig { partitions: 2, ..args.server.clone() };
    let server = Server::start_durable(store, server_config, durability);

    let batches = crate::chaos::carve_batches(&args.config, 64);
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..GROUP_CLIENTS {
            let mine: Vec<(u64, WriteOps)> = batches
                .iter()
                .enumerate()
                .filter(|(i, _)| i % GROUP_CLIENTS == t)
                .map(|(i, ops)| (i as u64 + 1, ops.clone()))
                .collect();
            let client = server.client();
            handles.push(scope.spawn(move || {
                let mut lat = Vec::with_capacity(mine.len());
                for (seq, ops) in mine {
                    let t0 = Instant::now();
                    loop {
                        let resp = client
                            .call(ServiceParams::Write(WriteBatch { seq, ops: ops.clone() }), 0);
                        match resp.body {
                            Ok(_) => break,
                            Err(e) if e.detail.contains("sequence gap") => {
                                std::thread::yield_now();
                            }
                            Err(e) => {
                                panic!("wal-bench group batch {seq} rejected: {}", e.detail)
                            }
                        }
                    }
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("group-commit client")).collect()
    });
    let wall_us = started.elapsed().as_micros() as u64;
    let fsyncs = server.wal_syncs();
    let report = server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    latencies_us.sort_unstable();
    BenchRun { latencies_us, applied: report.batches_applied, wall_us, fsyncs }
}

fn run_json(run: &BenchRun) -> String {
    let lat = &run.latencies_us;
    let mean = if lat.is_empty() { 0 } else { lat.iter().sum::<u64>() / lat.len() as u64 };
    format!(
        "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
         \"wall_us\": {}, \"fsyncs\": {}}}",
        lat.len(),
        mean,
        percentile(lat, 0.50),
        percentile(lat, 0.99),
        lat.last().copied().unwrap_or(0),
        run.wall_us,
        run.fsyncs,
    )
}

/// Runs all three configurations and renders the `"wal"` JSON block
/// (no surrounding braces; the caller owns the document).
pub fn run(args: &Args) -> String {
    let every_ack = bench_one(args, 1);
    let batched = bench_one(args, 64);
    let group = bench_group(args);
    assert_eq!(every_ack.applied, batched.applied, "both runs must apply the same schedule");
    assert_eq!(every_ack.applied, group.applied, "group-commit run must apply the same schedule");
    let qps = |r: &BenchRun| r.applied as f64 / (r.wall_us.max(1) as f64 / 1e6);
    let acks_per_fsync = group.applied as f64 / group.fsyncs.max(1) as f64;
    format!(
        "  \"wal\": {{\"batches\": {}, \"fsync_every_1\": {}, \"fsync_every_64\": {}, \
         \"group_commit\": {}, \"group_clients\": {GROUP_CLIENTS}, \
         \"group_acks_per_fsync\": {:.2}, \"group_throughput_delta\": {:.2}}}",
        every_ack.applied,
        run_json(&every_ack),
        run_json(&batched),
        run_json(&group),
        acks_per_fsync,
        qps(&group) / qps(&every_ack).max(1e-9),
    )
}
