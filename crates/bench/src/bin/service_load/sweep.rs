//! Experiment E16 — connection-count sweep over the reactor transport.
//!
//! The pre-reactor service spent one OS thread per TCP connection, so
//! "how many connections can the tier hold" was really "how many
//! threads can the box tolerate". This experiment measures the fixed
//! answer: a ladder of connection counts (default 1 → 1024), every
//! connection concurrently open with one outstanding request, against
//! a server whose thread count never changes (one reactor thread plus
//! the configured workers).
//!
//! The request mix is 80% short reads (IS 1–7, the latency-critical
//! lane) and 20% heavy BI reads, issued closed-loop per connection:
//! `min(level, 32)` driver threads each own a slice of connections and
//! run write-all / read-all rounds, so the number of in-flight
//! requests equals the connection count. Each ladder level reports
//! achieved QPS, latency percentiles (overall and per lane), the
//! client-observed error rate, and the server's per-lane served/shed
//! deltas.
//!
//! After the ladder, a BI-flood phase pipelines a deep heavy backlog
//! on dedicated connections and probes with short reads: the weighted
//! lane scheduler must keep every probe fast and shed none of them —
//! the head-of-line-blocking regression this PR fixes. The phase is a
//! hard gate (exit 1), not just a measurement.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use snb_bi::BiParams;
use snb_interactive::IsParams;
use snb_params::ParamGen;
use snb_server::proto::{self, Request};
use snb_server::{Response, Server, ServiceParams, ServiceReport};

use crate::{percentile, Args};

/// Heavy-lane queries for the mix: mid-weight BI reads (not the
/// heaviest tail, which would collapse a 1-core ladder to a handful of
/// requests per level).
const HEAVY_QUERIES: [u8; 3] = [2, 5, 13];
/// One request in `MIX_PERIOD` is heavy; the rest are short reads.
const MIX_PERIOD: u64 = 5;
/// Driver threads are capped: beyond this, connections share a driver
/// (the server side is what the ladder scales, not the client).
const MAX_DRIVERS: usize = 32;

struct Pools {
    heavy: Vec<BiParams>,
    short_keys: Vec<u64>,
}

fn short_params(pools: &Pools, n: u64) -> ServiceParams {
    let key = pools.short_keys[(n as usize) % pools.short_keys.len()];
    let query = 1 + (n % 7) as u8;
    ServiceParams::Is(IsParams::from_parts(query, key).expect("IS query in 1..=7"))
}

fn heavy_params(pools: &Pools, n: u64) -> ServiceParams {
    ServiceParams::Bi(pools.heavy[(n as usize) % pools.heavy.len()].clone())
}

#[derive(Default)]
struct LevelStats {
    issued: u64,
    ok: u64,
    errors: u64,
    short_lat: Vec<u64>,
    heavy_lat: Vec<u64>,
    protocol_errors: u64,
}

impl LevelStats {
    fn absorb(&mut self, other: LevelStats) {
        self.issued += other.issued;
        self.ok += other.ok;
        self.errors += other.errors;
        self.short_lat.extend(other.short_lat);
        self.heavy_lat.extend(other.heavy_lat);
        self.protocol_errors += other.protocol_errors;
    }

    fn all_sorted(&mut self) -> Vec<u64> {
        let mut all: Vec<u64> = self.short_lat.iter().chain(&self.heavy_lat).copied().collect();
        all.sort_unstable();
        self.short_lat.sort_unstable();
        self.heavy_lat.sort_unstable();
        all
    }
}

fn call(conn: &mut TcpStream, id: u64, params: ServiceParams) -> Result<Response, String> {
    let req = Request { id, deadline_us: 0, min_seq: 0, params };
    proto::write_frame(conn, &proto::encode_request(&req)).map_err(|e| format!("write: {e}"))?;
    let payload = proto::read_frame(conn).map_err(|e| format!("read: {e}"))?;
    proto::decode_response(&payload).map_err(|e| format!("decode: {}", e.detail))
}

/// One ladder level: `level` concurrent connections, closed-loop
/// rounds until the window ends.
fn run_level(
    addr: std::net::SocketAddr,
    pools: &std::sync::Arc<Pools>,
    level: usize,
    duration: Duration,
) -> LevelStats {
    let drivers = level.min(MAX_DRIVERS);
    // Open every connection up front so the full level is concurrently
    // alive before the window starts.
    let mut conns: Vec<TcpStream> = (0..level)
        .map(|i| {
            let c = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("sweep level {level}: connect #{i}: {e}"));
            let _ = c.set_nodelay(true);
            c
        })
        .collect();
    let mut slices: Vec<Vec<TcpStream>> = (0..drivers).map(|_| Vec::new()).collect();
    for (i, conn) in conns.drain(..).enumerate() {
        slices[i % drivers].push(conn);
    }
    let end = Instant::now() + duration;
    let handles: Vec<std::thread::JoinHandle<LevelStats>> = slices
        .into_iter()
        .enumerate()
        .map(|(driver, mut slice)| {
            let pools = std::sync::Arc::clone(pools);
            std::thread::spawn(move || {
                let mut stats = LevelStats::default();
                let mut n: u64 = (driver as u64) << 40;
                let mut starts: Vec<(Instant, bool)> = Vec::with_capacity(slice.len());
                while Instant::now() < end {
                    // Write one request on every owned connection, then
                    // read every response: in-flight == slice length.
                    starts.clear();
                    for conn in slice.iter_mut() {
                        n += 1;
                        let heavy = n.is_multiple_of(MIX_PERIOD);
                        let params =
                            if heavy { heavy_params(&pools, n) } else { short_params(&pools, n) };
                        let req = Request { id: n, deadline_us: 0, min_seq: 0, params };
                        if proto::write_frame(conn, &proto::encode_request(&req)).is_err() {
                            stats.protocol_errors += 1;
                        }
                        starts.push((Instant::now(), heavy));
                        stats.issued += 1;
                    }
                    for (conn, (t0, heavy)) in slice.iter_mut().zip(&starts) {
                        let resp = proto::read_frame(conn)
                            .map_err(|e| format!("read: {e}"))
                            .and_then(|p| {
                                proto::decode_response(&p)
                                    .map_err(|e| format!("decode: {}", e.detail))
                            });
                        match resp {
                            Ok(resp) => {
                                let latency = t0.elapsed().as_micros() as u64;
                                if resp.body.is_ok() {
                                    stats.ok += 1;
                                    if *heavy {
                                        stats.heavy_lat.push(latency);
                                    } else {
                                        stats.short_lat.push(latency);
                                    }
                                } else {
                                    stats.errors += 1;
                                }
                            }
                            Err(_) => stats.protocol_errors += 1,
                        }
                    }
                }
                stats
            })
        })
        .collect();
    let mut total = LevelStats::default();
    for h in handles {
        total.absorb(h.join().expect("sweep driver thread"));
    }
    total
}

/// The BI-flood starvation gate: pipeline a deep heavy backlog, probe
/// with short reads, demand zero short sheds and every probe answered.
fn run_flood(
    addr: std::net::SocketAddr,
    pools: &Pools,
    server: &Server,
    before: &ServiceReport,
) -> (String, bool) {
    const FLOOD: usize = 256;
    const PROBES: usize = 50;

    let mut flood_conn = TcpStream::connect(addr).expect("flood connect");
    let _ = flood_conn.set_nodelay(true);
    for i in 0..FLOOD as u64 {
        let req = Request { id: i + 1, deadline_us: 0, min_seq: 0, params: heavy_params(pools, i) };
        proto::write_frame(&mut flood_conn, &proto::encode_request(&req)).expect("flood write");
    }
    // Probe only once a real heavy backlog is admitted.
    let armed = Instant::now() + Duration::from_secs(10);
    while server.queued() < 32 && Instant::now() < armed {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut probe_conn = TcpStream::connect(addr).expect("probe connect");
    let _ = probe_conn.set_nodelay(true);
    let mut short_lat: Vec<u64> = Vec::with_capacity(PROBES);
    let mut short_ok = 0u64;
    for i in 0..PROBES as u64 {
        let t0 = Instant::now();
        match call(&mut probe_conn, i + 1, short_params(pools, i)) {
            Ok(resp) if resp.body.is_ok() => {
                short_ok += 1;
                short_lat.push(t0.elapsed().as_micros() as u64);
            }
            _ => {}
        }
    }
    let mut flood_ok = 0u64;
    for _ in 0..FLOOD {
        let payload = proto::read_frame(&mut flood_conn).expect("flood read");
        let resp = proto::decode_response(&payload).expect("flood decode");
        if resp.body.is_ok() {
            flood_ok += 1;
        }
    }
    short_lat.sort_unstable();
    let after = server.report_now();
    let short_shed = after.shed_by_lane[0] - before.shed_by_lane[0];
    let p99 = percentile(&short_lat, 0.99);
    let ok = short_ok == PROBES as u64 && short_shed == 0;
    eprintln!(
        "# flood phase: {FLOOD} heavy pipelined ({flood_ok} ok), {short_ok}/{PROBES} probes ok, \
         short p99 {p99}us, short_shed {short_shed}{}",
        if ok { "" } else { "  <-- STARVATION GATE FAILED" }
    );
    let json = format!(
        "{{\"heavy_pipelined\": {FLOOD}, \"heavy_ok\": {flood_ok}, \"short_issued\": {PROBES}, \
         \"short_ok\": {short_ok}, \"short_shed\": {short_shed}, \"short_p50_us\": {}, \
         \"short_p99_us\": {p99}}}",
        percentile(&short_lat, 0.50),
    );
    (json, ok)
}

pub fn run(args: &Args) {
    eprintln!("# building store: {} persons (seed {}) ...", args.config.persons, args.config.seed);
    let store = snb_store::store_for_config(&args.config);
    let pools = {
        let gen = ParamGen::new(&store, args.config.seed);
        let heavy: Vec<BiParams> =
            HEAVY_QUERIES.iter().flat_map(|&q| gen.bi_params(q, args.bindings_per_query)).collect();
        let short_keys: Vec<u64> =
            gen.person_pairs(64).into_iter().flat_map(|(a, b)| [a, b]).collect();
        assert!(!heavy.is_empty() && !short_keys.is_empty(), "sweep pools empty");
        std::sync::Arc::new(Pools { heavy, short_keys })
    };

    let mut server = Server::start(store, args.server.clone());
    let addr = server.listen("127.0.0.1:0").expect("bind loopback");
    let max_level = args.sweep_levels.iter().copied().max().unwrap_or(1);
    eprintln!(
        "# sweeping {:?} connections ({:?} per level, {} read workers, heavy cap {}) ...",
        args.sweep_levels, args.sweep_duration, args.server.workers, args.server.queue_capacity,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut level_json: Vec<String> = Vec::new();
    let mut protocol_errors = 0u64;
    for &level in &args.sweep_levels {
        let before = server.report_now();
        let t0 = Instant::now();
        let mut stats = run_level(addr, &pools, level, args.sweep_duration);
        let wall = t0.elapsed();
        let after = server.report_now();
        protocol_errors += stats.protocol_errors;

        let all = stats.all_sorted();
        let qps = stats.ok as f64 / wall.as_secs_f64();
        let error_rate =
            if stats.issued == 0 { 0.0 } else { stats.errors as f64 / stats.issued as f64 };
        let (p50, p90, p99) =
            (percentile(&all, 0.50), percentile(&all, 0.90), percentile(&all, 0.99));
        rows.push(vec![
            level.to_string(),
            stats.issued.to_string(),
            format!("{qps:.0}"),
            snb_bench::fmt_duration(Duration::from_micros(p50)),
            snb_bench::fmt_duration(Duration::from_micros(p99)),
            format!("{:.4}", error_rate),
        ]);
        level_json.push(format!(
            "      {{\"connections\": {level}, \"issued\": {}, \"ok\": {}, \"errors\": {}, \
             \"error_rate\": {error_rate:.6}, \"qps\": {qps:.2}, \"wall_us\": {}, \
             \"p50_us\": {p50}, \"p90_us\": {p90}, \"p99_us\": {p99}, \"lanes\": {{\
             \"short\": {{\"ok\": {}, \"served\": {}, \"shed\": {}, \"p50_us\": {}, \"p99_us\": {}}}, \
             \"heavy\": {{\"ok\": {}, \"served\": {}, \"shed\": {}, \"p50_us\": {}, \"p99_us\": {}}}, \
             \"write\": {{\"served\": {}, \"shed\": {}}}}}}}",
            stats.issued,
            stats.ok,
            stats.errors,
            wall.as_micros(),
            stats.short_lat.len(),
            after.served_by_lane[0] - before.served_by_lane[0],
            after.shed_by_lane[0] - before.shed_by_lane[0],
            percentile(&stats.short_lat, 0.50),
            percentile(&stats.short_lat, 0.99),
            stats.heavy_lat.len(),
            after.served_by_lane[1] - before.served_by_lane[1],
            after.shed_by_lane[1] - before.shed_by_lane[1],
            percentile(&stats.heavy_lat, 0.50),
            percentile(&stats.heavy_lat, 0.99),
            after.served_by_lane[2] - before.served_by_lane[2],
            after.shed_by_lane[2] - before.shed_by_lane[2],
        ));
    }
    snb_bench::print_table(
        "E16: connection sweep (80/20 short/heavy)",
        &["conns", "issued", "qps", "p50", "p99", "error rate"],
        &rows,
    );

    let before_flood = server.report_now();
    let (flood_json, flood_ok) = run_flood(addr, &pools, &server, &before_flood);

    let report = server.shutdown();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"meta\": {},\n", snb_bench::meta_json(&args.config)));
    out.push_str(&format!(
        "  \"config\": {{\"mode\": \"sweep\", \"levels\": {:?}, \"level_duration_us\": {}, \
         \"mix\": \"{}:{} short:heavy\", \"workers\": {}, \"queue_capacity\": {}, \
         \"partitions\": {}}},\n",
        args.sweep_levels,
        args.sweep_duration.as_micros(),
        MIX_PERIOD - 1,
        1,
        args.server.workers,
        args.server.queue_capacity,
        args.server.partitions,
    ));
    out.push_str("  \"sweep\": {\n    \"levels\": [\n");
    out.push_str(&level_json.join(",\n"));
    out.push_str("\n    ],\n");
    out.push_str(&format!("    \"flood\": {flood_json}\n  }},\n"));
    out.push_str(&format!(
        "  \"server\": {{\"served\": {}, \"shed\": {}, \"served_by_lane\": [{}, {}, {}], \
         \"shed_by_lane\": [{}, {}, {}], \"deadline_overrun\": {}, \"conn_accepted\": {}, \
         \"conn_peak\": {}, \"conn_stalled\": {}, \"reader_retries\": {}, \"reader_blocked\": {}}}\n",
        report.served,
        report.shed,
        report.served_by_lane[0],
        report.served_by_lane[1],
        report.served_by_lane[2],
        report.shed_by_lane[0],
        report.shed_by_lane[1],
        report.shed_by_lane[2],
        report.deadline_overrun,
        report.conn_accepted,
        report.conn_peak,
        report.conn_stalled,
        report.reader_retries,
        report.reader_blocked,
    ));
    out.push_str("}\n");
    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);

    if report.conn_peak < max_level as u64 {
        eprintln!(
            "service_load --sweep: FAILED (peak {} connections, ladder reached {max_level})",
            report.conn_peak
        );
        std::process::exit(1);
    }
    if protocol_errors > 0 || !flood_ok {
        eprintln!(
            "service_load --sweep: FAILED ({protocol_errors} protocol errors, flood gate {})",
            if flood_ok { "ok" } else { "violated" }
        );
        std::process::exit(1);
    }
}
