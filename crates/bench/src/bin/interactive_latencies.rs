//! Experiment E10 — Interactive per-query latencies (the shape of the
//! SIGMOD'15 Interactive paper's latency tables): IC 1–14 and IS 1–7
//! latency statistics over curated bindings.

use std::time::Instant;

use snb_interactive::short;
use snb_params::ParamGen;

fn main() {
    let config = snb_bench::cli_config();
    let store = snb_bench::build_store_verbose(&config);
    let gen = ParamGen::new(&store, config.seed);

    let mut rows = Vec::new();
    for q in 1..=14u8 {
        let bindings = gen.ic_params(q, 8);
        let mut lats = Vec::new();
        let mut total_rows = 0usize;
        for b in &bindings {
            let started = Instant::now();
            total_rows += snb_interactive::run_complex(&store, b);
            lats.push(started.elapsed());
        }
        lats.sort_unstable();
        let mean: std::time::Duration =
            lats.iter().sum::<std::time::Duration>() / lats.len().max(1) as u32;
        rows.push(vec![
            format!("IC {q}"),
            lats.len().to_string(),
            snb_bench::fmt_duration(mean),
            snb_bench::fmt_duration(lats[lats.len() / 2]),
            snb_bench::fmt_duration(*lats.last().unwrap()),
            total_rows.to_string(),
        ]);
    }
    snb_bench::print_table(
        "E10: interactive complex reads",
        &["query", "runs", "mean", "p50", "max", "rows"],
        &rows,
    );

    // Short reads over sampled entities.
    let person = store.persons.id[store.persons.len() / 2];
    let message = store.messages.id[store.messages.len() / 2];
    let mut srows = Vec::new();
    let mut measure = |name: &str, mut f: Box<dyn FnMut() -> usize + '_>| {
        let reps = 200;
        let started = Instant::now();
        let mut rows = 0;
        for _ in 0..reps {
            rows = f();
        }
        let mean = started.elapsed() / reps;
        srows.push(vec![name.to_string(), snb_bench::fmt_duration(mean), rows.to_string()]);
    };
    measure(
        "IS 1",
        Box::new(|| short::is1::run(&store, &short::is1::Params { person_id: person }).len()),
    );
    measure(
        "IS 2",
        Box::new(|| short::is2::run(&store, &short::is2::Params { person_id: person }).len()),
    );
    measure(
        "IS 3",
        Box::new(|| short::is3::run(&store, &short::is3::Params { person_id: person }).len()),
    );
    measure(
        "IS 4",
        Box::new(|| short::is4::run(&store, &short::is4::Params { message_id: message }).len()),
    );
    measure(
        "IS 5",
        Box::new(|| short::is5::run(&store, &short::is5::Params { message_id: message }).len()),
    );
    measure(
        "IS 6",
        Box::new(|| short::is6::run(&store, &short::is6::Params { message_id: message }).len()),
    );
    measure(
        "IS 7",
        Box::new(|| short::is7::run(&store, &short::is7::Params { message_id: message }).len()),
    );
    snb_bench::print_table("E10: short reads", &["query", "mean", "rows"], &srows);
}
