//! Generates a Full Disclosure Report (spec chapter 6): loads a scale
//! factor, runs the interactive workload full-speed, and writes the
//! §6.2 results directory (`results_log.csv`, `results_summary.md`,
//! `configuration.txt`) under `./results/fdr/`.

use std::time::Instant;

use snb_datagen::dictionaries::StaticWorld;
use snb_driver::disclosure::{Disclosure, SystemDetails};
use snb_driver::{run_interactive, InteractiveConfig};
use snb_store::bulk_store_and_stream;

fn main() {
    let config = snb_bench::cli_config();
    let world = StaticWorld::build(config.seed);
    let load_started = Instant::now();
    let (mut store, events) = bulk_store_and_stream(&config);
    let load_time = load_started.elapsed();
    let stats = store.stats();

    let report = run_interactive(&mut store, &world, &events, &InteractiveConfig::default())
        .expect("run succeeds");

    let sf_name = std::env::args().nth(1).unwrap_or_else(|| "0.003".into());
    let disclosure = Disclosure {
        system: SystemDetails::collect(),
        versions: (
            "LDBC SNB specification v0.3.3 (reproduction)",
            concat!("snb-datagen ", env!("CARGO_PKG_VERSION")),
            concat!("snb-driver ", env!("CARGO_PKG_VERSION")),
        ),
        scale_factor: &sf_name,
        seed: config.seed,
        load_time,
        stats,
        log: &report.log,
    };
    let dir = std::path::Path::new("results/fdr");
    disclosure.write_results_dir(dir).expect("write results dir");
    println!("{}", disclosure.render());
    println!("\nresults directory written to {}", dir.display());
}
