//! Experiment E11 — concurrent mixed read/write execution and the
//! spec §6.4 serializability check, on the snapshot-published store.
//!
//! The system under test is `snb_driver::run_concurrent`: a writer
//! publishes immutable store versions batch by batch while reader
//! threads pin snapshots lock-free and a checker validates invariants
//! on pinned versions; the final published state must equal a serial
//! replay. For comparison the bin also runs the pre-snapshot design —
//! a global `RwLock` with per-event write locking and per-read read
//! locking — as a labelled baseline, so the table shows what the
//! lock-free read path buys under the same stream and bindings.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use snb_datagen::dictionaries::StaticWorld;
use snb_driver::run_concurrent;
use snb_engine::QueryContext;
use snb_interactive::{run_complex_with, IcParams};
use snb_params::ParamGen;
use snb_store::{bulk_store_and_stream, Store};

/// The retired lock-based SUT, kept here (and only here) as the E11
/// comparison baseline: per-event write lock, per-read read lock.
fn run_rwlock_baseline(
    mut store: Store,
    world: &StaticWorld,
    events: &[snb_datagen::stream::TimedEvent],
    bindings: &[IcParams],
    reader_threads: usize,
) -> (usize, usize, Duration) {
    store.rebuild_date_index();
    let lock = RwLock::new(store);
    let done = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..reader_threads.max(1) {
            let lock = &lock;
            let done = &done;
            let reads = &reads;
            scope.spawn(move || {
                let ctx = QueryContext::single_threaded();
                let mut i = r;
                while !done.load(Ordering::Acquire) {
                    if bindings.is_empty() {
                        break;
                    }
                    let guard = lock.read();
                    let _ = run_complex_with(&guard, &ctx, &bindings[i % bindings.len()]);
                    drop(guard);
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += reader_threads;
                }
            });
        }
        for e in events {
            let mut guard = lock.write();
            guard.apply_event(e, world).expect("baseline apply");
            if !guard.date_index_fresh() {
                guard.rebuild_date_index();
            }
        }
        done.store(true, Ordering::Release);
    });
    (events.len(), reads.load(Ordering::Relaxed), started.elapsed())
}

fn main() {
    let config = snb_bench::cli_config();
    let world = StaticWorld::build(config.seed);
    let mut rows = Vec::new();
    for readers in [1usize, 2, 4] {
        let bindings: Vec<IcParams> = {
            let (store, _) = bulk_store_and_stream(&config);
            let gen = ParamGen::new(&store, config.seed);
            (1..=14u8).flat_map(|q| gen.ic_params(q, 2)).collect()
        };

        // Snapshot SUT (the shipping design).
        let (store, events) = bulk_store_and_stream(&config);
        let (final_store, report) =
            run_concurrent(store, &world, &events, &bindings, readers).expect("run succeeds");
        final_store.validate_invariants().expect("final state consistent");
        rows.push(vec![
            "snapshot".to_string(),
            readers.to_string(),
            report.updates_applied.to_string(),
            report.reads_executed.to_string(),
            report.versions_published.to_string(),
            report.readers_blocked.to_string(),
            snb_bench::fmt_duration(report.wall),
            format!("{:.0}", report.updates_applied as f64 / report.wall.as_secs_f64()),
        ]);

        // Labelled comparison baseline: the retired RwLock design.
        let (store, events) = bulk_store_and_stream(&config);
        let (updates, reads, wall) =
            run_rwlock_baseline(store, &world, &events, &bindings, readers);
        rows.push(vec![
            "rwlock-baseline".to_string(),
            readers.to_string(),
            updates.to_string(),
            reads.to_string(),
            "-".to_string(),
            "-".to_string(),
            snb_bench::fmt_duration(wall),
            format!("{:.0}", updates as f64 / wall.as_secs_f64()),
        ]);
    }
    snb_bench::print_table(
        "E11: concurrent updates + reads (snapshot SUT vs RwLock baseline, §6.4)",
        &["sut", "readers", "updates", "reads", "versions", "blocked", "wall", "updates/s"],
        &rows,
    );

    // Serial-equivalence proof for the snapshot SUT.
    let (store, events) = bulk_store_and_stream(&config);
    let (concurrent, _) = run_concurrent(store, &world, &events, &[], 2).expect("run succeeds");
    let (mut serial, events2) = bulk_store_and_stream(&config);
    for e in &events2 {
        serial.apply_event(e, &world).expect("serial replay");
    }
    assert_eq!(concurrent.persons.len(), serial.persons.len());
    assert_eq!(concurrent.messages.len(), serial.messages.len());
    assert_eq!(concurrent.knows.edge_count(), serial.knows.edge_count());
    println!("\nserial-equivalence check: concurrent final state == serial replay ✓");
}
