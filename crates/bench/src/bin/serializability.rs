//! Experiment E11 — concurrent mixed read/write execution and the
//! spec §6.4 serializability check: a writer drains the update stream
//! under a write lock while reader threads execute complex reads and a
//! checker validates store invariants under the read lock; the final
//! state must equal a serial replay.

use snb_datagen::dictionaries::StaticWorld;
use snb_driver::run_concurrent;
use snb_interactive::IcParams;
use snb_params::ParamGen;
use snb_store::bulk_store_and_stream;

fn main() {
    let config = snb_bench::cli_config();
    let world = StaticWorld::build(config.seed);
    let mut rows = Vec::new();
    for readers in [1usize, 2, 4] {
        let (store, events) = bulk_store_and_stream(&config);
        let bindings: Vec<IcParams> = {
            let gen = ParamGen::new(&store, config.seed);
            (1..=14u8).flat_map(|q| gen.ic_params(q, 2)).collect()
        };
        let (final_store, report) =
            run_concurrent(store, &world, &events, &bindings, readers).expect("run succeeds");
        final_store.validate_invariants().expect("final state consistent");
        rows.push(vec![
            readers.to_string(),
            report.updates_applied.to_string(),
            report.reads_executed.to_string(),
            report.consistency_checks.to_string(),
            snb_bench::fmt_duration(report.wall),
            format!("{:.0}", report.updates_applied as f64 / report.wall.as_secs_f64()),
        ]);
    }
    snb_bench::print_table(
        "E11: concurrent updates + reads (RwLock SUT, §6.4)",
        &["readers", "updates", "reads", "consistency checks", "wall", "updates/s"],
        &rows,
    );

    // Serial-equivalence proof for the last configuration.
    let (store, events) = bulk_store_and_stream(&config);
    let (concurrent, _) = run_concurrent(store, &world, &events, &[], 2).expect("run succeeds");
    let (mut serial, events2) = bulk_store_and_stream(&config);
    for e in &events2 {
        serial.apply_event(e, &world).expect("serial replay");
    }
    assert_eq!(concurrent.persons.len(), serial.persons.len());
    assert_eq!(concurrent.messages.len(), serial.messages.len());
    assert_eq!(concurrent.knows.edge_count(), serial.knows.edge_count());
    println!("\nserial-equivalence check: concurrent final state == serial replay ✓");
}
