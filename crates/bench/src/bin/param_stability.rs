//! Experiment E4 — parameter-curation quality (spec §3.3, properties
//! P1–P3): runtime coefficient of variation under curated bindings vs
//! uniformly random bindings, per query. Curation should keep the
//! variance bounded (P1) and stable across repeated streams (P2).

use snb_params::ParamGen;

fn cv(lats: &[std::time::Duration]) -> f64 {
    let n = lats.len().max(1) as f64;
    let mean = lats.iter().map(|d| d.as_secs_f64()).sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = lats.iter().map(|d| (d.as_secs_f64() - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

fn main() {
    let config = snb_bench::cli_config();
    let store = snb_bench::build_store_verbose(&config);
    let gen = ParamGen::new(&store, config.seed);
    // Queries with non-trivial per-binding variance potential.
    let queries = [4u8, 5, 6, 7, 8, 10, 13, 16, 21, 22];
    let n = 10;
    let mut rows = Vec::new();
    let mut wins = 0;
    for q in queries {
        let curated = gen.bi_params(q, n);
        let random = gen.bi_params_random(q, n);
        // Warm up, then measure twice to show P2 stability.
        let _ = snb_driver::bi::run_bindings(&store, &curated);
        let c1 = cv(&snb_driver::bi::run_bindings(&store, &curated));
        let c2 = cv(&snb_driver::bi::run_bindings(&store, &curated));
        let r1 = cv(&snb_driver::bi::run_bindings(&store, &random));
        if c1 <= r1 {
            wins += 1;
        }
        rows.push(vec![
            format!("BI {q}"),
            format!("{c1:.3}"),
            format!("{c2:.3}"),
            format!("{r1:.3}"),
            if c1 <= r1 { "curated".into() } else { "random".into() },
        ]);
    }
    snb_bench::print_table(
        "E4: runtime CV, curated vs random bindings",
        &["query", "curated cv (run 1)", "curated cv (run 2)", "random cv", "lower"],
        &rows,
    );
    println!("\ncurated bindings had lower or equal variance on {wins}/{} queries", queries.len());
}
