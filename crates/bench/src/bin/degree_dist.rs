//! Experiment E2 — generator structure (spec §2.3.3.2, Figure 2.2):
//! degree distribution of the `knows` graph, the split of edges across
//! the three correlation dimensions, and the homophily triangle excess
//! against an Erdős–Rényi graph of the same density.

use rustc_hash::FxHashSet;
use snb_datagen::generate;

fn main() {
    let config = snb_bench::cli_config();
    let graph = generate(&config);
    let n = graph.persons.len();

    // Degree histogram (log-ish buckets).
    let mut degree = vec![0usize; n];
    for k in &graph.knows {
        degree[k.a.0 as usize] += 1;
        degree[k.b.0 as usize] += 1;
    }
    let buckets =
        [(0usize, 0usize), (1, 2), (3, 5), (6, 10), (11, 20), (21, 40), (41, 80), (81, usize::MAX)];
    let mut rows = Vec::new();
    for (lo, hi) in buckets {
        let count = degree.iter().filter(|&&d| d >= lo && d <= hi).count();
        let label = if hi == usize::MAX { format!("{lo}+") } else { format!("{lo}-{hi}") };
        rows.push(vec![
            label,
            count.to_string(),
            format!("{:.1}%", 100.0 * count as f64 / n as f64),
        ]);
    }
    let mean = 2.0 * graph.knows.len() as f64 / n as f64;
    let max = degree.iter().max().copied().unwrap_or(0);
    snb_bench::print_table("E2: knows degree distribution", &["degree", "persons", "share"], &rows);
    println!("mean degree {mean:.2} (target {}), max degree {max}", config.mean_knows_degree);

    // Correlation-dimension split (spec: study ≈ 45%, interests ≈ 45%,
    // random ≈ 10% plus windowing top-up).
    let mut per_dim = [0usize; 3];
    for k in &graph.knows {
        per_dim[k.dimension as usize] += 1;
    }
    let dim_rows: Vec<Vec<String>> = ["study (dim 0)", "interest (dim 1)", "random (dim 2)"]
        .iter()
        .zip(per_dim)
        .map(|(name, c)| {
            vec![
                name.to_string(),
                c.to_string(),
                format!("{:.1}%", 100.0 * c as f64 / graph.knows.len() as f64),
            ]
        })
        .collect();
    snb_bench::print_table(
        "E2: edges per correlation dimension",
        &["dimension", "edges", "share"],
        &dim_rows,
    );

    // Triangle count vs random expectation.
    let mut adj: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    for k in &graph.knows {
        adj[k.a.0 as usize].insert(k.b.0 as u32);
        adj[k.b.0 as usize].insert(k.a.0 as u32);
    }
    let mut triangles = 0u64;
    for u in 0..n {
        for &v in &adj[u] {
            if (v as usize) <= u {
                continue;
            }
            for &w in &adj[v as usize] {
                if w > v && adj[u].contains(&w) {
                    triangles += 1;
                }
            }
        }
    }
    let m = graph.knows.len() as f64;
    let nf = n as f64;
    let p = 2.0 * m / (nf * (nf - 1.0));
    let expected = nf * (nf - 1.0) * (nf - 2.0) / 6.0 * p * p * p;
    println!(
        "\nE2: triangles = {triangles}, Erdos-Renyi expectation = {expected:.1}, \
         homophily excess = {:.1}x",
        triangles as f64 / expected.max(1e-9)
    );
}
