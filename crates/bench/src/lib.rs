#![warn(missing_docs)]

//! # snb-bench
//!
//! The benchmark harness: report binaries regenerating every table and
//! figure of the reproduced evaluation (experiment ids E1–E10, see
//! `DESIGN.md` §4) plus Criterion micro-benchmarks.
//!
//! Every binary takes an optional scale-factor name argument (default
//! `0.003`) and an optional seed, e.g.
//!
//! ```text
//! cargo run --release -p snb-bench --bin bi_runtimes -- 0.01
//! ```

use snb_datagen::GeneratorConfig;
use snb_store::{store_for_config, Store};

/// Parses `[sf-name] [seed]` from argv with defaults. `--`-prefixed
/// flags (see [`cli_flag`]) are skipped, so positionals and flags can
/// mix in any order.
pub fn cli_config() -> GeneratorConfig {
    let args: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect();
    let sf = args.first().map(String::as_str).unwrap_or("0.003");
    let mut config = GeneratorConfig::for_scale_name(sf)
        .unwrap_or_else(|| panic!("unknown scale factor {sf:?}; try 0.001/0.003/0.01/0.03/0.1"));
    if let Some(seed) = args.get(1) {
        config.seed = seed.parse().expect("seed must be an integer");
    }
    config
}

/// Whether boolean flag `name` (e.g. `"--profile"`) appears in argv.
pub fn cli_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// Builds the store for a config, printing progress.
pub fn build_store_verbose(config: &GeneratorConfig) -> Store {
    eprintln!(
        "# generating SF with {} persons (seed {}), loading store ...",
        config.persons, config.seed
    );
    let started = std::time::Instant::now();
    let store = store_for_config(config);
    let stats = store.stats();
    eprintln!(
        "# loaded in {:.2?}: {} nodes, {} edges, {} persons, {} messages",
        started.elapsed(),
        stats.nodes,
        stats.edges,
        stats.persons,
        stats.posts + stats.comments
    );
    store
}

/// Prints a pipe-separated table with a header and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let parts: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        parts.join(" | ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Environment knobs recorded in benchmark metadata (the ones that
/// change what a benchmark run measures).
pub const META_ENV_KEYS: [&str; 5] =
    ["SNB_THREADS", "SNB_PARTITIONS", "SNB_BENCH_OUT", "SNB_SERVICE_OUT", "SNB_ACCESS_LOG"];

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The partition count the `SNB_PARTITIONS` knob resolves to (unset or
/// invalid → 1, the unpartitioned layout).
pub fn partitions_resolved() -> usize {
    std::env::var("SNB_PARTITIONS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&p| p > 0)
        .unwrap_or(1)
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where that interface does not exist
/// (non-Linux). The high-water mark is sticky for the process
/// lifetime, so phase-level attribution needs the phases ordered
/// smallest-footprint first (or a `clear_refs` reset between them).
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Renders the run-metadata JSON object embedded in `BENCH_bi.json`
/// and `BENCH_service.json`: git commit, scale, seed, hardware core
/// count, the resolved `SNB_THREADS` and `SNB_PARTITIONS` values, the
/// process peak RSS at render time, and every set `SNB_*` knob —
/// enough to tell two result files apart without provenance guesswork.
pub fn meta_json(config: &GeneratorConfig) -> String {
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads_resolved = std::env::var("SNB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(cores);
    let env_entries: Vec<String> = META_ENV_KEYS
        .iter()
        .filter_map(|key| {
            std::env::var(key).ok().map(|v| format!("\"{key}\": \"{}\"", json_escape(&v)))
        })
        .collect();
    format!(
        "{{\"git_commit\": \"{}\", \"scale_persons\": {}, \"datagen_seed\": {}, \
         \"hardware_cores\": {cores}, \"threads_resolved\": {threads_resolved}, \
         \"partitions_resolved\": {}, \"peak_rss_bytes\": {}, \
         \"env\": {{{}}}}}",
        json_escape(&git_commit),
        config.persons,
        config.seed,
        partitions_resolved(),
        peak_rss_bytes(),
        env_entries.join(", "),
    )
}

/// Formats a `Duration` in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_json_is_wellformed_and_complete() {
        let config = GeneratorConfig::for_scale_name("0.001").unwrap();
        let meta = meta_json(&config);
        assert!(meta.starts_with('{') && meta.ends_with('}'));
        for key in [
            "git_commit",
            "scale_persons",
            "datagen_seed",
            "hardware_cores",
            "threads_resolved",
            "partitions_resolved",
            "peak_rss_bytes",
            "env",
        ] {
            assert!(meta.contains(&format!("\"{key}\":")), "meta missing {key}: {meta}");
        }
        assert!(meta.contains(&format!("\"scale_persons\": {}", config.persons)));
    }

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // A running test process has touched well over a megabyte.
            assert!(rss > 1 << 20, "implausible VmHWM {rss}");
        }
    }

    #[test]
    fn json_escaping_for_meta_values() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_micros(1_500)), "1.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(2_500)), "2.50s");
    }
}
