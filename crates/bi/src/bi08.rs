//! BI 8 — *Related topics* (reconstructed).
//!
//! For a given Tag, find the Tags attached to Comments that directly
//! reply to Messages carrying the given Tag — excluding the given Tag
//! itself and excluding replies that also carry it — and count the
//! replies per related tag.

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::has_tag;

/// Parameters of BI 8.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tag name.
    pub tag: String,
}

/// One result row of BI 8.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Related tag name.
    pub related_tag_name: String,
    /// Number of reply comments carrying the related tag.
    pub count: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, String) {
    (std::cmp::Reverse(row.count), row.related_tag_name.clone())
}

/// Optimized implementation: walk the tag's messages, then their direct
/// replies.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: parallel
/// morsels over the tag's message list; per-worker tag counters merged
/// in worker order.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let tagged: Vec<Ix> = store.tag_message.targets_of(tag).collect();
    let counts = ctx.par_map_reduce(
        tagged.len(),
        FxHashMap::<Ix, u64>::default,
        |acc, range| {
            for &m in &tagged[range] {
                for reply in store.message_replies.targets_of(m) {
                    if has_tag(store, reply, tag) {
                        continue;
                    }
                    for t in store.message_tag.targets_of(reply) {
                        *acc.entry(t).or_insert(0) += 1;
                    }
                }
            }
        },
        |into, from| {
            for (k, c) in from {
                *into.entry(k).or_insert(0) += c;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (t, count) in counts {
        let row = Row { related_tag_name: store.tags.name[t as usize].to_string(), count };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: comment-major scan testing the parent's tags.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let mut counts: FxHashMap<Ix, u64> = FxHashMap::default();
    for c in 0..store.messages.len() as Ix {
        let parent = store.messages.reply_of[c as usize];
        if parent == snb_store::NONE {
            continue;
        }
        if !has_tag(store, parent, tag) || has_tag(store, c, tag) {
            continue;
        }
        for t in store.message_tag.targets_of(c) {
            *counts.entry(t).or_insert(0) += 1;
        }
    }
    let items: Vec<_> = counts
        .into_iter()
        .map(|(t, count)| {
            let row = Row { related_tag_name: store.tags.name[t as usize].to_string(), count };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn busy_tag(s: &Store) -> String {
        let t = (0..s.tags.len() as Ix).max_by_key(|&t| s.tag_message.degree(t)).unwrap();
        s.tags.name[t as usize].to_string()
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        let p = Params { tag: busy_tag(s) };
        assert_eq!(run(s, &p), run_naive(s, &p));
    }

    #[test]
    fn given_tag_excluded() {
        let s = testutil::store();
        let name = busy_tag(s);
        let rows = run(s, &Params { tag: name.clone() });
        assert!(rows.iter().all(|r| r.related_tag_name != name));
    }

    #[test]
    fn sorted_by_count_then_name() {
        let s = testutil::store();
        let rows = run(s, &Params { tag: busy_tag(s) });
        for w in rows.windows(2) {
            assert!(
                w[0].count > w[1].count
                    || (w[0].count == w[1].count && w[0].related_tag_name <= w[1].related_tag_name)
            );
        }
    }

    #[test]
    fn unknown_tag_yields_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { tag: "Void".into() }).is_empty());
    }
}
