//! BI 22 — *International dialog* (reconstructed).
//!
//! For person pairs across two countries, score their interaction:
//! `4` per direct reply in either direction, `10` if they know each
//! other, `1` per like in either direction. For each City of the first
//! country, report the top-scoring pair involving a resident of that
//! city.
//!
//! Reconstruction note: the supplied extraction elides this query; the
//! weights (reply 4, knows 10, like 1) and the per-city maximisation
//! follow the official v0.3.x shape, documented here because exact
//! constants may differ from the official text.

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store, NONE};

/// Parameters of BI 22.
#[derive(Clone, Debug)]
pub struct Params {
    /// First country name (cities reported come from here).
    pub country1: String,
    /// Second country name.
    pub country2: String,
}

/// One result row of BI 22.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person of country 1.
    pub person1_id: u64,
    /// Person of country 2.
    pub person2_id: u64,
    /// City (of person 1) this row represents.
    pub city1_name: String,
    /// Interaction score.
    pub score: u64,
}

const LIMIT: usize = 100;
const W_REPLY: u64 = 4;
const W_KNOWS: u64 = 10;
const W_LIKE: u64 = 1;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64, u64) {
    (std::cmp::Reverse(row.score), row.person1_id, row.person2_id)
}

/// Accumulates pairwise scores between residents of the two countries,
/// starting from the country populations (CP-2.1: the country filter is
/// far more selective than scanning every message/like/edge). The two
/// countries must be distinct; equal countries yield no pairs.
fn pair_scores(store: &Store, ctx: &QueryContext, c1: Ix, c2: Ix) -> FxHashMap<(Ix, Ix), u64> {
    let mut scores: FxHashMap<(Ix, Ix), u64> = FxHashMap::default();
    if c1 == c2 {
        return scores;
    }
    let merge_into = |into: &mut FxHashMap<(Ix, Ix), u64>, from: FxHashMap<(Ix, Ix), u64>| {
        for (k, w) in from {
            *into.entry(k).or_insert(0) += w;
        }
    };
    // Outbound actions of each side toward the other; the key is always
    // (country1 person, country2 person). Each side's residents fan out
    // as morsels; per-pair weights are additive, so the merge order is
    // immaterial to the result.
    for (home, other, swapped) in [(c1, c2, false), (c2, c1, true)] {
        let residents: Vec<Ix> = store.persons_in_country(home).collect();
        let partial = ctx.par_map_reduce(
            residents.len(),
            FxHashMap::<(Ix, Ix), u64>::default,
            |acc, range| {
                for &a in &residents[range] {
                    let add = |b: Ix, w: u64, acc: &mut FxHashMap<(Ix, Ix), u64>| {
                        let key = if swapped { (b, a) } else { (a, b) };
                        *acc.entry(key).or_insert(0) += w;
                    };
                    for c in store.person_messages.targets_of(a) {
                        let parent = store.messages.reply_of[c as usize];
                        if parent == NONE {
                            continue;
                        }
                        let b = store.messages.creator[parent as usize];
                        if store.person_country(b) == other {
                            add(b, W_REPLY, acc);
                        }
                    }
                    for (m, _) in store.person_likes.neighbors(a) {
                        let b = store.messages.creator[m as usize];
                        if store.person_country(b) == other {
                            add(b, W_LIKE, acc);
                        }
                    }
                }
            },
            merge_into,
        );
        merge_into(&mut scores, partial);
    }
    // Friendships: iterate only country1's residents.
    for a in store.persons_in_country(c1) {
        for b in store.knows.targets_of(a) {
            if store.person_country(b) == c2 {
                *scores.entry((a, b)).or_insert(0) += W_KNOWS;
            }
        }
    }
    scores
}

fn rows_from_scores(store: &Store, scores: FxHashMap<(Ix, Ix), u64>) -> Vec<Row> {
    // Best pair per city of country1.
    let mut best: FxHashMap<Ix, Row> = FxHashMap::default();
    let mut entries: Vec<((Ix, Ix), u64)> = scores.into_iter().collect();
    // Deterministic iteration for tie handling: lowest ids win ties.
    entries
        .sort_by_key(|&((a, b), _)| (store.persons.id[a as usize], store.persons.id[b as usize]));
    for ((a, b), score) in entries {
        let city = store.persons.city[a as usize];
        let row = Row {
            person1_id: store.persons.id[a as usize],
            person2_id: store.persons.id[b as usize],
            city1_name: store.places.name[city as usize].to_string(),
            score,
        };
        match best.get(&city) {
            Some(cur) if cur.score >= score => {}
            _ => {
                best.insert(city, row);
            }
        }
    }
    best.into_values().collect()
}

/// Optimized implementation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(c1), Ok(c2)) =
        (store.country_by_name(&params.country1), store.country_by_name(&params.country2))
    else {
        return Vec::new();
    };
    let mut tk = TopK::new(LIMIT);
    for row in rows_from_scores(store, pair_scores(store, ctx, c1, c2)) {
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: scores every candidate pair by direct probing.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(c1), Ok(c2)) =
        (store.country_by_name(&params.country1), store.country_by_name(&params.country2))
    else {
        return Vec::new();
    };
    let p1: Vec<Ix> = store.persons_in_country(c1).collect();
    let p2: Vec<Ix> = store.persons_in_country(c2).collect();
    let mut scores: FxHashMap<(Ix, Ix), u64> = FxHashMap::default();
    for &a in &p1 {
        for &b in &p2 {
            let mut score = 0u64;
            if store.knows.contains(a, b) {
                score += W_KNOWS;
            }
            for (who, other) in [(a, b), (b, a)] {
                // Replies who -> other.
                for c in store.person_messages.targets_of(who) {
                    let parent = store.messages.reply_of[c as usize];
                    if parent != NONE && store.messages.creator[parent as usize] == other {
                        score += W_REPLY;
                    }
                }
                // Likes who -> other.
                for (m, _) in store.person_likes.neighbors(who) {
                    if store.messages.creator[m as usize] == other {
                        score += W_LIKE;
                    }
                }
            }
            if score > 0 {
                scores.insert((a, b), score);
            }
        }
    }
    let items: Vec<_> =
        rows_from_scores(store, scores).into_iter().map(|r| (sort_key(&r), r)).collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params { country1: "China".into(), country2: "India".into() }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
    }

    #[test]
    fn at_most_one_row_per_city() {
        let s = testutil::store();
        let rows = run(s, &params());
        let mut cities: Vec<&str> = rows.iter().map(|r| r.city1_name.as_str()).collect();
        let before = cities.len();
        cities.sort_unstable();
        cities.dedup();
        assert_eq!(before, cities.len());
    }

    #[test]
    fn persons_on_correct_sides() {
        let s = testutil::store();
        let c1 = s.country_by_name("China").unwrap();
        let c2 = s.country_by_name("India").unwrap();
        for r in run(s, &params()) {
            let a = s.person(r.person1_id).unwrap();
            let b = s.person(r.person2_id).unwrap();
            assert_eq!(s.person_country(a), c1);
            assert_eq!(s.person_country(b), c2);
            assert!(r.score > 0);
        }
    }

    #[test]
    fn swapping_countries_mirrors_pairs() {
        let s = testutil::store();
        let ab: u64 = run(s, &params()).iter().map(|r| r.score).sum();
        let ba: u64 = run(s, &Params { country1: "India".into(), country2: "China".into() })
            .iter()
            .map(|r| r.score)
            .sum();
        // Not necessarily equal (per-city maximisation differs) but both
        // must be derived from the same symmetric pair scores; a crude
        // sanity bound: both zero or both positive.
        assert_eq!(ab > 0, ba > 0);
    }
}
