//! BI 4 — *Popular topics in a country* (reconstructed).
//!
//! Forums located in a given country (a Forum's location is its
//! moderator's location) that contain at least one Post with a Tag of a
//! given TagClass (direct `hasType`, not transitive); per forum, count
//! the posts carrying such tags.

use snb_engine::topk::sort_truncate;
use snb_engine::QueryContext;
use snb_store::{Ix, Store};

use crate::common::has_tag_of_class;

/// Parameters of BI 4.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tag-class name.
    pub tag_class: String,
    /// Country name.
    pub country: String,
}

/// One result row of BI 4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Forum id.
    pub forum_id: u64,
    /// Forum title.
    pub forum_title: String,
    /// Forum creation timestamp.
    pub forum_creation_date: snb_core::DateTime,
    /// Moderator person id.
    pub moderator_id: u64,
    /// Posts in the forum with a tag of the class.
    pub post_count: u64,
}

const LIMIT: usize = 20;

type Key = (std::cmp::Reverse<u64>, u64);

fn sort_key(row: &Row) -> Key {
    (std::cmp::Reverse(row.post_count), row.forum_id)
}

/// Optimized implementation: iterate forums moderated from the country,
/// count matching posts via the forum→posts CSR.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: parallel
/// forum scan with per-worker bounded top-k heaps merged in worker
/// order (the sort key is total, so the merge is order-insensitive).
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(class), Ok(country)) =
        (store.tag_class_named(&params.tag_class), store.country_by_name(&params.country))
    else {
        return Vec::new();
    };
    let tk = ctx.par_topk(store.forums.len(), LIMIT, |tk, range| {
        for f in range.start as Ix..range.end as Ix {
            let moderator = store.forums.moderator[f as usize];
            if store.person_country(moderator) != country {
                continue;
            }
            let count = store
                .forum_posts
                .targets_of(f)
                .filter(|&post| has_tag_of_class(store, post, class))
                .count() as u64;
            if count == 0 {
                continue;
            }
            let row = Row {
                forum_id: store.forums.id[f as usize],
                forum_title: store.forums.title[f as usize].to_string(),
                forum_creation_date: store.forums.creation_date[f as usize],
                moderator_id: store.persons.id[moderator as usize],
                post_count: count,
            };
            tk.push(sort_key(&row), row);
        }
    });
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: post-major scan, aggregating per forum.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(class), Ok(country)) =
        (store.tag_class_named(&params.tag_class), store.country_by_name(&params.country))
    else {
        return Vec::new();
    };
    let mut counts: rustc_hash::FxHashMap<Ix, u64> = rustc_hash::FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        if !store.messages.is_post(m) {
            continue;
        }
        let f = store.messages.forum[m as usize];
        let moderator = store.forums.moderator[f as usize];
        if store.person_country(moderator) != country {
            continue;
        }
        if has_tag_of_class(store, m, class) {
            *counts.entry(f).or_insert(0) += 1;
        }
    }
    let items: Vec<(Key, Row)> = counts
        .into_iter()
        .map(|(f, count)| {
            let moderator = store.forums.moderator[f as usize];
            let row = Row {
                forum_id: store.forums.id[f as usize],
                forum_title: store.forums.title[f as usize].to_string(),
                forum_creation_date: store.forums.creation_date[f as usize],
                moderator_id: store.persons.id[moderator as usize],
                post_count: count,
            };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params { tag_class: "MusicalArtist".into(), country: "China".into() }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
        let p2 = Params { tag_class: "Scientist".into(), country: "India".into() };
        assert_eq!(run(s, &p2), run_naive(s, &p2));
    }

    #[test]
    fn limit_is_20_and_sorted() {
        let s = testutil::store();
        let rows = run(s, &params());
        assert!(rows.len() <= 20);
        for w in rows.windows(2) {
            assert!(
                w[0].post_count > w[1].post_count
                    || (w[0].post_count == w[1].post_count && w[0].forum_id < w[1].forum_id)
            );
        }
    }

    #[test]
    fn counts_are_positive_and_moderators_in_country() {
        let s = testutil::store();
        let country = s.country_by_name("China").unwrap();
        for r in run(s, &params()) {
            assert!(r.post_count > 0);
            let m = s.person(r.moderator_id).unwrap();
            assert_eq!(s.person_country(m), country);
        }
    }

    #[test]
    fn unknown_inputs_yield_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { tag_class: "NoClass".into(), country: "China".into() }).is_empty());
        assert!(
            run(s, &Params { tag_class: "Person".into(), country: "Nowhere".into() }).is_empty()
        );
    }
}
