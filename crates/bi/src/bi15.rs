//! BI 15 — *Social normals* (reconstructed).
//!
//! For a given Country, compute the "social normal": the floor of the
//! average number of same-country friends of the country's residents.
//! Return the residents whose same-country friend count equals it.

use snb_engine::topk::sort_truncate;
use snb_engine::QueryContext;
use snb_store::{Ix, Store};

use crate::common::persons_of_country;

/// Parameters of BI 15.
#[derive(Clone, Debug)]
pub struct Params {
    /// Country name.
    pub country: String,
}

/// One result row of BI 15.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// Same-country friend count (equals the social normal).
    pub count: u64,
}

const LIMIT: usize = 100;

fn in_country_degree(store: &Store, p: Ix, country: Ix) -> u64 {
    store.knows.targets_of(p).filter(|&f| store.person_country(f) == country).count() as u64
}

/// Optimized implementation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// per-resident friend counting runs as an order-preserving parallel
/// scan (`par_scan` stitches morsel outputs back in resident order).
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let residents = persons_of_country(store, country);
    if residents.is_empty() {
        return Vec::new();
    }
    let metrics = ctx.metrics();
    let counts: Vec<u64> = ctx.par_scan(residents.len(), |out, range| {
        let mut edges = 0u64;
        for &p in &residents[range] {
            let mut degree = 0u64;
            for f in store.knows.targets_of(p) {
                edges += 1;
                if store.person_country(f) == country {
                    degree += 1;
                }
            }
            out.push(degree);
        }
        metrics.note_edges(edges);
    });
    let normal = counts.iter().sum::<u64>() / residents.len() as u64;
    let mut rows: Vec<Row> = residents
        .iter()
        .zip(&counts)
        .filter(|&(_, &c)| c == normal)
        .map(|(&p, &c)| Row { person_id: store.persons.id[p as usize], count: c })
        .collect();
    rows.sort_by_key(|r| r.person_id);
    rows.truncate(LIMIT);
    rows
}

/// Naive reference: recomputes the per-person counts from scratch and
/// filters with a full sort.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let mut residents = Vec::new();
    for p in 0..store.persons.len() as Ix {
        if store.person_country(p) == country {
            residents.push(p);
        }
    }
    if residents.is_empty() {
        return Vec::new();
    }
    let total: u64 = residents.iter().map(|&p| in_country_degree(store, p, country)).sum();
    let normal = total / residents.len() as u64;
    let items: Vec<_> = residents
        .into_iter()
        .filter(|&p| in_country_degree(store, p, country) == normal)
        .map(|p| {
            let row = Row { person_id: store.persons.id[p as usize], count: normal };
            (row.person_id, row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        for c in ["China", "India", "Germany", "Sweden"] {
            let p = Params { country: c.into() };
            assert_eq!(run(s, &p), run_naive(s, &p), "{c}");
        }
    }

    #[test]
    fn all_rows_share_the_normal_value() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "China".into() });
        if let Some(first) = rows.first() {
            assert!(rows.iter().all(|r| r.count == first.count));
        }
    }

    #[test]
    fn sorted_by_person_id() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "India".into() });
        for w in rows.windows(2) {
            assert!(w[0].person_id < w[1].person_id);
        }
    }

    #[test]
    fn counts_match_independent_recount() {
        let s = testutil::store();
        let country = s.country_by_name("China").unwrap();
        for r in run(s, &Params { country: "China".into() }) {
            let p = s.person(r.person_id).unwrap();
            let recount =
                s.knows.targets_of(p).filter(|&f| s.person_country(f) == country).count() as u64;
            assert_eq!(recount, r.count);
        }
    }
}
