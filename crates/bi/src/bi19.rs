//! BI 19 — *Stranger's interaction* (reconstructed).
//!
//! *Strangers* of a person are other persons they do not know who are
//! members of at least one forum tagged with a tag of `tag_class1`
//! *and* at least one forum tagged with a tag of `tag_class2` (direct
//! class relation). For each Person born after a given date, count
//! their direct reply Comments to strangers' Messages and the number of
//! distinct strangers interacted with; report persons with at least
//! one interaction.

use rustc_hash::{FxHashMap, FxHashSet};
use snb_core::Date;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store, NONE};

/// Parameters of BI 19.
#[derive(Clone, Debug)]
pub struct Params {
    /// Persons born strictly after this date qualify.
    pub date: Date,
    /// First tag-class name.
    pub tag_class1: String,
    /// Second tag-class name.
    pub tag_class2: String,
}

/// One result row of BI 19.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// Distinct strangers the person replied to.
    pub stranger_count: u64,
    /// Reply comments to strangers' messages.
    pub interaction_count: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64) {
    (std::cmp::Reverse(row.interaction_count), row.person_id)
}

/// Marks persons who are members of ≥1 forum tagged with each class.
fn class_members(store: &Store, c1: Ix, c2: Ix) -> Vec<bool> {
    let forum_has_class = |f: Ix, class: Ix| {
        store.forum_tag.targets_of(f).any(|t| store.tags.class[t as usize] == class)
    };
    let mut in1 = vec![false; store.persons.len()];
    let mut in2 = vec![false; store.persons.len()];
    for f in 0..store.forums.len() as Ix {
        let h1 = forum_has_class(f, c1);
        let h2 = forum_has_class(f, c2);
        if !h1 && !h2 {
            continue;
        }
        for p in store.forum_member.targets_of(f) {
            if h1 {
                in1[p as usize] = true;
            }
            if h2 {
                in2[p as usize] = true;
            }
        }
    }
    in1.iter().zip(&in2).map(|(&a, &b)| a && b).collect()
}

/// Optimized implementation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// stranger-candidate bitmap is built once, then the comment scan runs
/// as parallel morsels merging (stranger set, interaction count) pairs.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(c1), Ok(c2)) =
        (store.tag_class_named(&params.tag_class1), store.tag_class_named(&params.tag_class2))
    else {
        return Vec::new();
    };
    let candidate_stranger = class_members(store, c1, c2);
    let acc = ctx.par_map_reduce(
        store.messages.len(),
        FxHashMap::<Ix, (FxHashSet<Ix>, u64)>::default,
        |acc, range| {
            for c in range.start as Ix..range.end as Ix {
                let parent = store.messages.reply_of[c as usize];
                if parent == NONE {
                    continue;
                }
                let replier = store.messages.creator[c as usize];
                if store.persons.birthday[replier as usize] <= params.date {
                    continue;
                }
                let author = store.messages.creator[parent as usize];
                if author == replier || !candidate_stranger[author as usize] {
                    continue;
                }
                if store.knows.contains(replier, author) {
                    continue;
                }
                let e = acc.entry(replier).or_default();
                e.0.insert(author);
                e.1 += 1;
            }
        },
        |into, from| {
            for (k, (strangers, n)) in from {
                let e = into.entry(k).or_default();
                e.0.extend(strangers);
                e.1 += n;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (p, (strangers, interactions)) in acc {
        let row = Row {
            person_id: store.persons.id[p as usize],
            stranger_count: strangers.len() as u64,
            interaction_count: interactions,
        };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: person-major with per-pair stranger re-testing.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(c1), Ok(c2)) =
        (store.tag_class_named(&params.tag_class1), store.tag_class_named(&params.tag_class2))
    else {
        return Vec::new();
    };
    let is_stranger_candidate = |p: Ix| {
        let member_of = |class: Ix| {
            store.member_forum.targets_of(p).any(|f| {
                store.forum_tag.targets_of(f).any(|t| store.tags.class[t as usize] == class)
            })
        };
        member_of(c1) && member_of(c2)
    };
    let mut items = Vec::new();
    for p in 0..store.persons.len() as Ix {
        if store.persons.birthday[p as usize] <= params.date {
            continue;
        }
        let friends: FxHashSet<Ix> = store.knows.targets_of(p).collect();
        let mut strangers = FxHashSet::default();
        let mut interactions = 0u64;
        for c in store.person_messages.targets_of(p) {
            let parent = store.messages.reply_of[c as usize];
            if parent == NONE {
                continue;
            }
            let author = store.messages.creator[parent as usize];
            if author == p || friends.contains(&author) || !is_stranger_candidate(author) {
                continue;
            }
            strangers.insert(author);
            interactions += 1;
        }
        if interactions == 0 {
            continue;
        }
        let row = Row {
            person_id: store.persons.id[p as usize],
            stranger_count: strangers.len() as u64,
            interaction_count: interactions,
        };
        items.push((sort_key(&row), row));
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params {
            date: Date::from_ymd(1984, 1, 1),
            tag_class1: "MusicalArtist".into(),
            tag_class2: "Band".into(),
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
        let p2 = Params {
            date: Date::from_ymd(1980, 1, 1),
            tag_class1: "Scientist".into(),
            tag_class2: "Writer".into(),
        };
        assert_eq!(run(s, &p2), run_naive(s, &p2));
    }

    #[test]
    fn stranger_count_bounded_by_interactions() {
        let s = testutil::store();
        for r in run(s, &params()) {
            assert!(r.stranger_count <= r.interaction_count);
            assert!(r.interaction_count > 0);
        }
    }

    #[test]
    fn birthday_filter_applies() {
        let s = testutil::store();
        let p = Params { date: Date::from_ymd(1996, 1, 1), ..params() };
        // Everyone is born 1980-1995, so no repliers qualify.
        assert!(run(s, &p).is_empty());
    }

    #[test]
    fn sorted_desc() {
        let s = testutil::store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }
}
