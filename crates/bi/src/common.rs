//! Helpers shared across the BI query implementations.

use std::borrow::Cow;

use snb_core::datetime::DateTime;
use snb_core::Date;
use snb_engine::QueryMetrics;
use snb_store::{Ix, PartitionedStore, Store, NONE};

/// The language of a message per BI 18: a Post's own `language`
/// attribute; a Comment inherits the language of the Post at the root
/// of its thread.
pub fn thread_language(store: &Store, m: Ix) -> &str {
    let root = store.messages.root_post[m as usize];
    &store.messages.language[root as usize]
}

/// Number of likes a message has received.
pub fn like_count(store: &Store, m: Ix) -> u64 {
    store.message_likes.degree(m) as u64
}

/// Whether message `m` carries tag `t`.
pub fn has_tag(store: &Store, m: Ix, t: Ix) -> bool {
    store.message_tag.targets_of(m).any(|x| x == t)
}

/// Whether message `m` carries at least one tag whose *direct* class is
/// `class` (the "direct relation, not transitive" reading of BI 4/16).
pub fn has_tag_of_class(store: &Store, m: Ix, class: Ix) -> bool {
    store.message_tag.targets_of(m).any(|t| store.tags.class[t as usize] == class)
}

/// Whether message `m` carries a tag whose class lies in the subtree of
/// `class` (the transitive reading of BI 20).
pub fn has_tag_in_class_subtree(store: &Store, m: Ix, class: Ix) -> bool {
    store.message_tag.targets_of(m).any(|t| store.tag_in_class_subtree(t, class))
}

/// All message indices created strictly before `t` — a binary-searched
/// prefix of the store's date permutation index when it is fresh, or a
/// linear-scan fallback after streamed inserts. The slice form is what
/// the parallel primitives chunk over.
///
/// The chosen access path is recorded on `metrics`: an index hit with
/// the window size, or a fallback with the full message count scanned.
/// Callers without a query context pass [`QueryMetrics::sink`].
pub fn messages_before<'s>(store: &'s Store, metrics: &QueryMetrics, t: DateTime) -> Cow<'s, [Ix]> {
    match store.messages_created_before(t) {
        Some(window) => {
            metrics.note_index_hit(window.len() as u64);
            Cow::Borrowed(window)
        }
        None => {
            metrics.note_index_fallback(store.messages.len() as u64);
            Cow::Owned(
                (0..store.messages.len() as Ix)
                    .filter(|&m| store.messages.creation_date[m as usize] < t)
                    .collect(),
            )
        }
    }
}

/// All message indices created strictly after `t` (same index-or-scan
/// contract and metrics recording as [`messages_before`]).
pub fn messages_after<'s>(store: &'s Store, metrics: &QueryMetrics, t: DateTime) -> Cow<'s, [Ix]> {
    match store.messages_created_after(t) {
        Some(window) => {
            metrics.note_index_hit(window.len() as u64);
            Cow::Borrowed(window)
        }
        None => {
            metrics.note_index_fallback(store.messages.len() as u64);
            Cow::Owned(
                (0..store.messages.len() as Ix)
                    .filter(|&m| store.messages.creation_date[m as usize] > t)
                    .collect(),
            )
        }
    }
}

/// All message indices created in the half-open window `[lo, hi)`
/// (same index-or-scan contract and metrics recording as
/// [`messages_before`]).
pub fn messages_in<'s>(
    store: &'s Store,
    metrics: &QueryMetrics,
    lo: DateTime,
    hi: DateTime,
) -> Cow<'s, [Ix]> {
    match store.messages_created_in(lo, hi) {
        Some(window) => {
            metrics.note_index_hit(window.len() as u64);
            Cow::Borrowed(window)
        }
        None => {
            metrics.note_index_fallback(store.messages.len() as u64);
            Cow::Owned(
                (0..store.messages.len() as Ix)
                    .filter(|&m| {
                        let t = store.messages.creation_date[m as usize];
                        t >= lo && t < hi
                    })
                    .collect(),
            )
        }
    }
}

/// The `[lo, hi)` message window of a partitioned store, composed from
/// the per-shard date indexes: each shard contributes its
/// binary-searched range and the ranges k-way-merge on the global
/// `(creation_date, ix)` key — byte-identical to [`messages_in`] over
/// the same store, for any partition count.
///
/// With one shard the global index is the shard index, so this
/// delegates to the borrowed fast path; with stale shard indexes it
/// falls back exactly like [`messages_in`] does. Index hits are
/// recorded with the summed per-shard window sizes.
pub fn messages_in_sharded<'s>(
    store: &'s PartitionedStore,
    metrics: &QueryMetrics,
    lo: DateTime,
    hi: DateTime,
) -> Cow<'s, [Ix]> {
    if store.partitions() <= 1 {
        return messages_in(store, metrics, lo, hi);
    }
    match store.merged_window(lo, hi) {
        Some(window) => {
            metrics.note_index_hit(window.len() as u64);
            Cow::Owned(window)
        }
        None => messages_in(store, metrics, lo, hi),
    }
}

/// Per-shard slice of [`messages_in_sharded`]'s window for shard `p` —
/// what a shard-local operator scans. `None` when the shard date
/// indexes are stale (callers fall back to the global helpers).
pub fn shard_messages_in<'s>(
    store: &'s PartitionedStore,
    metrics: &QueryMetrics,
    p: usize,
    lo: DateTime,
    hi: DateTime,
) -> Option<&'s [Ix]> {
    let window = store.shard_messages_in(p, lo, hi)?;
    metrics.note_index_hit(window.len() as u64);
    Some(window)
}

/// Half-open `[lo, hi)` timestamp window covering the *inclusive* day
/// range `[start, end]` — the convention every dated BI parameter pair
/// uses.
pub fn day_range_window(start: Date, end: Date) -> (DateTime, DateTime) {
    (start.at_midnight(), end.plus_days(1).at_midnight())
}

/// Half-open `[lo, hi)` timestamp window covering the calendar month
/// `year-month`.
pub fn month_window(year: i32, month: u32) -> (DateTime, DateTime) {
    let start = Date::from_ymd(year, month, 1);
    let (ny, nm) = next_month(year, month);
    (start.at_midnight(), Date::from_ymd(ny, nm, 1).at_midnight())
}

/// The calendar month following `(year, month)`, handling the December
/// rollover.
pub fn next_month(year: i32, month: u32) -> (i32, u32) {
    if month == 12 {
        (year + 1, 1)
    } else {
        (year, month + 1)
    }
}

/// Simulation-end anchor for the BI 2 age-group calculation.
pub const AGE_ANCHOR: (i32, u32, u32) = (2013, 1, 1);

/// Whole calendar years between `bday` and the simulation-end anchor
/// (2013-01-01): the calendar year difference, minus one when the
/// birthday has not yet occurred by the anchor date. A leap-day
/// birthday (Feb 29) counts as passed on Mar 1 of common years.
pub fn age_years(bday: Date) -> i32 {
    let (by, bm, bd) = bday.to_ymd();
    let mut years = AGE_ANCHOR.0 - by;
    if (AGE_ANCHOR.1, AGE_ANCHOR.2) < (bm, bd) {
        years -= 1;
    }
    years
}

/// Age group per BI 2: floor of whole years between the birthday and
/// the simulation end (2013-01-01), in 5-year buckets.
pub fn age_group(store: &Store, p: Ix) -> i32 {
    age_years(store.persons.birthday[p as usize]) / 5
}

/// All persons located in `country` (any of its cities), as a vector.
pub fn persons_of_country(store: &Store, country: Ix) -> Vec<Ix> {
    store.persons_in_country(country).collect()
}

/// Whether a person is located in `country`.
pub fn person_in_country(store: &Store, p: Ix, country: Ix) -> bool {
    store.person_country(p) == country
}

/// Size of the reply tree rooted at message `m` (inclusive), counting
/// only messages that satisfy `keep`.
pub fn thread_size(store: &Store, root: Ix, keep: impl Fn(Ix) -> bool) -> u64 {
    let mut count = 0;
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        if keep(m) {
            count += 1;
        }
        stack.extend(store.message_replies.targets_of(m));
    }
    count
}

/// Whether `forum` is a valid forum index (guards `NONE` columns).
pub fn valid_forum(f: Ix) -> bool {
    f != NONE
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A shared store for the per-query unit tests: built once per test
    //! binary (the generator is deterministic, so every test sees the
    //! same graph).

    use snb_datagen::GeneratorConfig;
    use snb_store::{store_for_config, Store};
    use std::sync::OnceLock;

    /// The shared tiny store (150 persons, full window).
    pub fn store() -> &'static Store {
        static STORE: OnceLock<Store> = OnceLock::new();
        STORE.get_or_init(|| {
            let mut c = GeneratorConfig::for_scale_name("0.001").expect("scale exists");
            c.persons = 150;
            store_for_config(&c)
        })
    }

    /// A mid-window timestamp useful as a default date parameter.
    pub fn mid_date() -> snb_core::Date {
        snb_core::Date::from_ymd(2011, 7, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::store;

    #[test]
    fn thread_language_inherits_from_root() {
        let s = store();
        for m in 0..s.messages.len() as Ix {
            if !s.messages.is_post(m) {
                let root = s.messages.root_post[m as usize];
                assert_eq!(thread_language(s, m), &s.messages.language[root as usize]);
            }
        }
    }

    #[test]
    fn thread_size_counts_inclusive() {
        let s = store();
        let post = (0..s.messages.len() as Ix).find(|&m| s.messages.is_post(m)).unwrap();
        let all = thread_size(s, post, |_| true);
        assert!(all >= 1);
        let none = thread_size(s, post, |_| false);
        assert_eq!(none, 0);
    }

    #[test]
    fn messages_before_after_partition() {
        let s = store();
        let t = testutil::mid_date().at_midnight();
        let m = QueryMetrics::sink();
        let before = messages_before(s, m, t).len();
        let after = messages_after(s, m, t).len();
        let at = (0..s.messages.len() as Ix)
            .filter(|&m| s.messages.creation_date[m as usize] == t)
            .count();
        assert_eq!(before + after + at, s.messages.len());
    }

    #[test]
    fn window_helpers_are_half_open() {
        let (lo, hi) = day_range_window(Date::from_ymd(2011, 3, 1), Date::from_ymd(2011, 3, 31));
        assert_eq!((lo, hi), month_window(2011, 3));
        assert_eq!(next_month(2011, 12), (2012, 1));
        assert_eq!(next_month(2011, 1), (2011, 2));
        let s = store();
        let m = QueryMetrics::sink();
        let in_window = messages_before(s, m, hi).len() - messages_before(s, m, lo).len();
        let scanned = (0..s.messages.len())
            .filter(|&m| {
                let t = s.messages.creation_date[m];
                t >= lo && t < hi
            })
            .count();
        assert_eq!(in_window, scanned);
    }

    #[test]
    fn sharded_window_is_byte_identical_to_global() {
        let mut c = snb_datagen::GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 150;
        let (lo, hi) = month_window(2011, 6);
        let m = QueryMetrics::sink();
        for parts in [1usize, 2, 4] {
            let ps = PartitionedStore::new(snb_store::store_for_config(&c), parts);
            let global = messages_in(&ps, m, lo, hi).into_owned();
            let sharded = messages_in_sharded(&ps, m, lo, hi).into_owned();
            assert_eq!(sharded, global, "parts={parts}");
            // The per-shard slices cover the window exactly once.
            let total: usize =
                (0..parts).map(|p| shard_messages_in(&ps, m, p, lo, hi).unwrap().len()).sum();
            assert_eq!(total, global.len(), "parts={parts}");
            // Degenerate window stays empty through the sharded path.
            assert!(messages_in_sharded(&ps, m, hi, lo).is_empty());
        }
    }

    #[test]
    fn sharded_window_falls_back_when_stale() {
        // Streamed inserts without a rebuild leave both index levels
        // stale; the sharded helper must agree with the global fallback.
        let mut c = snb_datagen::GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 100;
        let (s, events) = snb_store::bulk_store_and_stream(&c);
        let world = snb_datagen::dictionaries::StaticWorld::build(c.seed);
        let mut ps = PartitionedStore::new(s, 2);
        for e in events.iter().take(events.len() / 2) {
            ps.apply_event(e, &world).unwrap();
        }
        let (lo, hi) = month_window(2012, 1);
        let m = QueryMetrics::sink();
        let global = messages_in(&ps, m, lo, hi).into_owned();
        let sharded = messages_in_sharded(&ps, m, lo, hi).into_owned();
        assert_eq!(sharded, global);
        assert!(shard_messages_in(&ps, m, 0, lo, hi).is_none() || ps.shard_date_fresh());
    }

    #[test]
    fn age_years_exact_at_year_boundaries() {
        // The regression the old `(anchor - bday) / 366` floor missed:
        // a 1990-01-01 birthday is a 8401-day span and exactly 23 whole
        // years by 2013-01-01 (the old code said 22).
        assert_eq!(age_years(Date::from_ymd(1990, 1, 1)), 23);
        // Birthday one day after the anchor's month/day: not yet passed.
        assert_eq!(age_years(Date::from_ymd(1990, 1, 2)), 22);
        // Day before the anchor within the prior year: passed.
        assert_eq!(age_years(Date::from_ymd(1989, 12, 31)), 23);
        // Anchor-day birthday counts the full year.
        assert_eq!(age_years(Date::from_ymd(2013, 1, 1)), 0);
        assert_eq!(age_years(Date::from_ymd(2012, 12, 31)), 0);
    }

    #[test]
    fn age_years_leap_day_birthday() {
        // Feb 29 birthdays: by the 2013-01-01 anchor the 2012-02-29
        // birthday has passed, so 1988-02-29 is exactly 24.
        assert_eq!(age_years(Date::from_ymd(1988, 2, 29)), 24);
        assert_eq!(age_years(Date::from_ymd(2012, 2, 29)), 0);
    }

    #[test]
    fn age_group_buckets_at_boundaries() {
        // 25 years (1988-01-01) lands in group 5; one day later the age
        // is 24 and the group drops to 4.
        assert_eq!(age_years(Date::from_ymd(1988, 1, 1)) / 5, 5);
        assert_eq!(age_years(Date::from_ymd(1988, 1, 2)) / 5, 4);
        // Every stored person gets a non-negative group.
        let s = store();
        for p in 0..s.persons.len() as Ix {
            assert!(age_group(s, p) >= 0);
        }
    }
}
