//! Helpers shared across the BI query implementations.

use snb_core::datetime::DateTime;
use snb_store::{Ix, Store, NONE};

/// The language of a message per BI 18: a Post's own `language`
/// attribute; a Comment inherits the language of the Post at the root
/// of its thread.
pub fn thread_language(store: &Store, m: Ix) -> &str {
    let root = store.messages.root_post[m as usize];
    &store.messages.language[root as usize]
}

/// Number of likes a message has received.
pub fn like_count(store: &Store, m: Ix) -> u64 {
    store.message_likes.degree(m) as u64
}

/// Whether message `m` carries tag `t`.
pub fn has_tag(store: &Store, m: Ix, t: Ix) -> bool {
    store.message_tag.targets_of(m).any(|x| x == t)
}

/// Whether message `m` carries at least one tag whose *direct* class is
/// `class` (the "direct relation, not transitive" reading of BI 4/16).
pub fn has_tag_of_class(store: &Store, m: Ix, class: Ix) -> bool {
    store.message_tag.targets_of(m).any(|t| store.tags.class[t as usize] == class)
}

/// Whether message `m` carries a tag whose class lies in the subtree of
/// `class` (the transitive reading of BI 20).
pub fn has_tag_in_class_subtree(store: &Store, m: Ix, class: Ix) -> bool {
    store.message_tag.targets_of(m).any(|t| store.tag_in_class_subtree(t, class))
}

/// All message indices created strictly before `t`.
pub fn messages_before(store: &Store, t: DateTime) -> impl Iterator<Item = Ix> + '_ {
    (0..store.messages.len() as Ix).filter(move |&m| store.messages.creation_date[m as usize] < t)
}

/// All message indices created strictly after `t`.
pub fn messages_after(store: &Store, t: DateTime) -> impl Iterator<Item = Ix> + '_ {
    (0..store.messages.len() as Ix).filter(move |&m| store.messages.creation_date[m as usize] > t)
}

/// All persons located in `country` (any of its cities), as a vector.
pub fn persons_of_country(store: &Store, country: Ix) -> Vec<Ix> {
    store.persons_in_country(country).collect()
}

/// Whether a person is located in `country`.
pub fn person_in_country(store: &Store, p: Ix, country: Ix) -> bool {
    store.person_country(p) == country
}

/// Size of the reply tree rooted at message `m` (inclusive), counting
/// only messages that satisfy `keep`.
pub fn thread_size(store: &Store, root: Ix, keep: impl Fn(Ix) -> bool) -> u64 {
    let mut count = 0;
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        if keep(m) {
            count += 1;
        }
        stack.extend(store.message_replies.targets_of(m));
    }
    count
}

/// Whether `forum` is a valid forum index (guards `NONE` columns).
pub fn valid_forum(f: Ix) -> bool {
    f != NONE
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A shared store for the per-query unit tests: built once per test
    //! binary (the generator is deterministic, so every test sees the
    //! same graph).

    use snb_datagen::GeneratorConfig;
    use snb_store::{store_for_config, Store};
    use std::sync::OnceLock;

    /// The shared tiny store (150 persons, full window).
    pub fn store() -> &'static Store {
        static STORE: OnceLock<Store> = OnceLock::new();
        STORE.get_or_init(|| {
            let mut c = GeneratorConfig::for_scale_name("0.001").expect("scale exists");
            c.persons = 150;
            store_for_config(&c)
        })
    }

    /// A mid-window timestamp useful as a default date parameter.
    pub fn mid_date() -> snb_core::Date {
        snb_core::Date::from_ymd(2011, 7, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::store;

    #[test]
    fn thread_language_inherits_from_root() {
        let s = store();
        for m in 0..s.messages.len() as Ix {
            if !s.messages.is_post(m) {
                let root = s.messages.root_post[m as usize];
                assert_eq!(thread_language(s, m), s.messages.language[root as usize]);
            }
        }
    }

    #[test]
    fn thread_size_counts_inclusive() {
        let s = store();
        let post = (0..s.messages.len() as Ix).find(|&m| s.messages.is_post(m)).unwrap();
        let all = thread_size(s, post, |_| true);
        assert!(all >= 1);
        let none = thread_size(s, post, |_| false);
        assert_eq!(none, 0);
    }

    #[test]
    fn messages_before_after_partition() {
        let s = store();
        let t = testutil::mid_date().at_midnight();
        let before = messages_before(s, t).count();
        let after = messages_after(s, t).count();
        let at = (0..s.messages.len() as Ix)
            .filter(|&m| s.messages.creation_date[m as usize] == t)
            .count();
        assert_eq!(before + after + at, s.messages.len());
    }
}
