//! BI 6 — *Active posters of a given topic* (reconstructed).
//!
//! For every person who created a Message with the given Tag, compute
//! an activity score over those messages:
//! `score = messageCount + 2 * replyCount + 10 * likeCount`,
//! where `replyCount` counts direct replies received and `likeCount`
//! likes received.

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::has_tag;

/// Parameters of BI 6.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tag name.
    pub tag: String,
}

/// One result row of BI 6.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// Messages with the tag.
    pub message_count: u64,
    /// Direct replies those messages received.
    pub reply_count: u64,
    /// Likes those messages received.
    pub like_count: u64,
    /// Combined score.
    pub score: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64) {
    (std::cmp::Reverse(row.score), row.person_id)
}

fn make_row(store: &Store, p: Ix, msgs: u64, replies: u64, likes: u64) -> Row {
    Row {
        person_id: store.persons.id[p as usize],
        message_count: msgs,
        reply_count: replies,
        like_count: likes,
        score: msgs + 2 * replies + 10 * likes,
    }
}

/// Optimized implementation: start from the tag's reverse message index.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the tag's
/// message list is materialized once and scanned in parallel morsels.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let tagged: Vec<Ix> = store.tag_message.targets_of(tag).collect();
    let acc = ctx.par_map_reduce(
        tagged.len(),
        FxHashMap::<Ix, (u64, u64, u64)>::default,
        |acc, range| {
            for &m in &tagged[range] {
                let p = store.messages.creator[m as usize];
                let e = acc.entry(p).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += store.message_replies.degree(m) as u64;
                e.2 += store.message_likes.degree(m) as u64;
            }
        },
        |into, from| {
            for (k, (m, r, l)) in from {
                let e = into.entry(k).or_insert((0, 0, 0));
                e.0 += m;
                e.1 += r;
                e.2 += l;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (p, (msgs, replies, likes)) in acc {
        let row = make_row(store, p, msgs, replies, likes);
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: full message scan with per-message tag test.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let mut acc: FxHashMap<Ix, (u64, u64, u64)> = FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        if !has_tag(store, m, tag) {
            continue;
        }
        let p = store.messages.creator[m as usize];
        let replies = store.message_replies.targets_of(m).count() as u64;
        let likes = store.message_likes.targets_of(m).count() as u64;
        let e = acc.entry(p).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += replies;
        e.2 += likes;
    }
    let items: Vec<_> = acc
        .into_iter()
        .map(|(p, (m, r, l))| {
            let row = make_row(store, p, m, r, l);
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn busiest_tag(s: &Store) -> String {
        let t = (0..s.tags.len() as Ix).max_by_key(|&t| s.tag_message.degree(t)).unwrap();
        s.tags.name[t as usize].to_string()
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        let p = Params { tag: busiest_tag(s) };
        let rows = run(s, &p);
        assert!(!rows.is_empty());
        assert_eq!(rows, run_naive(s, &p));
    }

    #[test]
    fn score_formula_holds() {
        let s = testutil::store();
        for r in run(s, &Params { tag: busiest_tag(s) }) {
            assert_eq!(r.score, r.message_count + 2 * r.reply_count + 10 * r.like_count);
            assert!(r.message_count > 0, "person without tagged message reported");
        }
    }

    #[test]
    fn sorted_desc_by_score() {
        let s = testutil::store();
        let rows = run(s, &Params { tag: busiest_tag(s) });
        for w in rows.windows(2) {
            assert!(
                w[0].score > w[1].score
                    || (w[0].score == w[1].score && w[0].person_id < w[1].person_id)
            );
        }
    }

    #[test]
    fn unknown_tag_yields_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { tag: "NotATag".into() }).is_empty());
    }
}
