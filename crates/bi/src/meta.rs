//! Choke-point coverage metadata (spec Appendix A, Table A.1).
//!
//! Transcribed from the per-choke-point query lists in the supplied
//! spec text. CP-8.2's query list is rendered as an image in the
//! extraction; its entries are reconstructed from the per-query CP
//! lines that are present (flagged below).

/// One choke point with the queries it correlates with.
pub struct ChokePoint {
    /// Identifier, e.g. `"1.1"`.
    pub id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// Covered BI query numbers.
    pub bi: &'static [u8],
    /// Covered Interactive complex query numbers.
    pub ic: &'static [u8],
}

/// The full choke-point table (Appendix A).
pub const CHOKE_POINTS: &[ChokePoint] = &[
    ChokePoint { id: "1.1", name: "Interesting orders", bi: &[2, 4, 11, 17, 18, 19], ic: &[2, 9] },
    ChokePoint {
        id: "1.2",
        name: "High cardinality group-by",
        bi: &[1, 2, 4, 5, 6, 7, 9, 10, 12, 13, 14, 15, 16, 18, 21, 25],
        ic: &[9],
    },
    ChokePoint { id: "1.3", name: "Top-k pushdown", bi: &[2, 4, 5, 9, 16, 19, 22], ic: &[11] },
    ChokePoint {
        id: "1.4",
        name: "Low cardinality group-by",
        bi: &[8, 18, 20, 22, 23, 24],
        ic: &[],
    },
    ChokePoint {
        id: "2.1",
        name: "Rich join order optimization",
        bi: &[2, 4, 5, 9, 10, 11, 19, 20, 21, 22, 24, 25],
        ic: &[1, 3],
    },
    ChokePoint {
        id: "2.2",
        name: "Late projection",
        bi: &[4, 5, 11, 12, 13, 14, 25],
        ic: &[2, 7, 9],
    },
    ChokePoint {
        id: "2.3",
        name: "Join type selection",
        bi: &[2, 5, 6, 7, 9, 10, 11, 13, 14, 15, 16, 19, 21, 23, 24],
        ic: &[2, 4, 5, 7, 9, 10],
    },
    ChokePoint {
        id: "2.4",
        name: "Sparse foreign key joins",
        bi: &[3, 4, 5, 9, 16, 19, 21, 23, 24, 25],
        ic: &[8, 11],
    },
    ChokePoint { id: "3.1", name: "Detecting correlation", bi: &[2, 3, 11, 12, 22], ic: &[3] },
    ChokePoint {
        id: "3.2",
        name: "Dimensional clustering",
        bi: &[1, 2, 3, 7, 10, 11, 13, 14, 15, 18, 21, 24],
        ic: &[2, 8, 9],
    },
    ChokePoint {
        id: "3.3",
        name: "Scattered index access",
        bi: &[4, 5, 7, 8, 15, 16, 19, 21, 22, 23, 25],
        ic: &[5, 7, 8, 9, 10, 11, 12, 13, 14],
    },
    ChokePoint { id: "4.1", name: "Common subexpression elimination", bi: &[1, 3], ic: &[10] },
    ChokePoint { id: "4.2", name: "Complex boolean expressions", bi: &[18], ic: &[10] },
    ChokePoint { id: "4.3", name: "Low overhead expressions", bi: &[3, 18, 23, 24], ic: &[] },
    ChokePoint { id: "4.4", name: "String matching performance", bi: &[11], ic: &[] },
    ChokePoint {
        id: "5.1",
        name: "Flattening sub-queries",
        bi: &[19, 21, 22, 25],
        ic: &[3, 6, 7, 10],
    },
    ChokePoint { id: "5.2", name: "Outer/sub-query overlap", bi: &[8, 22], ic: &[10] },
    ChokePoint {
        id: "5.3",
        name: "Intra-query result reuse",
        bi: &[3, 5, 15, 16, 21, 22, 25],
        ic: &[1, 8],
    },
    ChokePoint {
        id: "6.1",
        name: "Inter-query result reuse",
        bi: &[3, 5, 7, 11, 12, 13, 15, 20],
        ic: &[10],
    },
    ChokePoint { id: "7.1", name: "Incremental path computation", bi: &[16], ic: &[10] },
    ChokePoint {
        id: "7.2",
        name: "Cardinality estimation of transitive paths",
        bi: &[14, 16, 25],
        ic: &[12, 13, 14],
    },
    ChokePoint {
        id: "7.3",
        name: "Execution of a transitive step",
        bi: &[14, 16, 19, 25],
        ic: &[12, 13, 14],
    },
    ChokePoint { id: "7.4", name: "Transitive termination criteria", bi: &[14, 19], ic: &[] },
    ChokePoint {
        id: "8.1",
        name: "Complex patterns",
        bi: &[8, 11, 14, 16, 18, 19, 20, 25],
        ic: &[7, 13, 14],
    },
    // CP-8.2's list is an image in the source; reconstructed from the
    // per-query CP lines available in the text.
    ChokePoint {
        id: "8.2",
        name: "Complex aggregations",
        bi: &[18, 21],
        ic: &[1, 3, 4, 5, 12, 14],
    },
    ChokePoint {
        id: "8.3",
        name: "Ranking-style queries",
        bi: &[11, 13, 18, 22, 25],
        ic: &[7, 14],
    },
    ChokePoint { id: "8.4", name: "Query composition", bi: &[5, 10, 15, 18, 21, 22, 25], ic: &[] },
    ChokePoint {
        id: "8.5",
        name: "Dates and times",
        bi: &[1, 2, 3, 10, 12, 13, 14, 18, 19, 21, 23, 24, 25],
        ic: &[2, 3, 4, 5, 9],
    },
    ChokePoint { id: "8.6", name: "Handling paths", bi: &[16, 25], ic: &[10, 13, 14] },
];

/// The choke points covered by a BI query.
pub fn choke_points_of_bi(query: u8) -> Vec<&'static str> {
    CHOKE_POINTS.iter().filter(|cp| cp.bi.contains(&query)).map(|cp| cp.id).collect()
}

/// The choke points covered by an Interactive complex query.
pub fn choke_points_of_ic(query: u8) -> Vec<&'static str> {
    CHOKE_POINTS.iter().filter(|cp| cp.ic.contains(&query)).map(|cp| cp.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bi_query_covers_some_choke_point() {
        for q in 1..=25u8 {
            assert!(!choke_points_of_bi(q).is_empty(), "BI {q} uncovered");
        }
    }

    #[test]
    fn every_ic_query_covers_some_choke_point() {
        for q in 1..=14u8 {
            assert!(!choke_points_of_ic(q).is_empty(), "IC {q} uncovered");
        }
    }

    #[test]
    fn query_numbers_in_range() {
        for cp in CHOKE_POINTS {
            for &q in cp.bi {
                assert!((1..=25).contains(&q), "CP {} BI {q}", cp.id);
            }
            for &q in cp.ic {
                assert!((1..=14).contains(&q), "CP {} IC {q}", cp.id);
            }
        }
    }

    #[test]
    fn spec_text_cp_lines_match_table() {
        // The queries whose CP lines survive in the supplied text; the
        // matrix must agree with them exactly.
        let cases: &[(u8, &[&str])] = &[
            (1, &["1.2", "3.2", "4.1", "8.5"]),
            (12, &["1.2", "2.2", "3.1", "6.1", "8.5"]),
            (13, &["1.2", "2.2", "2.3", "3.2", "6.1", "8.3", "8.5"]),
            (14, &["1.2", "2.2", "2.3", "3.2", "7.2", "7.3", "7.4", "8.1", "8.5"]),
            (16, &["1.2", "1.3", "2.3", "2.4", "3.3", "5.3", "7.1", "7.2", "7.3", "8.1", "8.6"]),
            (18, &["1.1", "1.2", "1.4", "3.2", "4.2", "4.3", "8.1", "8.2", "8.3", "8.4", "8.5"]),
            (20, &["1.4", "2.1", "6.1", "8.1"]),
            (21, &["1.2", "2.1", "2.3", "2.4", "3.2", "3.3", "5.1", "5.3", "8.2", "8.4", "8.5"]),
        ];
        for (q, expect) in cases {
            let got = choke_points_of_bi(*q);
            assert_eq!(&got[..], *expect, "BI {q}");
        }
    }
}
