#![warn(missing_docs)]

//! # snb-bi
//!
//! The LDBC SNB **Business Intelligence workload**: all 25 read queries
//! (spec chapter 5), each as a module with
//!
//! * a documented `Params` struct,
//! * a typed `Row` result with the spec's sort/limit semantics,
//! * `run` — the optimized physical plan (CSR traversal, hash
//!   aggregation, bounded top-k with pruning), and
//! * `run_naive` — an independent reference implementation used for
//!   cross-validation (the benchmark's validation-mode oracle) and as
//!   the comparison baseline of experiment E6.
//!
//! Queries whose full text appears in the supplied spec extraction are
//! implemented verbatim; the rest are reconstructed from the official
//! v0.3.x workload and carry a "reconstructed" marker in their module
//! docs (see `DESIGN.md` §5 for the fidelity table).

pub mod bi01;
pub mod bi02;
pub mod bi03;
pub mod bi04;
pub mod bi05;
pub mod bi06;
pub mod bi07;
pub mod bi08;
pub mod bi09;
pub mod bi10;
pub mod bi11;
pub mod bi12;
pub mod bi13;
pub mod bi14;
pub mod bi15;
pub mod bi16;
pub mod bi17;
pub mod bi18;
pub mod bi19;
pub mod bi20;
pub mod bi21;
pub mod bi22;
pub mod bi23;
pub mod bi24;
pub mod bi25;
pub mod common;
pub mod meta;

use snb_engine::QueryContext;
use snb_store::Store;

/// A parameter binding for any BI query — the uniform currency between
/// the parameter-curation crate, the driver and the benchmark harness.
#[derive(Clone, Debug)]
pub enum BiParams {
    /// BI 1 parameters.
    Q1(bi01::Params),
    /// BI 2 parameters.
    Q2(bi02::Params),
    /// BI 3 parameters.
    Q3(bi03::Params),
    /// BI 4 parameters.
    Q4(bi04::Params),
    /// BI 5 parameters.
    Q5(bi05::Params),
    /// BI 6 parameters.
    Q6(bi06::Params),
    /// BI 7 parameters.
    Q7(bi07::Params),
    /// BI 8 parameters.
    Q8(bi08::Params),
    /// BI 9 parameters.
    Q9(bi09::Params),
    /// BI 10 parameters.
    Q10(bi10::Params),
    /// BI 11 parameters.
    Q11(bi11::Params),
    /// BI 12 parameters.
    Q12(bi12::Params),
    /// BI 13 parameters.
    Q13(bi13::Params),
    /// BI 14 parameters.
    Q14(bi14::Params),
    /// BI 15 parameters.
    Q15(bi15::Params),
    /// BI 16 parameters.
    Q16(bi16::Params),
    /// BI 17 parameters.
    Q17(bi17::Params),
    /// BI 18 parameters.
    Q18(bi18::Params),
    /// BI 19 parameters.
    Q19(bi19::Params),
    /// BI 20 parameters.
    Q20(bi20::Params),
    /// BI 21 parameters.
    Q21(bi21::Params),
    /// BI 22 parameters.
    Q22(bi22::Params),
    /// BI 23 parameters.
    Q23(bi23::Params),
    /// BI 24 parameters.
    Q24(bi24::Params),
    /// BI 25 parameters.
    Q25(bi25::Params),
}

impl BiParams {
    /// The query number (1–25).
    pub fn query(&self) -> u8 {
        match self {
            BiParams::Q1(_) => 1,
            BiParams::Q2(_) => 2,
            BiParams::Q3(_) => 3,
            BiParams::Q4(_) => 4,
            BiParams::Q5(_) => 5,
            BiParams::Q6(_) => 6,
            BiParams::Q7(_) => 7,
            BiParams::Q8(_) => 8,
            BiParams::Q9(_) => 9,
            BiParams::Q10(_) => 10,
            BiParams::Q11(_) => 11,
            BiParams::Q12(_) => 12,
            BiParams::Q13(_) => 13,
            BiParams::Q14(_) => 14,
            BiParams::Q15(_) => 15,
            BiParams::Q16(_) => 16,
            BiParams::Q17(_) => 17,
            BiParams::Q18(_) => 18,
            BiParams::Q19(_) => 19,
            BiParams::Q20(_) => 20,
            BiParams::Q21(_) => 21,
            BiParams::Q22(_) => 22,
            BiParams::Q23(_) => 23,
            BiParams::Q24(_) => 24,
            BiParams::Q25(_) => 25,
        }
    }
}

/// A type-erased execution summary: the row count plus an
/// order-sensitive fingerprint of the result, enough for validation
/// without materialising heterogeneous row types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySummary {
    /// Number of result rows.
    pub rows: usize,
    /// FNV-style fingerprint over the Debug rendering of the rows.
    pub fingerprint: u64,
}

fn summarize<T: std::fmt::Debug>(rows: &[T]) -> QuerySummary {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for r in rows {
        let s = format!("{r:?}");
        for b in s.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    QuerySummary { rows: rows.len(), fingerprint: hash }
}

/// Runs a BI query through the optimized engine on the process-global
/// execution context.
pub fn run(store: &Store, params: &BiParams) -> QuerySummary {
    run_with(store, QueryContext::global(), params)
}

/// Runs a BI query against the store snapshot bound to `ctx` — the
/// entry point for snapshot-published readers (the service tier and
/// concurrent replay): the context, not the caller, names the store,
/// so a bound request can never read anything but its pinned version.
///
/// Panics if the context has no bound snapshot; binding is the whole
/// point of this entry.
pub fn run_bound(ctx: &QueryContext, params: &BiParams) -> QuerySummary {
    let snapshot = ctx.snapshot().expect("run_bound requires a snapshot-bound context").clone();
    run_with(&snapshot, ctx, params)
}

/// Runs a BI query through the optimized engine on an explicit
/// execution context — the entry point used by the driver, which
/// constructs one context per benchmark stream.
pub fn run_with(store: &Store, ctx: &QueryContext, params: &BiParams) -> QuerySummary {
    match params {
        BiParams::Q1(p) => summarize(&bi01::run_ctx(store, ctx, p)),
        BiParams::Q2(p) => summarize(&bi02::run_ctx(store, ctx, p)),
        BiParams::Q3(p) => summarize(&bi03::run_ctx(store, ctx, p)),
        BiParams::Q4(p) => summarize(&bi04::run_ctx(store, ctx, p)),
        BiParams::Q5(p) => summarize(&bi05::run_ctx(store, ctx, p)),
        BiParams::Q6(p) => summarize(&bi06::run_ctx(store, ctx, p)),
        BiParams::Q7(p) => summarize(&bi07::run_ctx(store, ctx, p)),
        BiParams::Q8(p) => summarize(&bi08::run_ctx(store, ctx, p)),
        BiParams::Q9(p) => summarize(&bi09::run_ctx(store, ctx, p)),
        BiParams::Q10(p) => summarize(&bi10::run_ctx(store, ctx, p)),
        BiParams::Q11(p) => summarize(&bi11::run_ctx(store, ctx, p)),
        BiParams::Q12(p) => summarize(&bi12::run_ctx(store, ctx, p)),
        BiParams::Q13(p) => summarize(&bi13::run_ctx(store, ctx, p)),
        BiParams::Q14(p) => summarize(&bi14::run_ctx(store, ctx, p)),
        BiParams::Q15(p) => summarize(&bi15::run_ctx(store, ctx, p)),
        BiParams::Q16(p) => summarize(&bi16::run_ctx(store, ctx, p)),
        BiParams::Q17(p) => summarize(&bi17::run_ctx(store, ctx, p)),
        BiParams::Q18(p) => summarize(&bi18::run_ctx(store, ctx, p)),
        BiParams::Q19(p) => summarize(&bi19::run_ctx(store, ctx, p)),
        BiParams::Q20(p) => summarize(&bi20::run_ctx(store, ctx, p)),
        BiParams::Q21(p) => summarize(&bi21::run_ctx(store, ctx, p)),
        BiParams::Q22(p) => summarize(&bi22::run_ctx(store, ctx, p)),
        BiParams::Q23(p) => summarize(&bi23::run_ctx(store, ctx, p)),
        BiParams::Q24(p) => summarize(&bi24::run_ctx(store, ctx, p)),
        BiParams::Q25(p) => summarize(&bi25::run_ctx(store, ctx, p)),
    }
}

/// Runs a BI query through the naive reference engine.
pub fn run_naive(store: &Store, params: &BiParams) -> QuerySummary {
    match params {
        BiParams::Q1(p) => summarize(&bi01::run_naive(store, p)),
        BiParams::Q2(p) => summarize(&bi02::run_naive(store, p)),
        BiParams::Q3(p) => summarize(&bi03::run_naive(store, p)),
        BiParams::Q4(p) => summarize(&bi04::run_naive(store, p)),
        BiParams::Q5(p) => summarize(&bi05::run_naive(store, p)),
        BiParams::Q6(p) => summarize(&bi06::run_naive(store, p)),
        BiParams::Q7(p) => summarize(&bi07::run_naive(store, p)),
        BiParams::Q8(p) => summarize(&bi08::run_naive(store, p)),
        BiParams::Q9(p) => summarize(&bi09::run_naive(store, p)),
        BiParams::Q10(p) => summarize(&bi10::run_naive(store, p)),
        BiParams::Q11(p) => summarize(&bi11::run_naive(store, p)),
        BiParams::Q12(p) => summarize(&bi12::run_naive(store, p)),
        BiParams::Q13(p) => summarize(&bi13::run_naive(store, p)),
        BiParams::Q14(p) => summarize(&bi14::run_naive(store, p)),
        BiParams::Q15(p) => summarize(&bi15::run_naive(store, p)),
        BiParams::Q16(p) => summarize(&bi16::run_naive(store, p)),
        BiParams::Q17(p) => summarize(&bi17::run_naive(store, p)),
        BiParams::Q18(p) => summarize(&bi18::run_naive(store, p)),
        BiParams::Q19(p) => summarize(&bi19::run_naive(store, p)),
        BiParams::Q20(p) => summarize(&bi20::run_naive(store, p)),
        BiParams::Q21(p) => summarize(&bi21::run_naive(store, p)),
        BiParams::Q22(p) => summarize(&bi22::run_naive(store, p)),
        BiParams::Q23(p) => summarize(&bi23::run_naive(store, p)),
        BiParams::Q24(p) => summarize(&bi24::run_naive(store, p)),
        BiParams::Q25(p) => summarize(&bi25::run_naive(store, p)),
    }
}

/// Validation mode (spec §6.2): runs both engines and errors on any
/// mismatch.
pub fn validate(store: &Store, params: &BiParams) -> snb_core::SnbResult<QuerySummary> {
    validate_with(store, QueryContext::global(), params)
}

/// Validation mode on an explicit execution context: the optimized
/// engine runs on `ctx`, the naive oracle stays single-threaded.
pub fn validate_with(
    store: &Store,
    ctx: &QueryContext,
    params: &BiParams,
) -> snb_core::SnbResult<QuerySummary> {
    let optimized = run_with(store, ctx, params);
    let naive = run_naive(store, params);
    if optimized != naive {
        return Err(snb_core::SnbError::Validation {
            query: format!("BI {}", params.query()),
            detail: format!("optimized {optimized:?} != naive {naive:?}"),
        });
    }
    Ok(optimized)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_is_order_sensitive() {
        let a = summarize(&[1, 2, 3]);
        let b = summarize(&[3, 2, 1]);
        assert_eq!(a.rows, b.rows);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn query_numbers_match_variants() {
        let p = BiParams::Q17(bi17::Params { country: "China".into() });
        assert_eq!(p.query(), 17);
        let p = BiParams::Q1(bi01::Params { date: snb_core::Date::from_ymd(2012, 1, 1) });
        assert_eq!(p.query(), 1);
        let p = BiParams::Q25(bi25::Params {
            person1_id: 0,
            person2_id: 1,
            start_date: snb_core::Date::from_ymd(2010, 1, 1),
            end_date: snb_core::Date::from_ymd(2012, 1, 1),
        });
        assert_eq!(p.query(), 25);
    }
}
