//! BI 2 — *Top tags for country, age, gender, time* (reconstructed).
//!
//! Messages created within `[start_date, end_date]` by persons located
//! in one of two countries are grouped by (country, creation month,
//! creator gender, creator age group, tag); groups above a frequency
//! threshold are reported. The age group is `floor(years between the
//! birthday and the simulation end (2013-01-01) / 5)`.
//!
//! Reconstruction notes: the supplied spec extraction elides this query
//! body; parameters, grouping and sort follow the official v0.3.x
//! definition, with the group-count threshold exposed as a parameter
//! (the official text fixes it at 100, far above what laptop scales can
//! produce).

use rustc_hash::FxHashMap;
use snb_core::model::Gender;
use snb_core::Date;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::{age_group, day_range_window, messages_in};

/// Parameters of BI 2.
#[derive(Clone, Debug)]
pub struct Params {
    /// Start of the window (inclusive).
    pub start_date: Date,
    /// End of the window (inclusive).
    pub end_date: Date,
    /// First country name.
    pub country1: String,
    /// Second country name.
    pub country2: String,
    /// Minimum group size (exclusive threshold; official value 100).
    pub min_count: u64,
}

/// One result row of BI 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Country name the creator lives in.
    pub country_name: String,
    /// Creation month (1–12).
    pub month: u32,
    /// Creator gender.
    pub gender: Gender,
    /// Age group (5-year buckets against 2013-01-01).
    pub age_group: i32,
    /// Tag name.
    pub tag_name: String,
    /// Messages in the group.
    pub message_count: u64,
}

type Key = (Ix, u32, Gender, i32, Ix); // (country, month, gender, ageGroup, tag)

fn sort_key(store: &Store, key: &Key, count: u64) -> impl Ord + Clone {
    (
        std::cmp::Reverse(count),
        store.tags.name[key.4 as usize].to_string(),
        key.3,
        key.1,
        key.2 == Gender::Male, // female < male alphabetically
        store.places.name[key.0 as usize].to_string(),
    )
}

fn to_row(store: &Store, key: Key, count: u64) -> Row {
    Row {
        country_name: store.places.name[key.0 as usize].to_string(),
        month: key.1,
        gender: key.2,
        age_group: key.3,
        tag_name: store.tags.name[key.4 as usize].to_string(),
        message_count: count,
    }
}

const LIMIT: usize = 100;

/// Optimized implementation: message scan with person-side filters,
/// hash aggregation, bounded top-k.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: parallel
/// scan of the date-window run of the permutation index, per-worker
/// count maps merged in worker order.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let c1 = store.country_by_name(&params.country1);
    let c2 = store.country_by_name(&params.country2);
    let (Ok(c1), Ok(c2)) = (c1, c2) else { return Vec::new() };
    let (lo, hi) = day_range_window(params.start_date, params.end_date);
    let window = messages_in(store, ctx.metrics(), lo, hi);
    let groups = ctx.par_map_reduce(
        window.len(),
        FxHashMap::<Key, u64>::default,
        |acc, range| {
            for &m in &window[range] {
                let p = store.messages.creator[m as usize];
                let country = store.person_country(p);
                if country != c1 && country != c2 {
                    continue;
                }
                let month = store.messages.creation_date[m as usize].month();
                let gender = store.persons.gender[p as usize];
                let ag = age_group(store, p);
                for tag in store.message_tag.targets_of(m) {
                    *acc.entry((country, month, gender, ag, tag)).or_insert(0) += 1;
                }
            }
        },
        |into, from| {
            for (k, c) in from {
                *into.entry(k).or_insert(0) += c;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (key, count) in groups {
        if count > params.min_count {
            tk.push(sort_key(store, &key, count), to_row(store, key, count));
        }
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: person-major nested loops, full sort.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(c1), Ok(c2)) =
        (store.country_by_name(&params.country1), store.country_by_name(&params.country2))
    else {
        return Vec::new();
    };
    let (lo, hi) = day_range_window(params.start_date, params.end_date);
    let mut groups: FxHashMap<Key, u64> = FxHashMap::default();
    for p in 0..store.persons.len() as Ix {
        let country = store.person_country(p);
        if country != c1 && country != c2 {
            continue;
        }
        for m in store.person_messages.targets_of(p) {
            let t = store.messages.creation_date[m as usize];
            if t < lo || t >= hi {
                continue;
            }
            for tag in store.message_tag.targets_of(m) {
                let key = (
                    country,
                    t.month(),
                    store.persons.gender[p as usize],
                    age_group(store, p),
                    tag,
                );
                *groups.entry(key).or_insert(0) += 1;
            }
        }
    }
    let items: Vec<_> = groups
        .into_iter()
        .filter(|&(_, c)| c > params.min_count)
        .map(|(key, count)| (sort_key(store, &key, count), to_row(store, key, count)))
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params {
            start_date: Date::from_ymd(2010, 1, 1),
            end_date: Date::from_ymd(2012, 12, 31),
            country1: "China".into(),
            country2: "India".into(),
            min_count: 0,
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
    }

    #[test]
    fn respects_threshold_and_limit() {
        let s = testutil::store();
        let all = run(s, &params());
        assert!(all.len() <= 100);
        let mut p = params();
        p.min_count = 2;
        let filtered = run(s, &p);
        assert!(filtered.iter().all(|r| r.message_count > 2));
        assert!(filtered.len() <= all.len());
    }

    #[test]
    fn only_requested_countries_appear() {
        let s = testutil::store();
        for r in run(s, &params()) {
            assert!(r.country_name == "China" || r.country_name == "India");
            assert!((1..=12).contains(&r.month));
        }
    }

    #[test]
    fn unknown_country_yields_empty() {
        let s = testutil::store();
        let mut p = params();
        p.country1 = "Atlantis".into();
        assert!(run(s, &p).is_empty());
        assert!(run_naive(s, &p).is_empty());
    }

    #[test]
    fn sorted_by_count_then_tag() {
        let s = testutil::store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            assert!(
                w[0].message_count > w[1].message_count
                    || (w[0].message_count == w[1].message_count && w[0].tag_name <= w[1].tag_name)
            );
        }
    }
}
