//! BI 14 — *Top thread initiators* (spec-text).
//!
//! For Posts created within `[begin, end]`, count per person the
//! threads they initiated and the total number of Messages (root Post
//! included) that appeared in those reply trees within the same window.

use rustc_hash::FxHashMap;
use snb_core::Date;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::{day_range_window, messages_in, thread_size};

/// Parameters of BI 14.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Window start (inclusive).
    pub begin: Date,
    /// Window end (inclusive).
    pub end: Date,
}

/// One result row of BI 14.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// First name.
    pub first_name: String,
    /// Last name.
    pub last_name: String,
    /// Threads initiated in the window.
    pub thread_count: u64,
    /// Messages in those threads within the window.
    pub message_count: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64) {
    (std::cmp::Reverse(row.message_count), row.person_id)
}

/// Optimized implementation: post scan + recursive thread counting via
/// the reply CSR.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// windowed post scan is a contiguous run of the date permutation
/// index, processed in parallel morsels (thread counting recurses from
/// each root post independently).
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (lo, hi) = day_range_window(params.begin, params.end);
    let in_window = |m: Ix| {
        let t = store.messages.creation_date[m as usize];
        t >= lo && t < hi
    };
    let window = messages_in(store, ctx.metrics(), lo, hi);
    let acc = ctx.par_map_reduce(
        window.len(),
        FxHashMap::<Ix, (u64, u64)>::default,
        |acc, range| {
            for &post in &window[range] {
                if !store.messages.is_post(post) {
                    continue;
                }
                let creator = store.messages.creator[post as usize];
                let msgs = thread_size(store, post, in_window);
                let e = acc.entry(creator).or_insert((0, 0));
                e.0 += 1;
                e.1 += msgs;
            }
        },
        |into, from| {
            for (k, (t, m)) in from {
                let e = into.entry(k).or_insert((0, 0));
                e.0 += t;
                e.1 += m;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (p, (threads, msgs)) in acc {
        let row = Row {
            person_id: store.persons.id[p as usize],
            first_name: store.persons.first_name[p as usize].to_string(),
            last_name: store.persons.last_name[p as usize].to_string(),
            thread_count: threads,
            message_count: msgs,
        };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: counts thread membership through the `root_post`
/// column instead of recursion.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let lo = params.begin.at_midnight();
    let hi = params.end.plus_days(1).at_midnight();
    let in_window = |m: Ix| {
        let t = store.messages.creation_date[m as usize];
        t >= lo && t < hi
    };
    // Threads: root posts in window.
    let mut threads: FxHashMap<Ix, u64> = FxHashMap::default();
    for post in 0..store.messages.len() as Ix {
        if store.messages.is_post(post) && in_window(post) {
            *threads.entry(store.messages.creator[post as usize]).or_insert(0) += 1;
        }
    }
    // Messages grouped by their thread's root creator, if the root post
    // is in the window.
    let mut msgs: FxHashMap<Ix, u64> = FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        if !in_window(m) {
            continue;
        }
        let root = store.messages.root_post[m as usize];
        if !in_window(root) {
            continue;
        }
        *msgs.entry(store.messages.creator[root as usize]).or_insert(0) += 1;
    }
    let items: Vec<_> = threads
        .into_iter()
        .map(|(p, threads)| {
            let row = Row {
                person_id: store.persons.id[p as usize],
                first_name: store.persons.first_name[p as usize].to_string(),
                last_name: store.persons.last_name[p as usize].to_string(),
                thread_count: threads,
                message_count: msgs.get(&p).copied().unwrap_or(0),
            };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params { begin: Date::from_ymd(2010, 6, 1), end: Date::from_ymd(2012, 6, 1) }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
        let narrow = Params { begin: Date::from_ymd(2011, 3, 1), end: Date::from_ymd(2011, 3, 31) };
        assert_eq!(run(s, &narrow), run_naive(s, &narrow));
    }

    #[test]
    fn message_count_at_least_thread_count() {
        let s = testutil::store();
        for r in run(s, &params()) {
            assert!(r.message_count >= r.thread_count, "{r:?}");
            assert!(r.thread_count > 0);
        }
    }

    #[test]
    fn sorted_and_limited() {
        let s = testutil::store();
        let rows = run(s, &params());
        assert!(!rows.is_empty());
        assert!(rows.len() <= 100);
        for w in rows.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }

    #[test]
    fn empty_window_yields_empty() {
        let s = testutil::store();
        let p = Params { begin: Date::from_ymd(2009, 1, 1), end: Date::from_ymd(2009, 2, 1) };
        assert!(run(s, &p).is_empty());
    }
}
