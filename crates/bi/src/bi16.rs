//! BI 16 — *Experts in social circle* (spec-text).
//!
//! From a start Person, find Persons living in a given Country that are
//! connected by a *trail* (edges unique, nodes repeatable) of length in
//! `[min_path_distance, max_path_distance]` over `knows`. For those
//! persons, take their Messages carrying at least one Tag of the given
//! TagClass (direct relation, not transitive), collect all Tags of
//! those Messages, and count messages per (person, tag).
//!
//! Per the spec note, persons also reachable on shorter trails are
//! *included* (the permissive reading of the current reference
//! implementations).

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::traverse::trail_reachable;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::has_tag_of_class;

/// Parameters of BI 16.
#[derive(Clone, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Country name.
    pub country: String,
    /// Tag-class name.
    pub tag_class: String,
    /// Minimum trail length (inclusive).
    pub min_path_distance: u32,
    /// Maximum trail length (inclusive).
    pub max_path_distance: u32,
}

/// One result row of BI 16.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Expert person id.
    pub person_id: u64,
    /// Tag name.
    pub tag_name: String,
    /// Messages by the person carrying the tag (among class-matching
    /// messages).
    pub message_count: u64,
}

const LIMIT: usize = 100;

type Key = (std::cmp::Reverse<u64>, String, u64);

fn sort_key(row: &Row) -> Key {
    (std::cmp::Reverse(row.message_count), row.tag_name.clone(), row.person_id)
}

fn collect_rows(
    store: &Store,
    experts: impl Iterator<Item = Ix>,
    country: Ix,
    class: Ix,
) -> FxHashMap<(Ix, Ix), u64> {
    let mut groups: FxHashMap<(Ix, Ix), u64> = FxHashMap::default();
    for p in experts {
        if store.person_country(p) != country {
            continue;
        }
        for m in store.person_messages.targets_of(p) {
            if !has_tag_of_class(store, m, class) {
                continue;
            }
            for t in store.message_tag.targets_of(m) {
                *groups.entry((p, t)).or_insert(0) += 1;
            }
        }
    }
    groups
}

/// Optimized implementation: trail search bounded by the distance band,
/// then person-major aggregation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the trail
/// search stays sequential (its frontier is inherently ordered); the
/// per-expert message aggregation fans out as parallel morsels.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(country), Ok(class)) = (
        store.person(params.person_id),
        store.country_by_name(&params.country),
        store.tag_class_named(&params.tag_class),
    ) else {
        return Vec::new();
    };
    let reachable = trail_reachable(
        store,
        ctx.metrics(),
        start,
        params.min_path_distance,
        params.max_path_distance,
    );
    let experts: Vec<Ix> = reachable.into_iter().filter(|&p| p != start).collect();
    let groups = ctx.par_map_reduce(
        experts.len(),
        FxHashMap::<(Ix, Ix), u64>::default,
        |acc, range| {
            let morsel = collect_rows(store, experts[range].iter().copied(), country, class);
            for (k, c) in morsel {
                *acc.entry(k).or_insert(0) += c;
            }
        },
        |into, from| {
            for (k, c) in from {
                *into.entry(k).or_insert(0) += c;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for ((p, t), count) in groups {
        let row = Row {
            person_id: store.persons.id[p as usize],
            tag_name: store.tags.name[t as usize].to_string(),
            message_count: count,
        };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: same trail semantics, full sort (trail enumeration
/// has no simpler oracle; the traversal itself is cross-checked against
/// BFS in `snb-engine`).
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(country), Ok(class)) = (
        store.person(params.person_id),
        store.country_by_name(&params.country),
        store.tag_class_named(&params.tag_class),
    ) else {
        return Vec::new();
    };
    let reachable = trail_reachable(
        store,
        snb_engine::QueryMetrics::sink(),
        start,
        params.min_path_distance,
        params.max_path_distance,
    );
    let groups = collect_rows(store, reachable.into_iter().filter(|&p| p != start), country, class);
    let items: Vec<_> = groups
        .into_iter()
        .map(|((p, t), count)| {
            let row = Row {
                person_id: store.persons.id[p as usize],
                tag_name: store.tags.name[t as usize].to_string(),
                message_count: count,
            };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params(s: &Store) -> Params {
        // Start from a person with friends.
        let start = (0..s.persons.len() as Ix).max_by_key(|&p| s.knows.degree(p)).unwrap();
        Params {
            person_id: s.persons.id[start as usize],
            country: "China".into(),
            tag_class: "MusicalArtist".into(),
            min_path_distance: 1,
            max_path_distance: 2,
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        let p = params(s);
        assert_eq!(run(s, &p), run_naive(s, &p));
    }

    #[test]
    fn start_person_excluded() {
        let s = testutil::store();
        let p = params(s);
        for r in run(s, &p) {
            assert_ne!(r.person_id, p.person_id);
        }
    }

    #[test]
    fn experts_live_in_country() {
        let s = testutil::store();
        let p = params(s);
        let country = s.country_by_name(&p.country).unwrap();
        for r in run(s, &p) {
            let pix = s.person(r.person_id).unwrap();
            assert_eq!(s.person_country(pix), country);
        }
    }

    #[test]
    fn widening_the_band_never_shrinks_reachability() {
        // The permissive trail semantics: everyone reachable with
        // length in [1, 1] stays reachable with [1, 3]. Checked on the
        // traversal itself — the query's 100-row cut would otherwise
        // mask set membership.
        let s = testutil::store();
        let p = params(s);
        let start = s.person(p.person_id).unwrap();
        let narrow =
            snb_engine::traverse::trail_reachable(s, snb_engine::QueryMetrics::sink(), start, 1, 1);
        let wide =
            snb_engine::traverse::trail_reachable(s, snb_engine::QueryMetrics::sink(), start, 1, 3);
        assert!(narrow.is_subset(&wide));
        assert!(wide.len() >= narrow.len());
    }

    #[test]
    fn unknown_person_yields_empty() {
        let s = testutil::store();
        let mut p = params(s);
        p.person_id = 10_000_000;
        assert!(run(s, &p).is_empty());
    }
}
