//! BI 12 — *Trending posts* (spec-text).
//!
//! Find all Messages created after a given date (exclusive) that
//! received more than `like_threshold` likes.

use snb_engine::topk::sort_truncate;
use snb_engine::QueryContext;
use snb_store::{Ix, Store};

use crate::common::messages_after;

/// Parameters of BI 12.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Messages strictly after this date qualify.
    pub date: snb_core::Date,
    /// Minimum like count (exclusive).
    pub like_threshold: u64,
}

/// One result row of BI 12.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Message id.
    pub message_id: u64,
    /// Message creation timestamp.
    pub creation_date: snb_core::DateTime,
    /// Creator first name.
    pub first_name: String,
    /// Creator last name.
    pub last_name: String,
    /// Number of likes received.
    pub like_count: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64) {
    (std::cmp::Reverse(row.like_count), row.message_id)
}

fn to_row(store: &Store, m: Ix, likes: u64) -> Row {
    let c = store.messages.creator[m as usize] as usize;
    Row {
        message_id: store.messages.id[m as usize],
        creation_date: store.messages.creation_date[m as usize],
        first_name: store.persons.first_name[c].to_string(),
        last_name: store.persons.last_name[c].to_string(),
        like_count: likes,
    }
}

/// Optimized implementation: date filter first, degree lookup, top-k
/// pruning on the like count.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the date
/// filter becomes a binary-searched suffix of the permutation index,
/// scanned as a parallel top-k with per-worker CP-1.3 pruning.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let cutoff = params.date.at_midnight();
    let window = messages_after(store, ctx.metrics(), cutoff);
    let tk = ctx.par_topk(window.len(), LIMIT, |tk, range| {
        for &m in &window[range] {
            let likes = store.message_likes.degree(m) as u64;
            if likes <= params.like_threshold {
                continue;
            }
            let key = (std::cmp::Reverse(likes), store.messages.id[m as usize]);
            if !tk.would_accept(&key) {
                continue; // CP-1.3: skip row construction entirely
            }
            tk.push(key, to_row(store, m, likes));
        }
    });
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: materialise all candidates, count likes by
/// iteration, full sort.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let cutoff = params.date.at_midnight();
    let mut items = Vec::new();
    for m in 0..store.messages.len() as Ix {
        if store.messages.creation_date[m as usize] <= cutoff {
            continue;
        }
        let likes = store.message_likes.targets_of(m).count() as u64;
        if likes > params.like_threshold {
            let row = to_row(store, m, likes);
            items.push((sort_key(&row), row));
        }
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;
    use snb_core::Date;

    fn params() -> Params {
        Params { date: Date::from_ymd(2010, 6, 1), like_threshold: 1 }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
        let p0 = Params { date: Date::from_ymd(2012, 1, 1), like_threshold: 0 };
        assert_eq!(run(s, &p0), run_naive(s, &p0));
    }

    #[test]
    fn threshold_is_exclusive() {
        let s = testutil::store();
        for r in run(s, &params()) {
            assert!(r.like_count > 1);
            assert!(r.creation_date > Date::from_ymd(2010, 6, 1).at_midnight());
        }
    }

    #[test]
    fn sorted_by_likes_then_id() {
        let s = testutil::store();
        let rows = run(s, &params());
        assert!(!rows.is_empty());
        assert!(rows.len() <= 100);
        for w in rows.windows(2) {
            assert!(
                w[0].like_count > w[1].like_count
                    || (w[0].like_count == w[1].like_count && w[0].message_id < w[1].message_id)
            );
        }
    }

    #[test]
    fn impossible_threshold_yields_empty() {
        let s = testutil::store();
        let p = Params { date: Date::from_ymd(2010, 1, 1), like_threshold: 1_000_000 };
        assert!(run(s, &p).is_empty());
    }
}
