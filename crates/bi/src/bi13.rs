//! BI 13 — *Popular tags per month in a country* (spec-text).
//!
//! Messages located in a given Country, grouped by creation year and
//! month; each group reports its five most popular tags (by message
//! count within the group, ties by tag name). Groups exist even when
//! none of their messages carry tags (empty `popular_tags`).

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

/// Parameters of BI 13.
#[derive(Clone, Debug)]
pub struct Params {
    /// Country name.
    pub country: String,
}

/// One result row of BI 13.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Creation year.
    pub year: i32,
    /// Creation month.
    pub month: u32,
    /// Up to five `(tag name, count)` pairs, popularity descending.
    pub popular_tags: Vec<(String, u64)>,
}

const LIMIT: usize = 100;
const TAGS_PER_GROUP: usize = 5;

fn sort_key(row: &Row) -> (std::cmp::Reverse<i32>, u32) {
    // Spec sort: year descending, month ascending.
    (std::cmp::Reverse(row.year), row.month)
}

fn top_tags(store: &Store, counts: FxHashMap<Ix, u64>) -> Vec<(String, u64)> {
    let mut tk = TopK::new(TAGS_PER_GROUP);
    for (t, c) in counts {
        let name = store.tags.name[t as usize].to_string();
        tk.push((std::cmp::Reverse(c), name.clone()), (name, c));
    }
    tk.into_sorted()
}

/// Optimized implementation: single scan over messages of the country.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// country filter runs as parallel morsels over the message block,
/// merging per-worker nested (month → tag → count) maps.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let groups = ctx.par_map_reduce(
        store.messages.len(),
        FxHashMap::<(i32, u32), FxHashMap<Ix, u64>>::default,
        |acc, range| {
            for m in range.start as Ix..range.end as Ix {
                if store.messages.country[m as usize] != country {
                    continue;
                }
                let (y, mo) = store.messages.creation_date[m as usize].year_month();
                let g = acc.entry((y, mo)).or_default();
                for t in store.message_tag.targets_of(m) {
                    *g.entry(t).or_insert(0) += 1;
                }
            }
        },
        |into, from| {
            for (k, counts) in from {
                let g = into.entry(k).or_default();
                for (t, c) in counts {
                    *g.entry(t).or_insert(0) += c;
                }
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for ((year, month), counts) in groups {
        let row = Row { year, month, popular_tags: top_tags(store, counts) };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: group keys first, then per-group rescans.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let in_country: Vec<Ix> = (0..store.messages.len() as Ix)
        .filter(|&m| store.messages.country[m as usize] == country)
        .collect();
    let mut keys: Vec<(i32, u32)> =
        in_country.iter().map(|&m| store.messages.creation_date[m as usize].year_month()).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut items = Vec::new();
    for (year, month) in keys {
        let mut counts: FxHashMap<Ix, u64> = FxHashMap::default();
        for &m in &in_country {
            if store.messages.creation_date[m as usize].year_month() != (year, month) {
                continue;
            }
            for t in store.message_tag.targets_of(m) {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        // Sort-truncate top five.
        let mut pairs: Vec<(String, u64)> =
            counts.into_iter().map(|(t, c)| (store.tags.name[t as usize].to_string(), c)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(TAGS_PER_GROUP);
        let row = Row { year, month, popular_tags: pairs };
        items.push((sort_key(&row), row));
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        for c in ["China", "United_States", "Hungary"] {
            let p = Params { country: c.into() };
            assert_eq!(run(s, &p), run_naive(s, &p), "{c}");
        }
    }

    #[test]
    fn at_most_five_tags_per_group() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "China".into() });
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.popular_tags.len() <= 5);
            for w in r.popular_tags.windows(2) {
                assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 <= w[1].0));
            }
        }
    }

    #[test]
    fn year_desc_month_asc() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "India".into() });
        for w in rows.windows(2) {
            assert!(w[0].year > w[1].year || (w[0].year == w[1].year && w[0].month < w[1].month));
        }
    }

    #[test]
    fn months_cover_simulation_window() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "China".into() });
        for r in &rows {
            assert!((2010..=2012).contains(&r.year));
            assert!((1..=12).contains(&r.month));
        }
    }
}
