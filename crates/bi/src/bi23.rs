//! BI 23 — *Holiday destinations* (reconstructed).
//!
//! Messages created abroad by residents of a given Country, grouped by
//! (destination country, creation month); count messages per group.

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

/// Parameters of BI 23.
#[derive(Clone, Debug)]
pub struct Params {
    /// Home country name.
    pub country: String,
}

/// One result row of BI 23.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Messages in the group.
    pub message_count: u64,
    /// Destination country name.
    pub destination_name: String,
    /// Creation month (1–12).
    pub month: u32,
}

const LIMIT: usize = 100;

type Key = (std::cmp::Reverse<u64>, String, u32);

fn sort_key(row: &Row) -> Key {
    (std::cmp::Reverse(row.message_count), row.destination_name.clone(), row.month)
}

/// Optimized implementation: start from the selective side — residents
/// of the home country via the city→person index — and only touch
/// their messages (CP-2.1 join ordering: the country filter is far more
/// selective than the message scan).
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the home
/// country's residents fan out as morsels; group counts are additive so
/// the deterministic merge order reproduces the sequential totals.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(home) = store.country_by_name(&params.country) else { return Vec::new() };
    let residents: Vec<Ix> = store.persons_in_country(home).collect();
    let groups = ctx.par_map_reduce(
        residents.len(),
        FxHashMap::<(Ix, u32), u64>::default,
        |acc, range| {
            for &p in &residents[range] {
                for m in store.person_messages.targets_of(p) {
                    let dest = store.messages.country[m as usize];
                    if dest == home {
                        continue;
                    }
                    let month = store.messages.creation_date[m as usize].month();
                    *acc.entry((dest, month)).or_insert(0) += 1;
                }
            }
        },
        |into, from| {
            for (k, c) in from {
                *into.entry(k).or_insert(0) += c;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for ((dest, month), count) in groups {
        let row = Row {
            message_count: count,
            destination_name: store.places.name[dest as usize].to_string(),
            month,
        };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: full message-table scan with per-message creator
/// location test.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(home) = store.country_by_name(&params.country) else { return Vec::new() };
    let mut groups: FxHashMap<(Ix, u32), u64> = FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        let dest = store.messages.country[m as usize];
        if dest == home {
            continue;
        }
        let creator = store.messages.creator[m as usize];
        if store.person_country(creator) != home {
            continue;
        }
        let month = store.messages.creation_date[m as usize].month();
        *groups.entry((dest, month)).or_insert(0) += 1;
    }
    let items: Vec<_> = groups
        .into_iter()
        .map(|((dest, month), count)| {
            let row = Row {
                message_count: count,
                destination_name: store.places.name[dest as usize].to_string(),
                month,
            };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        for c in ["China", "Germany"] {
            let p = Params { country: c.into() };
            assert_eq!(run(s, &p), run_naive(s, &p), "{c}");
        }
    }

    #[test]
    fn home_country_never_a_destination() {
        let s = testutil::store();
        for r in run(s, &Params { country: "China".into() }) {
            assert_ne!(r.destination_name, "China");
            assert!((1..=12).contains(&r.month));
            assert!(r.message_count > 0);
        }
    }

    #[test]
    fn sorted_by_count_then_destination() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "India".into() });
        for w in rows.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }

    #[test]
    fn travel_messages_produce_destinations() {
        // The generator issues ~5% of messages while travelling, so a
        // populous country must show at least one holiday destination.
        let s = testutil::store();
        let rows = run(s, &Params { country: "China".into() });
        assert!(!rows.is_empty(), "no abroad messages generated");
    }
}
