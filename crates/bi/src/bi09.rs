//! BI 9 — *Forum with related tags* (reconstructed).
//!
//! Given two TagClasses, find Forums with more than `threshold` members
//! that contain Posts tagged with each class (direct `hasType`), and
//! report both per-forum post counts.
//!
//! Reconstruction note: the supplied extraction elides this query; the
//! sort order used here is `count1` desc, `count2` desc, forum id asc.

use snb_engine::topk::sort_truncate;
use snb_engine::QueryContext;
use snb_store::{Ix, Store};

use crate::common::has_tag_of_class;

/// Parameters of BI 9.
#[derive(Clone, Debug)]
pub struct Params {
    /// First tag-class name.
    pub tag_class1: String,
    /// Second tag-class name.
    pub tag_class2: String,
    /// Minimum member count (exclusive).
    pub threshold: u64,
}

/// One result row of BI 9.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Forum id.
    pub forum_id: u64,
    /// Posts tagged with a tag of class 1.
    pub count1: u64,
    /// Posts tagged with a tag of class 2.
    pub count2: u64,
}

const LIMIT: usize = 100;

type Key = (std::cmp::Reverse<u64>, std::cmp::Reverse<u64>, u64);

fn sort_key(row: &Row) -> Key {
    (std::cmp::Reverse(row.count1), std::cmp::Reverse(row.count2), row.forum_id)
}

fn count_forum(store: &Store, f: Ix, c1: Ix, c2: Ix) -> (u64, u64) {
    let mut n1 = 0;
    let mut n2 = 0;
    for post in store.forum_posts.targets_of(f) {
        if has_tag_of_class(store, post, c1) {
            n1 += 1;
        }
        if has_tag_of_class(store, post, c2) {
            n2 += 1;
        }
    }
    (n1, n2)
}

/// Optimized implementation: forum scan with early member-count filter.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: parallel
/// forum scan with per-worker bounded top-k heaps.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(c1), Ok(c2)) =
        (store.tag_class_named(&params.tag_class1), store.tag_class_named(&params.tag_class2))
    else {
        return Vec::new();
    };
    let tk = ctx.par_topk(store.forums.len(), LIMIT, |tk, range| {
        for f in range.start as Ix..range.end as Ix {
            if (store.forum_member.degree(f) as u64) <= params.threshold {
                continue;
            }
            let (n1, n2) = count_forum(store, f, c1, c2);
            if n1 == 0 || n2 == 0 {
                continue;
            }
            let row = Row { forum_id: store.forums.id[f as usize], count1: n1, count2: n2 };
            tk.push(sort_key(&row), row);
        }
    });
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: post-major aggregation, member filter applied last.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(c1), Ok(c2)) =
        (store.tag_class_named(&params.tag_class1), store.tag_class_named(&params.tag_class2))
    else {
        return Vec::new();
    };
    let mut counts: rustc_hash::FxHashMap<Ix, (u64, u64)> = rustc_hash::FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        if !store.messages.is_post(m) {
            continue;
        }
        let f = store.messages.forum[m as usize];
        let e = counts.entry(f).or_insert((0, 0));
        if has_tag_of_class(store, m, c1) {
            e.0 += 1;
        }
        if has_tag_of_class(store, m, c2) {
            e.1 += 1;
        }
    }
    let items: Vec<_> = counts
        .into_iter()
        .filter(|&(f, (n1, n2))| {
            n1 > 0 && n2 > 0 && (store.forum_member.degree(f) as u64) > params.threshold
        })
        .map(|(f, (n1, n2))| {
            let row = Row { forum_id: store.forums.id[f as usize], count1: n1, count2: n2 };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params { tag_class1: "MusicalArtist".into(), tag_class2: "Band".into(), threshold: 0 }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
        let p2 = Params {
            tag_class1: "Scientist".into(),
            tag_class2: "Politician".into(),
            threshold: 2,
        };
        assert_eq!(run(s, &p2), run_naive(s, &p2));
    }

    #[test]
    fn both_counts_positive() {
        let s = testutil::store();
        for r in run(s, &params()) {
            assert!(r.count1 > 0 && r.count2 > 0);
        }
    }

    #[test]
    fn threshold_filters_small_forums() {
        let s = testutil::store();
        let mut p = params();
        p.threshold = 5;
        for r in run(s, &p) {
            let f = s.forum(r.forum_id).unwrap();
            assert!(s.forum_member.degree(f) > 5);
        }
    }

    #[test]
    fn sorted_correctly() {
        let s = testutil::store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            let ka =
                (std::cmp::Reverse(w[0].count1), std::cmp::Reverse(w[0].count2), w[0].forum_id);
            let kb =
                (std::cmp::Reverse(w[1].count1), std::cmp::Reverse(w[1].count2), w[1].forum_id);
            assert!(ka < kb);
        }
    }
}
