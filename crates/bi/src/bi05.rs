//! BI 5 — *Top posters in a country* (reconstructed).
//!
//! Find the 100 most popular Forums of a country (popularity = number
//! of members located in the country); then for every member of those
//! popular forums count the Posts they created in any popular forum
//! (members with zero posts are reported too).

use rustc_hash::{FxHashMap, FxHashSet};
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

/// Parameters of BI 5.
#[derive(Clone, Debug)]
pub struct Params {
    /// Country name.
    pub country: String,
}

/// One result row of BI 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// First name.
    pub first_name: String,
    /// Last name.
    pub last_name: String,
    /// Person creation date.
    pub creation_date: snb_core::DateTime,
    /// Posts in the popular forums.
    pub post_count: u64,
}

const FORUM_LIMIT: usize = 100;
const LIMIT: usize = 100;

fn popular_forums(store: &Store, ctx: &QueryContext, country: Ix) -> FxHashSet<Ix> {
    let tk: TopK<(std::cmp::Reverse<u64>, u64), Ix> =
        ctx.par_topk(store.forums.len(), FORUM_LIMIT, |tk, range| {
            for f in range.start as Ix..range.end as Ix {
                let members_in_country = store
                    .forum_member
                    .targets_of(f)
                    .filter(|&p| store.person_country(p) == country)
                    .count() as u64;
                if members_in_country == 0 {
                    continue;
                }
                tk.push((std::cmp::Reverse(members_in_country), store.forums.id[f as usize]), f);
            }
        });
    ctx.metrics().note_topk(&tk);
    tk.into_sorted().into_iter().collect()
}

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64) {
    (std::cmp::Reverse(row.post_count), row.person_id)
}

fn to_row(store: &Store, p: Ix, count: u64) -> Row {
    Row {
        person_id: store.persons.id[p as usize],
        first_name: store.persons.first_name[p as usize].to_string(),
        last_name: store.persons.last_name[p as usize].to_string(),
        creation_date: store.persons.creation_date[p as usize],
        post_count: count,
    }
}

/// Optimized implementation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// forum-popularity scan runs as a parallel top-k; the per-member post
/// counting stays sequential (it touches only the ~100 popular forums).
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let forums = popular_forums(store, ctx, country);
    // Members of popular forums.
    let mut members: FxHashSet<Ix> = FxHashSet::default();
    for &f in &forums {
        members.extend(store.forum_member.targets_of(f));
    }
    // Posts per member inside the popular forums.
    let mut counts: FxHashMap<Ix, u64> = FxHashMap::default();
    for &f in &forums {
        for post in store.forum_posts.targets_of(f) {
            let creator = store.messages.creator[post as usize];
            if members.contains(&creator) {
                *counts.entry(creator).or_insert(0) += 1;
            }
        }
    }
    let mut tk = TopK::new(LIMIT);
    for &p in &members {
        let count = counts.get(&p).copied().unwrap_or(0);
        let row = to_row(store, p, count);
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: per-member scan of all their messages.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let forums = popular_forums(store, &QueryContext::single_threaded(), country);
    let mut members: Vec<Ix> = Vec::new();
    for p in 0..store.persons.len() as Ix {
        if store.member_forum.targets_of(p).any(|f| forums.contains(&f)) {
            members.push(p);
        }
    }
    let mut items = Vec::new();
    for p in members {
        let count = store
            .person_messages
            .targets_of(p)
            .filter(|&m| {
                store.messages.is_post(m) && forums.contains(&store.messages.forum[m as usize])
            })
            .count() as u64;
        let row = to_row(store, p, count);
        items.push((sort_key(&row), row));
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        for c in ["China", "India", "Germany"] {
            let p = Params { country: c.into() };
            assert_eq!(run(s, &p), run_naive(s, &p), "{c}");
        }
    }

    #[test]
    fn sorted_and_limited() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "China".into() });
        assert!(rows.len() <= 100);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(
                w[0].post_count > w[1].post_count
                    || (w[0].post_count == w[1].post_count && w[0].person_id < w[1].person_id)
            );
        }
    }

    #[test]
    fn zero_post_members_are_reported() {
        // The query spec includes members that never posted in the
        // popular forums; with a 100-row limit and small data some may
        // survive the cut. This at least checks zero counts are legal.
        let s = testutil::store();
        let rows = run(s, &Params { country: "New_Zealand".into() });
        for r in &rows {
            // Every reported person must exist.
            s.person(r.person_id).unwrap();
        }
    }

    #[test]
    fn unknown_country_yields_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { country: "Narnia".into() }).is_empty());
    }
}
