//! BI 11 — *Unrelated replies* (reconstructed).
//!
//! Find Persons of a given Country whose reply Comments share no Tag
//! with the Message they reply to and contain none of the blacklisted
//! words. Group these replies by (person, tag of the reply) and count
//! replies and the likes they received.

use rustc_hash::{FxHashMap, FxHashSet};
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store, NONE};

/// Parameters of BI 11.
#[derive(Clone, Debug)]
pub struct Params {
    /// Country name.
    pub country: String,
    /// Words that disqualify a reply.
    pub blacklist: Vec<String>,
}

/// One result row of BI 11.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// Tag name of the reply.
    pub tag_name: String,
    /// Likes received by the qualifying replies.
    pub like_count: u64,
    /// Number of qualifying replies.
    pub reply_count: u64,
}

const LIMIT: usize = 100;

type Key = (std::cmp::Reverse<u64>, u64, String);

fn sort_key(row: &Row) -> Key {
    (std::cmp::Reverse(row.like_count), row.person_id, row.tag_name.clone())
}

/// Whether comment `c` is an "unrelated, clean" reply.
fn qualifies(store: &Store, c: Ix, blacklist: &[String]) -> bool {
    let parent = store.messages.reply_of[c as usize];
    if parent == NONE {
        return false;
    }
    // No shared tag with the parent.
    let parent_tags: FxHashSet<Ix> = store.message_tag.targets_of(parent).collect();
    if store.message_tag.targets_of(c).any(|t| parent_tags.contains(&t)) {
        return false;
    }
    // No blacklisted word in the content.
    let content = &store.messages.content[c as usize];
    !blacklist.iter().any(|w| content.contains(w.as_str()))
}

fn aggregate(
    store: &Store,
    ctx: &QueryContext,
    country: Ix,
    blacklist: &[String],
) -> FxHashMap<(Ix, Ix), (u64, u64)> {
    ctx.par_map_reduce(
        store.messages.len(),
        FxHashMap::<(Ix, Ix), (u64, u64)>::default,
        |acc, range| {
            for c in range.start as Ix..range.end as Ix {
                if store.messages.reply_of[c as usize] == NONE {
                    continue;
                }
                let p = store.messages.creator[c as usize];
                if store.person_country(p) != country {
                    continue;
                }
                if !qualifies(store, c, blacklist) {
                    continue;
                }
                let likes = store.message_likes.degree(c) as u64;
                for t in store.message_tag.targets_of(c) {
                    let e = acc.entry((p, t)).or_insert((0, 0));
                    e.0 += likes;
                    e.1 += 1;
                }
            }
        },
        |into, from| {
            for (k, (l, r)) in from {
                let e = into.entry(k).or_insert((0, 0));
                e.0 += l;
                e.1 += r;
            }
        },
    )
}

/// Optimized implementation: comment scan with cheap filters first
/// (CP-4.2 boolean reordering: country test before tag-set building).
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// comment scan runs as parallel morsels over the message block.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let groups = aggregate(store, ctx, country, &params.blacklist);
    let mut tk = TopK::new(LIMIT);
    for ((p, t), (likes, replies)) in groups {
        let row = Row {
            person_id: store.persons.id[p as usize],
            tag_name: store.tags.name[t as usize].to_string(),
            like_count: likes,
            reply_count: replies,
        };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: person-major, recomputing qualification per
/// message (the expensive test first, exercising the opposite plan).
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let mut items = Vec::new();
    let mut groups: FxHashMap<(Ix, Ix), (u64, u64)> = FxHashMap::default();
    for p in 0..store.persons.len() as Ix {
        for c in store.person_messages.targets_of(p) {
            if store.messages.reply_of[c as usize] == NONE
                || !qualifies(store, c, &params.blacklist)
                || store.person_country(p) != country
            {
                continue;
            }
            let likes = store.message_likes.degree(c) as u64;
            for t in store.message_tag.targets_of(c) {
                let e = groups.entry((p, t)).or_insert((0, 0));
                e.0 += likes;
                e.1 += 1;
            }
        }
    }
    for ((p, t), (likes, replies)) in groups {
        let row = Row {
            person_id: store.persons.id[p as usize],
            tag_name: store.tags.name[t as usize].to_string(),
            like_count: likes,
            reply_count: replies,
        };
        items.push((sort_key(&row), row));
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params { country: "China".into(), blacklist: vec!["maybe".into(), "great".into()] }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
        let p2 = Params { country: "India".into(), blacklist: vec![] };
        assert_eq!(run(s, &p2), run_naive(s, &p2));
    }

    #[test]
    fn blacklist_reduces_results() {
        let s = testutil::store();
        let clean: u64 = run(s, &Params { country: "China".into(), blacklist: vec![] })
            .iter()
            .map(|r| r.reply_count)
            .sum();
        let filtered: u64 = run(s, &params()).iter().map(|r| r.reply_count).sum();
        assert!(filtered <= clean);
    }

    #[test]
    fn replies_never_share_parent_tags() {
        let s = testutil::store();
        // Independent semantic check on the qualifier.
        for c in 0..s.messages.len() as Ix {
            let parent = s.messages.reply_of[c as usize];
            if parent == NONE {
                continue;
            }
            if qualifies(s, c, &[]) {
                for t in s.message_tag.targets_of(c) {
                    assert!(
                        !s.message_tag.targets_of(parent).any(|pt| pt == t),
                        "shared tag passed the filter"
                    );
                }
            }
        }
    }

    #[test]
    fn sorted_by_likes() {
        let s = testutil::store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }
}
