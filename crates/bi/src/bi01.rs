//! BI 1 — *Posting summary* (spec-text).
//!
//! Given a date, find all Messages created before that date and group
//! them three ways: by creation year, by kind (Post vs Comment), and by
//! content-length category (short / one-liner / tweet / long). Report
//! per-group count, average and total length, and the group's share of
//! all matching messages.

use rustc_hash::FxHashMap;
use snb_core::model::length_category;
use snb_core::Date;
use snb_engine::QueryContext;
use snb_store::{Ix, Store};

use crate::common::messages_before;

/// Parameters of BI 1.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Only messages created strictly before this date count.
    pub date: Date,
}

/// One result row of BI 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Creation year of the group.
    pub year: i32,
    /// `true` for Comments, `false` for Posts.
    pub is_comment: bool,
    /// Length category `0..=3` (spec BI 1 boundaries).
    pub length_category: u8,
    /// Messages in the group.
    pub message_count: u64,
    /// Average content length.
    pub average_message_length: f64,
    /// Total content length.
    pub sum_message_length: u64,
    /// Group share of all messages created before the date.
    pub percentage_of_messages: f64,
}

/// Sort order: year descending, Posts before Comments, category
/// ascending (no limit — the group count is inherently small).
fn sort_rows(rows: &mut [Row]) {
    rows.sort_by(|a, b| {
        b.year
            .cmp(&a.year)
            .then(a.is_comment.cmp(&b.is_comment))
            .then(a.length_category.cmp(&b.length_category))
    });
}

/// Optimized implementation: single scan, dense group key.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: parallel
/// scan of the binary-searched date window, per-worker group maps
/// merged in worker order (integer sums, so the merge is exact).
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let cutoff = params.date.at_midnight();
    let window = messages_before(store, ctx.metrics(), cutoff);
    let total = window.len() as u64;
    let groups = ctx.par_map_reduce(
        window.len(),
        FxHashMap::<(i32, bool, u8), (u64, u64)>::default,
        |acc, range| {
            for &m in &window[range] {
                let year = store.messages.creation_date[m as usize].year();
                let is_comment = !store.messages.is_post(m);
                let len = store.messages.length[m as usize];
                let e = acc.entry((year, is_comment, length_category(len))).or_insert((0, 0));
                e.0 += 1;
                e.1 += len as u64;
            }
        },
        |into, from| {
            for (k, (c, s)) in from {
                let e = into.entry(k).or_insert((0, 0));
                e.0 += c;
                e.1 += s;
            }
        },
    );
    let mut rows: Vec<Row> = groups
        .into_iter()
        .map(|((year, is_comment, cat), (count, sum))| Row {
            year,
            is_comment,
            length_category: cat,
            message_count: count,
            average_message_length: sum as f64 / count as f64,
            sum_message_length: sum,
            percentage_of_messages: count as f64 / total as f64,
        })
        .collect();
    sort_rows(&mut rows);
    rows
}

/// Naive reference: re-scans the message table once per group.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let cutoff = params.date.at_midnight();
    let matching: Vec<Ix> =
        messages_before(store, snb_engine::QueryMetrics::sink(), cutoff).to_vec();
    let total = matching.len() as u64;
    let mut keys: Vec<(i32, bool, u8)> = matching
        .iter()
        .map(|&m| {
            (
                store.messages.creation_date[m as usize].year(),
                !store.messages.is_post(m),
                length_category(store.messages.length[m as usize]),
            )
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut rows = Vec::new();
    for (year, is_comment, cat) in keys {
        let members: Vec<Ix> = matching
            .iter()
            .copied()
            .filter(|&m| {
                store.messages.creation_date[m as usize].year() == year
                    && store.messages.is_post(m) != is_comment
                    && length_category(store.messages.length[m as usize]) == cat
            })
            .collect();
        let count = members.len() as u64;
        let sum: u64 = members.iter().map(|&m| store.messages.length[m as usize] as u64).sum();
        rows.push(Row {
            year,
            is_comment,
            length_category: cat,
            message_count: count,
            average_message_length: sum as f64 / count as f64,
            sum_message_length: sum,
            percentage_of_messages: count as f64 / total as f64,
        });
    }
    sort_rows(&mut rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        let p = Params { date: testutil::mid_date() };
        assert_eq!(run(s, &p), run_naive(s, &p));
    }

    #[test]
    fn percentages_sum_to_one() {
        let s = testutil::store();
        let rows = run(s, &Params { date: Date::from_ymd(2013, 1, 1) });
        assert!(!rows.is_empty());
        let total: f64 = rows.iter().map(|r| r.percentage_of_messages).sum();
        assert!((total - 1.0).abs() < 1e-9, "percentages sum to {total}");
        let count: u64 = rows.iter().map(|r| r.message_count).sum();
        assert_eq!(count as usize, s.messages.len());
    }

    #[test]
    fn sorted_year_desc_posts_first() {
        let s = testutil::store();
        let rows = run(s, &Params { date: Date::from_ymd(2013, 1, 1) });
        for w in rows.windows(2) {
            let key = |r: &Row| (-r.year, r.is_comment, r.length_category);
            assert!(key(&w[0]) < key(&w[1]), "order violated: {w:?}");
        }
    }

    #[test]
    fn early_date_yields_empty() {
        let s = testutil::store();
        let rows = run(s, &Params { date: Date::from_ymd(2009, 1, 1) });
        assert!(rows.is_empty());
    }

    #[test]
    fn categories_respect_boundaries() {
        let s = testutil::store();
        let rows = run(s, &Params { date: Date::from_ymd(2013, 1, 1) });
        for r in &rows {
            assert!(r.length_category <= 3);
            if r.length_category == 0 && r.message_count > 0 {
                assert!(r.average_message_length < 40.0);
            }
            if r.length_category == 3 {
                assert!(r.average_message_length >= 160.0);
            }
        }
    }
}
