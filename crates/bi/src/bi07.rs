//! BI 7 — *Authoritative users on a given topic* (reconstructed).
//!
//! A person is authoritative on a tag when popular people like their
//! tagged messages. For each person who created a Message with the
//! given Tag: for every like those messages received, add the liker's
//! *popularity* — the total number of likes on any of the liker's own
//! messages — to the person's authority score.

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::has_tag;

/// Parameters of BI 7.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tag name.
    pub tag: String,
}

/// One result row of BI 7.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// Sum of the likers' popularity scores.
    pub authority_score: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64) {
    (std::cmp::Reverse(row.authority_score), row.person_id)
}

/// Total likes received by any of `p`'s messages.
fn popularity(store: &Store, p: Ix) -> u64 {
    store.person_messages.targets_of(p).map(|m| store.message_likes.degree(m) as u64).sum()
}

/// Optimized implementation: reverse tag index + memoised popularity.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: parallel
/// morsels over the tag's message list, each worker memoising liker
/// popularity in its own cache.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let tagged: Vec<Ix> = store.tag_message.targets_of(tag).collect();
    let scores = ctx.par_map_reduce(
        tagged.len(),
        || (FxHashMap::<Ix, u64>::default(), FxHashMap::<Ix, u64>::default()),
        |(scores, pop_cache), range| {
            for &m in &tagged[range] {
                let author = store.messages.creator[m as usize];
                let mut sum = 0u64;
                for liker in store.message_likes.targets_of(m) {
                    let pop = *pop_cache.entry(liker).or_insert_with(|| popularity(store, liker));
                    sum += pop;
                }
                // Ensure authors of tagged messages appear even with
                // zero likes.
                *scores.entry(author).or_insert(0) += sum;
            }
        },
        |(into, _), (from, _)| {
            for (k, s) in from {
                *into.entry(k).or_insert(0) += s;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    let scores = scores.0;
    for (p, score) in scores {
        let row = Row { person_id: store.persons.id[p as usize], authority_score: score };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: message-major scan, popularity recomputed per like.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let mut scores: FxHashMap<Ix, u64> = FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        if !has_tag(store, m, tag) {
            continue;
        }
        let author = store.messages.creator[m as usize];
        let entry = scores.entry(author).or_insert(0);
        for liker in store.message_likes.targets_of(m) {
            *entry += popularity(store, liker);
        }
    }
    let items: Vec<_> = scores
        .into_iter()
        .map(|(p, score)| {
            let row = Row { person_id: store.persons.id[p as usize], authority_score: score };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn busy_tag(s: &Store) -> String {
        let t = (0..s.tags.len() as Ix).max_by_key(|&t| s.tag_message.degree(t)).unwrap();
        s.tags.name[t as usize].to_string()
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        let p = Params { tag: busy_tag(s) };
        let rows = run(s, &p);
        assert!(!rows.is_empty());
        assert_eq!(rows, run_naive(s, &p));
    }

    #[test]
    fn popularity_counts_all_likes() {
        let s = testutil::store();
        // Independent check: sum of popularity over all persons equals
        // total like edges.
        let total: u64 = (0..s.persons.len() as Ix).map(|p| popularity(s, p)).sum();
        assert_eq!(total, s.person_likes.edge_count() as u64);
    }

    #[test]
    fn sorted_desc() {
        let s = testutil::store();
        let rows = run(s, &Params { tag: busy_tag(s) });
        for w in rows.windows(2) {
            assert!(
                w[0].authority_score > w[1].authority_score
                    || (w[0].authority_score == w[1].authority_score
                        && w[0].person_id < w[1].person_id)
            );
        }
    }

    #[test]
    fn unknown_tag_yields_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { tag: "Nope".into() }).is_empty());
    }
}
