//! BI 18 — *How many persons have a given number of messages*
//! (spec-text).
//!
//! For each Person, count their Messages that have non-empty content,
//! length below a threshold (exclusive), creation date after a given
//! date (exclusive), and are written in one of the given languages (a
//! Post's own language; a Comment inherits the root Post's language).
//! Then histogram: for each message count, the number of Persons with
//! exactly that count — including Persons with zero qualifying
//! messages.

use rustc_hash::FxHashMap;
use snb_core::Date;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::{messages_after, thread_language};

/// Parameters of BI 18.
#[derive(Clone, Debug)]
pub struct Params {
    /// Messages strictly after this date qualify.
    pub date: Date,
    /// Maximum content length (exclusive).
    pub length_threshold: u32,
    /// Accepted (thread) languages.
    pub languages: Vec<String>,
}

/// One result row of BI 18.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Number of qualifying messages.
    pub message_count: u64,
    /// Number of persons with exactly that many.
    pub person_count: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, std::cmp::Reverse<u64>) {
    (std::cmp::Reverse(row.person_count), std::cmp::Reverse(row.message_count))
}

fn qualifies(store: &Store, m: Ix, cutoff: snb_core::DateTime, p: &Params) -> bool {
    store.messages.creation_date[m as usize] > cutoff
        && !store.messages.content[m as usize].is_empty()
        && store.messages.length[m as usize] < p.length_threshold
        && p.languages.iter().any(|l| l == thread_language(store, m))
}

fn histogram(per_person: &[u64]) -> FxHashMap<u64, u64> {
    let mut hist: FxHashMap<u64, u64> = FxHashMap::default();
    for &c in per_person {
        *hist.entry(c).or_insert(0) += 1;
    }
    hist
}

/// Optimized implementation: message scan accumulating per-creator,
/// then the second-level aggregation (CP-8.2 subsequent aggregation).
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the date
/// filter becomes a binary-searched suffix of the permutation index;
/// workers accumulate dense per-person counters merged element-wise.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let cutoff = params.date.at_midnight();
    let window = messages_after(store, ctx.metrics(), cutoff);
    let per_person = ctx.par_map_reduce(
        window.len(),
        || vec![0u64; store.persons.len()],
        |acc, range| {
            for &m in &window[range] {
                if qualifies(store, m, cutoff, params) {
                    acc[store.messages.creator[m as usize] as usize] += 1;
                }
            }
        },
        |into, from| {
            for (i, c) in from.into_iter().enumerate() {
                into[i] += c;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (count, persons) in histogram(&per_person) {
        let row = Row { message_count: count, person_count: persons };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: person-major scan through their message lists.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let cutoff = params.date.at_midnight();
    let per_person: Vec<u64> = (0..store.persons.len() as Ix)
        .map(|p| {
            store
                .person_messages
                .targets_of(p)
                .filter(|&m| qualifies(store, m, cutoff, params))
                .count() as u64
        })
        .collect();
    let items: Vec<_> = histogram(&per_person)
        .into_iter()
        .map(|(count, persons)| {
            let row = Row { message_count: count, person_count: persons };
            (sort_key(&row), row)
        })
        .collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params {
            date: Date::from_ymd(2010, 6, 1),
            length_threshold: 150,
            languages: vec!["zh".into(), "en".into(), "hi".into()],
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
    }

    #[test]
    fn person_counts_cover_population() {
        let s = testutil::store();
        let rows = run(s, &params());
        let covered: u64 = rows.iter().map(|r| r.person_count).sum();
        // With <=100 distinct counts at this scale, every person is in
        // exactly one bucket.
        if rows.len() < 100 {
            assert_eq!(covered as usize, s.persons.len());
        }
        // The zero bucket must exist (plenty of inactive users).
        assert!(rows.iter().any(|r| r.message_count == 0));
    }

    #[test]
    fn language_filter_excludes() {
        let s = testutil::store();
        let mut p = params();
        p.languages = vec!["xx".into()];
        let rows = run(s, &p);
        // Nothing qualifies, so everyone lands in the zero bucket.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].message_count, 0);
        assert_eq!(rows[0].person_count as usize, s.persons.len());
    }

    #[test]
    fn image_posts_never_qualify() {
        let s = testutil::store();
        let cutoff = Date::from_ymd(2010, 1, 1).at_midnight();
        for m in 0..s.messages.len() as Ix {
            if !s.messages.image_file[m as usize].is_empty() {
                assert!(!qualifies(s, m, cutoff, &params()), "image post qualified");
            }
        }
    }

    #[test]
    fn sorted_by_person_count() {
        let s = testutil::store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }
}
