//! BI 25 — *Trusted connection paths* (reconstructed).
//!
//! Enumerate all (unweighted) shortest paths between two Persons over
//! `knows` and weight each path by the interactions between consecutive
//! pairs: a direct reply to a Post contributes 1.0, a direct reply to a
//! Comment 0.5 — counting only messages whose thread lives in a Forum
//! created within `[start_date, end_date]`. Paths are returned ordered
//! by weight descending.

use snb_core::Date;
use snb_engine::traverse::all_shortest_paths;
use snb_engine::QueryContext;
use snb_store::{Ix, Store, NONE};

/// Parameters of BI 25.
#[derive(Clone, Debug)]
pub struct Params {
    /// First endpoint (raw person id).
    pub person1_id: u64,
    /// Second endpoint (raw person id).
    pub person2_id: u64,
    /// Forum window start (inclusive).
    pub start_date: Date,
    /// Forum window end (inclusive).
    pub end_date: Date,
}

/// One result row of BI 25.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Person ids along the path, from person 1 to person 2.
    pub person_ids_in_path: Vec<u64>,
    /// Total path weight.
    pub path_weight: f64,
}

/// Interaction weight between two persons (order-insensitive): replies
/// by either to the other's posts (1.0) and comments (0.5), restricted
/// to threads in forums created inside the window.
fn pair_weight(store: &Store, a: Ix, b: Ix, lo: snb_core::DateTime, hi: snb_core::DateTime) -> f64 {
    let mut weight = 0.0;
    for (x, y) in [(a, b), (b, a)] {
        for c in store.person_messages.targets_of(x) {
            let parent = store.messages.reply_of[c as usize];
            if parent == NONE || store.messages.creator[parent as usize] != y {
                continue;
            }
            let forum = store.thread_forum(c);
            if forum == NONE {
                continue;
            }
            let created = store.forums.creation_date[forum as usize];
            if created < lo || created >= hi {
                continue;
            }
            weight += if store.messages.is_post(parent) { 1.0 } else { 0.5 };
        }
    }
    weight
}

/// Shared core: enumerate shortest paths, weight them, sort by weight
/// descending (ties by path sequence ascending for determinism). Each
/// path's weight is computed wholly inside one morsel, so the per-path
/// f64 summation order matches the sequential evaluation exactly.
fn paths_with_weights(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(a), Ok(b)) = (store.person(params.person1_id), store.person(params.person2_id)) else {
        return Vec::new();
    };
    let lo = params.start_date.at_midnight();
    let hi = params.end_date.plus_days(1).at_midnight();
    let paths = all_shortest_paths(store, ctx.metrics(), a, b);
    let mut rows: Vec<Row> = ctx.par_scan(paths.len(), |out, range| {
        for path in &paths[range] {
            let weight: f64 = path.windows(2).map(|w| pair_weight(store, w[0], w[1], lo, hi)).sum();
            out.push(Row {
                person_ids_in_path: path.iter().map(|&p| store.persons.id[p as usize]).collect(),
                path_weight: weight,
            });
        }
    });
    rows.sort_by(|x, y| {
        y.path_weight
            .partial_cmp(&x.path_weight)
            .expect("weights are finite")
            .then_with(|| x.person_ids_in_path.cmp(&y.person_ids_in_path))
    });
    rows
}

/// Optimized implementation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    paths_with_weights(store, ctx, params)
}

/// Naive reference: recomputes each pair weight through a full message
/// scan instead of the creator index.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(a), Ok(b)) = (store.person(params.person1_id), store.person(params.person2_id)) else {
        return Vec::new();
    };
    let lo = params.start_date.at_midnight();
    let hi = params.end_date.plus_days(1).at_midnight();
    let paths = all_shortest_paths(store, snb_engine::QueryMetrics::sink(), a, b);
    let mut rows: Vec<Row> = paths
        .into_iter()
        .map(|path| {
            let mut weight = 0.0;
            for w in path.windows(2) {
                for c in 0..store.messages.len() as Ix {
                    let parent = store.messages.reply_of[c as usize];
                    if parent == NONE {
                        continue;
                    }
                    let (cc, pc) = (
                        store.messages.creator[c as usize],
                        store.messages.creator[parent as usize],
                    );
                    if !((cc == w[0] && pc == w[1]) || (cc == w[1] && pc == w[0])) {
                        continue;
                    }
                    let forum = store.thread_forum(c);
                    let created = store.forums.creation_date[forum as usize];
                    if created < lo || created >= hi {
                        continue;
                    }
                    weight += if store.messages.is_post(parent) { 1.0 } else { 0.5 };
                }
            }
            Row {
                person_ids_in_path: path.iter().map(|&p| store.persons.id[p as usize]).collect(),
                path_weight: weight,
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.path_weight
            .partial_cmp(&x.path_weight)
            .expect("weights are finite")
            .then_with(|| x.person_ids_in_path.cmp(&y.person_ids_in_path))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;
    use snb_engine::traverse::shortest_path_len;

    fn connected_pair(s: &Store) -> (u64, u64) {
        // Find two persons at distance 2-3 for an interesting path set.
        for a in 0..s.persons.len() as Ix {
            for b in (a + 1..s.persons.len() as Ix).rev() {
                let d = shortest_path_len(s, snb_engine::QueryMetrics::sink(), a, b);
                if (2..=3).contains(&d) {
                    return (s.persons.id[a as usize], s.persons.id[b as usize]);
                }
            }
        }
        panic!("no mid-distance pair found");
    }

    fn params(s: &Store) -> Params {
        let (p1, p2) = connected_pair(s);
        Params {
            person1_id: p1,
            person2_id: p2,
            start_date: Date::from_ymd(2010, 1, 1),
            end_date: Date::from_ymd(2012, 12, 31),
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        let p = params(s);
        assert_eq!(run(s, &p), run_naive(s, &p));
    }

    #[test]
    fn paths_are_shortest_and_endpoints_correct() {
        let s = testutil::store();
        let p = params(s);
        let rows = run(s, &p);
        assert!(!rows.is_empty());
        let len = rows[0].person_ids_in_path.len();
        for r in &rows {
            assert_eq!(r.person_ids_in_path.len(), len, "non-uniform path length");
            assert_eq!(r.person_ids_in_path[0], p.person1_id);
            assert_eq!(*r.person_ids_in_path.last().unwrap(), p.person2_id);
        }
    }

    #[test]
    fn weights_descend() {
        let s = testutil::store();
        let rows = run(s, &params(s));
        for w in rows.windows(2) {
            assert!(w[0].path_weight >= w[1].path_weight);
        }
    }

    #[test]
    fn narrow_window_lowers_weights() {
        let s = testutil::store();
        let mut p = params(s);
        let wide: f64 = run(s, &p).iter().map(|r| r.path_weight).sum();
        p.start_date = Date::from_ymd(2012, 12, 1);
        p.end_date = Date::from_ymd(2012, 12, 2);
        let narrow: f64 = run(s, &p).iter().map(|r| r.path_weight).sum();
        assert!(narrow <= wide);
    }

    #[test]
    fn disconnected_pair_yields_empty() {
        let s = testutil::store();
        // An isolated person (degree 0) if any; otherwise skip.
        if let Some(lonely) = (0..s.persons.len() as Ix).find(|&p| s.knows.degree(p) == 0) {
            let other = (0..s.persons.len() as Ix).find(|&p| s.knows.degree(p) > 0).unwrap();
            let p = Params {
                person1_id: s.persons.id[lonely as usize],
                person2_id: s.persons.id[other as usize],
                start_date: Date::from_ymd(2010, 1, 1),
                end_date: Date::from_ymd(2013, 1, 1),
            };
            assert!(run(s, &p).is_empty());
        }
    }
}
