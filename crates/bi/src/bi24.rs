//! BI 24 — *Messages by topic and continent* (reconstructed).
//!
//! Messages carrying at least one Tag of a given TagClass (direct
//! relation), grouped by (creation year, month, continent of the
//! message's origin country); count messages and the likes they
//! received.

use rustc_hash::{FxHashMap, FxHashSet};
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::has_tag_of_class;

/// Parameters of BI 24.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tag-class name.
    pub tag_class: String,
}

/// One result row of BI 24.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Messages in the group.
    pub message_count: u64,
    /// Likes those messages received.
    pub like_count: u64,
    /// Creation year.
    pub year: i32,
    /// Creation month.
    pub month: u32,
    /// Continent name.
    pub continent_name: String,
}

const LIMIT: usize = 100;

type Key = (i32, u32, String);

fn sort_key(row: &Row) -> Key {
    (row.year, row.month, row.continent_name.clone())
}

fn group_rows(store: &Store, groups: FxHashMap<(i32, u32, Ix), (u64, u64)>) -> Vec<(Key, Row)> {
    groups
        .into_iter()
        .map(|((year, month, continent), (msgs, likes))| {
            let row = Row {
                message_count: msgs,
                like_count: likes,
                year,
                month,
                continent_name: store.places.name[continent as usize].to_string(),
            };
            (sort_key(&row), row)
        })
        .collect()
}

/// Optimized implementation: start from the class's tags via the
/// reverse index, dedup messages, then group.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// deduped message set fans out as morsels; counts are additive so the
/// merge order is immaterial.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(class) = store.tag_class_named(&params.tag_class) else { return Vec::new() };
    let mut seen: FxHashSet<Ix> = FxHashSet::default();
    for t in store.tagclass_tags.targets_of(class) {
        seen.extend(store.tag_message.targets_of(t));
    }
    let messages: Vec<Ix> = seen.into_iter().collect();
    let groups = ctx.par_map_reduce(
        messages.len(),
        FxHashMap::<(i32, u32, Ix), (u64, u64)>::default,
        |acc, range| {
            for &m in &messages[range] {
                let (y, mo) = store.messages.creation_date[m as usize].year_month();
                let continent = store.country_continent(store.messages.country[m as usize]);
                let e = acc.entry((y, mo, continent)).or_insert((0, 0));
                e.0 += 1;
                e.1 += store.message_likes.degree(m) as u64;
            }
        },
        |into, from| {
            for (k, (msgs, likes)) in from {
                let e = into.entry(k).or_insert((0, 0));
                e.0 += msgs;
                e.1 += likes;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (key, row) in group_rows(store, groups) {
        tk.push(key, row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: full message scan with the class test per message.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(class) = store.tag_class_named(&params.tag_class) else { return Vec::new() };
    let mut groups: FxHashMap<(i32, u32, Ix), (u64, u64)> = FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        if !has_tag_of_class(store, m, class) {
            continue;
        }
        let (y, mo) = store.messages.creation_date[m as usize].year_month();
        let continent = store.country_continent(store.messages.country[m as usize]);
        let e = groups.entry((y, mo, continent)).or_insert((0, 0));
        e.0 += 1;
        e.1 += store.message_likes.targets_of(m).count() as u64;
    }
    sort_truncate(group_rows(store, groups), LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        for c in ["MusicalArtist", "Band", "Scientist"] {
            let p = Params { tag_class: c.into() };
            assert_eq!(run(s, &p), run_naive(s, &p), "{c}");
        }
    }

    #[test]
    fn chronological_order() {
        let s = testutil::store();
        let rows = run(s, &Params { tag_class: "MusicalArtist".into() });
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }

    #[test]
    fn continents_are_valid() {
        let s = testutil::store();
        let continents: Vec<&str> =
            snb_datagen::dictionaries::CONTINENTS.iter().map(|c| c.name).collect();
        for r in run(s, &Params { tag_class: "Person".into() }) {
            assert!(continents.contains(&r.continent_name.as_str()), "{}", r.continent_name);
        }
    }

    #[test]
    fn unknown_class_yields_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { tag_class: "Unknown".into() }).is_empty());
    }
}
