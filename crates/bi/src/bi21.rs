//! BI 21 — *Zombies in a country* (spec-text).
//!
//! A zombie is a Person of the given country created before `end_date`
//! whose average message rate is in `[0, 1)` messages per month,
//! months counted inclusively on both partial ends (spec example:
//! Jan 31 → Mar 1 is 3 months). For each zombie report likes received
//! from other zombies, total likes received (both restricted to likers
//! whose profiles were created before `end_date`), and the ratio.

use snb_core::datetime::spanned_months;
use snb_core::Date;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

/// Parameters of BI 21.
#[derive(Clone, Debug)]
pub struct Params {
    /// Country name.
    pub country: String,
    /// End of the observation window.
    pub end_date: Date,
}

/// One result row of BI 21.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Zombie person id.
    pub zombie_id: u64,
    /// Likes received from other zombies.
    pub zombie_like_count: u64,
    /// Total likes received.
    pub total_like_count: u64,
    /// `zombie_like_count / total_like_count` (0.0 when undefined).
    pub zombie_score: f64,
}

const LIMIT: usize = 100;

/// Ordered f64 wrapper for the score key (scores are ratios in [0, 1],
/// never NaN).
#[derive(PartialEq, PartialOrd, Clone, Copy)]
struct Score(f64);
impl Eq for Score {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("scores are never NaN")
    }
}

fn sort_key(row: &Row) -> (std::cmp::Reverse<Score>, u64) {
    (std::cmp::Reverse(Score(row.zombie_score)), row.zombie_id)
}

/// Whether person `p` is a zombie wrt `end`: created before `end`, with
/// `< 1` message per spanned month before `end`.
fn is_zombie(store: &Store, p: Ix, end: snb_core::DateTime) -> bool {
    let created = store.persons.creation_date[p as usize];
    if created >= end {
        return false;
    }
    let months = spanned_months(created, end).max(1) as u64;
    let messages = store
        .person_messages
        .targets_of(p)
        .filter(|&m| store.messages.creation_date[m as usize] < end)
        .count() as u64;
    messages < months
}

fn build_rows(store: &Store, ctx: &QueryContext, country: Ix, end: snb_core::DateTime) -> Vec<Row> {
    // Zombie flags for the whole population (likers can be zombies from
    // any country); order-preserving parallel scan over the person ids.
    let zombie: Vec<bool> = ctx.par_scan(store.persons.len(), |out, range| {
        for p in range.start as Ix..range.end as Ix {
            out.push(is_zombie(store, p, end));
        }
    });
    let residents: Vec<Ix> =
        store.persons_in_country(country).filter(|&p| zombie[p as usize]).collect();
    // One row per zombie resident; `par_scan` stitches morsels back in
    // resident order, so the output order matches the sequential loop.
    ctx.par_scan(residents.len(), |out, range| {
        for &p in &residents[range] {
            let mut total = 0u64;
            let mut from_zombies = 0u64;
            for m in store.person_messages.targets_of(p) {
                for liker in store.message_likes.targets_of(m) {
                    if store.persons.creation_date[liker as usize] >= end {
                        continue;
                    }
                    total += 1;
                    if zombie[liker as usize] {
                        from_zombies += 1;
                    }
                }
            }
            let score = if total == 0 { 0.0 } else { from_zombies as f64 / total as f64 };
            out.push(Row {
                zombie_id: store.persons.id[p as usize],
                zombie_like_count: from_zombies,
                total_like_count: total,
                zombie_score: score,
            });
        }
    })
}

/// Optimized implementation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let end = params.end_date.at_midnight();
    let mut tk = TopK::new(LIMIT);
    for row in build_rows(store, ctx, country, end) {
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: identical row construction (single-threaded), full
/// sort (zombie classification itself is cross-checked in unit tests).
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let end = params.end_date.at_midnight();
    let ctx = QueryContext::single_threaded();
    let items: Vec<_> =
        build_rows(store, &ctx, country, end).into_iter().map(|r| (sort_key(&r), r)).collect();
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params { country: "China".into(), end_date: Date::from_ymd(2012, 6, 1) }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
    }

    #[test]
    fn score_is_ratio_or_zero() {
        let s = testutil::store();
        for r in run(s, &params()) {
            assert!(r.zombie_like_count <= r.total_like_count);
            if r.total_like_count == 0 {
                assert_eq!(r.zombie_score, 0.0);
            } else {
                let expect = r.zombie_like_count as f64 / r.total_like_count as f64;
                assert!((r.zombie_score - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zombies_post_less_than_monthly() {
        let s = testutil::store();
        let end = params().end_date.at_midnight();
        for r in run(s, &params()) {
            let p = s.person(r.zombie_id).unwrap();
            let months = spanned_months(s.persons.creation_date[p as usize], end).max(1) as u64;
            let msgs = s
                .person_messages
                .targets_of(p)
                .filter(|&m| s.messages.creation_date[m as usize] < end)
                .count() as u64;
            assert!(msgs < months, "zombie with {msgs} messages over {months} months");
        }
    }

    #[test]
    fn sorted_by_score_desc() {
        let s = testutil::store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            assert!(
                w[0].zombie_score > w[1].zombie_score
                    || (w[0].zombie_score == w[1].zombie_score && w[0].zombie_id < w[1].zombie_id)
            );
        }
    }

    #[test]
    fn early_end_date_yields_empty() {
        let s = testutil::store();
        let p = Params { country: "China".into(), end_date: Date::from_ymd(2010, 1, 1) };
        assert!(run(s, &p).is_empty());
    }
}
