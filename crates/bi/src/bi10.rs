//! BI 10 — *Central person for a tag* (reconstructed).
//!
//! A person's own score for a tag is `100` if they are interested in it
//! plus the number of their Messages created after a given date that
//! carry it; their friends-score is the sum of their friends' scores.
//! Persons with any signal (own or friends score positive) are ranked
//! by the combined total.

use rustc_hash::FxHashMap;
use snb_core::Date;
use snb_engine::topk::sort_truncate;
use snb_engine::QueryContext;
use snb_store::{Ix, Store};

use crate::common::has_tag;

/// Parameters of BI 10.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tag name.
    pub tag: String,
    /// Messages strictly after this date count toward the score.
    pub date: Date,
}

/// One result row of BI 10.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// Own score (interest bonus + tagged-message count).
    pub score: u64,
    /// Sum of friends' own scores.
    pub friends_score: u64,
}

const LIMIT: usize = 100;
const INTEREST_BONUS: u64 = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, u64) {
    (std::cmp::Reverse(row.score + row.friends_score), row.person_id)
}

/// Computes the per-person own scores (shared by both engines; the
/// difference is in how message counts are gathered).
fn scores_via_tag_index(store: &Store, tag: Ix, cutoff: snb_core::DateTime) -> Vec<u64> {
    let mut scores = vec![0u64; store.persons.len()];
    for p in store.interest_person.targets_of(tag) {
        scores[p as usize] += INTEREST_BONUS;
    }
    for m in store.tag_message.targets_of(tag) {
        if store.messages.creation_date[m as usize] > cutoff {
            scores[store.messages.creator[m as usize] as usize] += 1;
        }
    }
    scores
}

/// Optimized implementation.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the own
/// scores are materialized once from the tag index, then the person
/// scan (summing friends' scores over `knows`) runs as a parallel
/// top-k.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let cutoff = params.date.at_midnight();
    let scores = scores_via_tag_index(store, tag, cutoff);
    let tk = ctx.par_topk(store.persons.len(), LIMIT, |tk, range| {
        for p in range.start as Ix..range.end as Ix {
            let own = scores[p as usize];
            let friends: u64 = store.knows.targets_of(p).map(|f| scores[f as usize]).sum();
            if own == 0 && friends == 0 {
                continue;
            }
            let row =
                Row { person_id: store.persons.id[p as usize], score: own, friends_score: friends };
            tk.push(sort_key(&row), row);
        }
    });
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: per-person message scans.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(tag) = store.tag_named(&params.tag) else { return Vec::new() };
    let cutoff = params.date.at_midnight();
    let mut scores: FxHashMap<Ix, u64> = FxHashMap::default();
    for p in 0..store.persons.len() as Ix {
        let mut score = 0u64;
        if store.person_interest.targets_of(p).any(|t| t == tag) {
            score += INTEREST_BONUS;
        }
        score += store
            .person_messages
            .targets_of(p)
            .filter(|&m| {
                store.messages.creation_date[m as usize] > cutoff && has_tag(store, m, tag)
            })
            .count() as u64;
        scores.insert(p, score);
    }
    let mut items = Vec::new();
    for p in 0..store.persons.len() as Ix {
        let own = scores[&p];
        let friends: u64 = store.knows.targets_of(p).map(|f| scores[&f]).sum();
        if own == 0 && friends == 0 {
            continue;
        }
        let row =
            Row { person_id: store.persons.id[p as usize], score: own, friends_score: friends };
        items.push((sort_key(&row), row));
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn busy_tag(s: &Store) -> String {
        let t = (0..s.tags.len() as Ix).max_by_key(|&t| s.tag_message.degree(t)).unwrap();
        s.tags.name[t as usize].to_string()
    }

    fn params(s: &Store) -> Params {
        Params { tag: busy_tag(s), date: Date::from_ymd(2010, 6, 1) }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        let p = params(s);
        let rows = run(s, &p);
        assert!(!rows.is_empty());
        assert_eq!(rows, run_naive(s, &p));
    }

    #[test]
    fn interest_bonus_applied() {
        let s = testutil::store();
        let p = params(s);
        let tag = s.tag_named(&p.tag).unwrap();
        let rows = run(s, &p);
        for r in &rows {
            let pix = s.person(r.person_id).unwrap();
            let interested = s.person_interest.targets_of(pix).any(|t| t == tag);
            if interested {
                assert!(r.score >= INTEREST_BONUS);
            }
        }
    }

    #[test]
    fn late_date_drops_message_component() {
        let s = testutil::store();
        let mut p = params(s);
        p.date = Date::from_ymd(2013, 1, 1);
        // After the window, only interest bonuses remain.
        for r in run(s, &p) {
            assert!(r.score % INTEREST_BONUS == 0);
        }
    }

    #[test]
    fn sorted_by_total() {
        let s = testutil::store();
        let rows = run(s, &params(s));
        for w in rows.windows(2) {
            let ta = w[0].score + w[0].friends_score;
            let tb = w[1].score + w[1].friends_score;
            assert!(ta > tb || (ta == tb && w[0].person_id < w[1].person_id));
        }
    }
}
