//! BI 17 — *Friend triangles* (reconstructed).
//!
//! Count the distinct triangles of mutual friendship among Persons of a
//! given Country (unordered person triples where all three `knows` each
//! other).

use rustc_hash::FxHashSet;
use snb_engine::QueryContext;
use snb_store::{Ix, Store};

/// Parameters of BI 17.
#[derive(Clone, Debug)]
pub struct Params {
    /// Country name.
    pub country: String,
}

/// The single result row of BI 17.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Number of distinct triangles.
    pub count: u64,
}

/// Optimized implementation: order-based triangle counting (each
/// triangle found exactly once via `a < b < c`), neighbour set probes.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// members are apexes of independent triangle counts, so the scan
/// parallelizes as a plain integer map-reduce.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let members: Vec<Ix> = store.persons_in_country(country).collect();
    let member_set: FxHashSet<Ix> = members.iter().copied().collect();
    let metrics = ctx.metrics();
    let count = ctx.par_map_reduce(
        members.len(),
        || 0u64,
        |count, range| {
            let mut edges = 0u64;
            for &a in &members[range] {
                let mut nbrs_a: FxHashSet<Ix> = FxHashSet::default();
                for b in store.knows.targets_of(a) {
                    edges += 1;
                    if b > a && member_set.contains(&b) {
                        nbrs_a.insert(b);
                    }
                }
                for &b in &nbrs_a {
                    for c in store.knows.targets_of(b) {
                        edges += 1;
                        if c > b && nbrs_a.contains(&c) {
                            *count += 1;
                        }
                    }
                }
            }
            metrics.note_edges(edges);
        },
        |into, from| *into += from,
    );
    vec![Row { count }]
}

/// Naive reference: cubic scan over country members.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(country) = store.country_by_name(&params.country) else { return Vec::new() };
    let members: Vec<Ix> = store.persons_in_country(country).collect();
    let mut count = 0u64;
    for (i, &a) in members.iter().enumerate() {
        for (j, &b) in members.iter().enumerate().skip(i + 1) {
            if !store.knows.contains(a, b) {
                continue;
            }
            for &c in members.iter().skip(j + 1) {
                if store.knows.contains(a, c) && store.knows.contains(b, c) {
                    count += 1;
                }
            }
        }
    }
    vec![Row { count }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        for c in ["China", "India", "United_States", "Sweden"] {
            let p = Params { country: c.into() };
            assert_eq!(run(s, &p), run_naive(s, &p), "{c}");
        }
    }

    #[test]
    fn always_single_row() {
        let s = testutil::store();
        let rows = run(s, &Params { country: "China".into() });
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn homophily_generates_triangles_somewhere() {
        // The generator's correlation dimensions should produce at
        // least one within-country triangle across all countries.
        let s = testutil::store();
        let total: u64 = snb_datagen::dictionaries::COUNTRIES
            .iter()
            .map(|c| run(s, &Params { country: c.name.into() })[0].count)
            .sum();
        assert!(total > 0, "no in-country triangles at all");
    }

    #[test]
    fn unknown_country_yields_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { country: "Mordor".into() }).is_empty());
    }
}
