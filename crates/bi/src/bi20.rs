//! BI 20 — *High-level topics* (spec-text).
//!
//! For each given TagClass, count the Messages carrying at least one
//! Tag belonging to that class or any of its descendants (transitive
//! `isSubclassOf` closure).

use rustc_hash::FxHashSet;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::has_tag_in_class_subtree;

/// Parameters of BI 20.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tag-class names.
    pub tag_classes: Vec<String>,
}

/// One result row of BI 20.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Tag-class name (the requested root).
    pub tag_class_name: String,
    /// Distinct messages with a tag in the class subtree.
    pub message_count: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, String) {
    (std::cmp::Reverse(row.message_count), row.tag_class_name.clone())
}

/// Optimized implementation: expand each class to its subtree's tags,
/// union their reverse message lists.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the
/// subtree's tags fan out as morsels whose per-worker message sets are
/// unioned at the merge (set union is order-insensitive).
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let mut tk = TopK::new(LIMIT);
    for name in &params.tag_classes {
        let Ok(class) = store.tag_class_named(name) else { continue };
        let tags: Vec<Ix> = store
            .tagclass_subtree(class)
            .into_iter()
            .flat_map(|c| store.tagclass_tags.targets_of(c))
            .collect();
        let messages = ctx.par_map_reduce(
            tags.len(),
            FxHashSet::<Ix>::default,
            |acc, range| {
                for &t in &tags[range] {
                    acc.extend(store.tag_message.targets_of(t));
                }
            },
            |into, from| into.extend(from),
        );
        let row = Row { tag_class_name: name.clone(), message_count: messages.len() as u64 };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: full message scan with the per-message subtree
/// test.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let mut items = Vec::new();
    for name in &params.tag_classes {
        let Ok(class) = store.tag_class_named(name) else { continue };
        let count = (0..store.messages.len() as Ix)
            .filter(|&m| has_tag_in_class_subtree(store, m, class))
            .count() as u64;
        let row = Row { tag_class_name: name.clone(), message_count: count };
        items.push((sort_key(&row), row));
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    fn params() -> Params {
        Params {
            tag_classes: vec![
                "Person".into(),
                "Work".into(),
                "Event".into(),
                "Organisation".into(),
            ],
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        assert_eq!(run(s, &params()), run_naive(s, &params()));
    }

    #[test]
    fn subtree_dominates_leaf() {
        let s = testutil::store();
        // The Person class subtree includes MusicalArtist, so its count
        // must be at least the leaf count.
        let person = run(s, &Params { tag_classes: vec!["Person".into()] })[0].message_count;
        let artist = run(s, &Params { tag_classes: vec!["MusicalArtist".into()] })[0].message_count;
        assert!(person >= artist);
        assert!(person > 0);
    }

    #[test]
    fn thing_covers_everything_tagged() {
        let s = testutil::store();
        let thing = run(s, &Params { tag_classes: vec!["Thing".into()] })[0].message_count;
        let tagged = (0..s.messages.len() as Ix)
            .filter(|&m| s.message_tag.targets_of(m).next().is_some())
            .count() as u64;
        assert_eq!(thing, tagged);
    }

    #[test]
    fn unknown_classes_skipped() {
        let s = testutil::store();
        let rows = run(s, &Params { tag_classes: vec!["Ghost".into(), "Person".into()] });
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tag_class_name, "Person");
    }

    #[test]
    fn sorted_by_count_then_name() {
        let s = testutil::store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }
}
