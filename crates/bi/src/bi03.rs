//! BI 3 — *Tag evolution* (reconstructed).
//!
//! For a given year/month, compare each tag's message volume in that
//! month against the following month and rank tags by the absolute
//! difference — "which topics spiked or collapsed".

use rustc_hash::FxHashMap;
use snb_engine::topk::sort_truncate;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::{messages_in, month_window, next_month};

/// Parameters of BI 3.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Reference year.
    pub year: i32,
    /// Reference month (1–12).
    pub month: u32,
}

/// One result row of BI 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Tag name.
    pub tag_name: String,
    /// Messages with the tag in the reference month.
    pub count_month1: u64,
    /// Messages with the tag in the following month.
    pub count_month2: u64,
    /// `|count_month1 - count_month2|`.
    pub diff: u64,
}

const LIMIT: usize = 100;

fn sort_key(row: &Row) -> (std::cmp::Reverse<u64>, String) {
    (std::cmp::Reverse(row.diff), row.tag_name.clone())
}

/// Optimized implementation: per-tag counters over a single scan of the
/// two month windows.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Optimized implementation on an explicit execution context: the two
/// month windows are contiguous runs of the date permutation index,
/// each counted with a parallel scan.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (m1_lo, m1_hi) = month_window(params.year, params.month);
    let (ny, nm) = next_month(params.year, params.month);
    let (m2_lo, m2_hi) = month_window(ny, nm);
    let mut counts: FxHashMap<Ix, (u64, u64)> = FxHashMap::default();
    for (slot, (lo, hi)) in [(0usize, (m1_lo, m1_hi)), (1, (m2_lo, m2_hi))] {
        let window = messages_in(store, ctx.metrics(), lo, hi);
        let partial = ctx.par_map_reduce(
            window.len(),
            FxHashMap::<Ix, u64>::default,
            |acc, range| {
                for &m in &window[range] {
                    for tag in store.message_tag.targets_of(m) {
                        *acc.entry(tag).or_insert(0) += 1;
                    }
                }
            },
            |into, from| {
                for (k, c) in from {
                    *into.entry(k).or_insert(0) += c;
                }
            },
        );
        for (tag, c) in partial {
            let e = counts.entry(tag).or_insert((0, 0));
            if slot == 0 {
                e.0 += c;
            } else {
                e.1 += c;
            }
        }
    }
    let mut tk = TopK::new(LIMIT);
    for (tag, (c1, c2)) in counts {
        let row = Row {
            tag_name: store.tags.name[tag as usize].to_string(),
            count_month1: c1,
            count_month2: c2,
            diff: c1.abs_diff(c2),
        };
        tk.push(sort_key(&row), row);
    }
    ctx.metrics().note_topk(&tk);
    tk.into_sorted()
}

/// Naive reference: tag-major scan through the reverse tag index.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (m1_lo, m1_hi) = month_window(params.year, params.month);
    let (ny, nm) =
        if params.month == 12 { (params.year + 1, 1) } else { (params.year, params.month + 1) };
    let (m2_lo, m2_hi) = month_window(ny, nm);
    let mut items = Vec::new();
    for tag in 0..store.tags.len() as Ix {
        let mut c1 = 0u64;
        let mut c2 = 0u64;
        for m in store.tag_message.targets_of(tag) {
            let t = store.messages.creation_date[m as usize];
            if t >= m1_lo && t < m1_hi {
                c1 += 1;
            } else if t >= m2_lo && t < m2_hi {
                c2 += 1;
            }
        }
        if c1 == 0 && c2 == 0 {
            continue;
        }
        let row = Row {
            tag_name: store.tags.name[tag as usize].to_string(),
            count_month1: c1,
            count_month2: c2,
            diff: c1.abs_diff(c2),
        };
        items.push((sort_key(&row), row));
    }
    sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil;

    #[test]
    fn optimized_matches_naive() {
        let s = testutil::store();
        for (y, m) in [(2011, 3), (2011, 12), (2012, 6)] {
            let p = Params { year: y, month: m };
            assert_eq!(run(s, &p), run_naive(s, &p), "{y}-{m}");
        }
    }

    #[test]
    fn december_rolls_into_january() {
        let s = testutil::store();
        let rows = run(s, &Params { year: 2011, month: 12 });
        // Just exercising the year rollover path; diff must be
        // consistent.
        for r in &rows {
            assert_eq!(r.diff, r.count_month1.abs_diff(r.count_month2));
        }
    }

    #[test]
    fn sorted_by_diff_desc_then_name() {
        let s = testutil::store();
        let rows = run(s, &Params { year: 2011, month: 6 });
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(
                w[0].diff > w[1].diff || (w[0].diff == w[1].diff && w[0].tag_name <= w[1].tag_name)
            );
        }
    }

    #[test]
    fn window_outside_simulation_is_empty() {
        let s = testutil::store();
        assert!(run(s, &Params { year: 2005, month: 1 }).is_empty());
    }
}
