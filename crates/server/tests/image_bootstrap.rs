//! Store-image integration tests: recovery bounded by the image (not
//! the history), and cold-follower bootstrap over the replication
//! channel.
//!
//! Invariants under test: a primary running with `image: true` writes
//! `store.img` at compaction points and truncates the snapshot log
//! behind it, so a restart decodes the image and replays only the WAL
//! tail; the image is presence-driven on recovery (a later restart
//! with image *writing* off still loads it); and a follower
//! subscribing from seq 0 receives the image as
//! `ImageOffer`/`ImageChunk` frames, installs it atomically, applies
//! only the tail first-hand, and equals the primary on queries — with
//! its own durable state restartable from the installed image.

use std::time::{Duration, Instant};

use snb_bi::BiParams;
use snb_datagen::GeneratorConfig;
use snb_server::{
    image_info, recover, ReplicationConfig, Server, ServerConfig, ServiceParams, WalOptions,
    WriteBatch, WriteOps,
};

const SCALE: &str = "0.001";

fn config() -> GeneratorConfig {
    GeneratorConfig::for_scale_name(SCALE).unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("snb_imgit_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Update-only sequenced batches carved from the real stream.
fn batches(n: usize) -> Vec<WriteOps> {
    let (_, stream) = snb_store::bulk_store_and_stream(&config());
    stream.chunks(10).take(n).map(|chunk| WriteOps::Updates(chunk.to_vec())).collect()
}

/// WAL options for an image-writing primary: compact (and image) every
/// four batches.
fn image_options() -> WalOptions {
    WalOptions { fsync_every: 1, snapshot_every: 4, image: true, ..WalOptions::default() }
}

fn server_config(read_only: bool) -> ServerConfig {
    ServerConfig { workers: 2, threads_per_worker: 1, read_only, ..ServerConfig::default() }
}

fn start(dir: &std::path::Path, read_only: bool, options: WalOptions) -> Server {
    let recovered = recover(dir, &config(), SCALE, options).expect("recovery succeeds");
    let (store, durability, _) = recovered.into_durability();
    Server::start_durable(store, server_config(read_only), durability)
}

fn repl_cfg(dir: &std::path::Path) -> ReplicationConfig {
    ReplicationConfig {
        wal_dir: dir.to_path_buf(),
        scale: SCALE.to_string(),
        seed: config().seed,
        partitions: 1,
    }
}

fn submit(server: &Server, seq: u64, ops: &WriteOps) {
    let resp = server.client().call(ServiceParams::Write(WriteBatch { seq, ops: ops.clone() }), 0);
    resp.body.unwrap_or_else(|e| panic!("write seq {seq} refused: {e:?}"));
}

fn q5(server: &Server) -> snb_server::OkBody {
    let params = BiParams::Q5(snb_bi::bi05::Params { country: "China".into() });
    server.client().call(ServiceParams::Bi(params), 0).body.expect("Q5 read")
}

fn wait_applied(server: &Server, seq: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while server.last_applied_seq() < seq {
        assert!(Instant::now() < deadline, "node stuck at {}", server.last_applied_seq());
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Direct-apply oracle: batches 1..=n applied straight to a bulk store.
fn oracle(all: &[WriteOps]) -> snb_store::Store {
    let cfg = config();
    let world = snb_datagen::dictionaries::StaticWorld::build(cfg.seed);
    let (mut store, _) = snb_store::bulk_store_and_stream(&cfg);
    for ops in all {
        let WriteOps::Updates(events) = ops else { unreachable!() };
        for ev in events {
            store.apply_event(ev, &world).unwrap();
        }
    }
    if !store.date_index_fresh() {
        store.rebuild_date_index();
    }
    store
}

#[test]
fn image_recovery_replays_only_the_tail_and_equals_the_oracle() {
    let dir = tmp_dir("recov");
    let all = batches(10);

    // Ten batches through an image-writing primary: compactions at 4
    // and 8, each superseding the image and truncating the snapshot
    // log behind it.
    let primary = start(&dir, false, image_options());
    for (i, ops) in all.iter().enumerate() {
        submit(&primary, i as u64 + 1, ops);
    }
    primary.shutdown();

    let header = image_info(&dir, SCALE, config().seed)
        .expect("image header readable")
        .expect("an image was written at the compaction point");
    assert_eq!(header.seq, 8, "latest image covers through the last rotation");
    assert_eq!(header.partitions, 1);

    // Restart with image *writing* off: recovery is presence-driven,
    // so the image still anchors the rebuild and only 9..=10 replay.
    let rec = recover(&dir, &config(), SCALE, WalOptions::default()).expect("image recovery");
    assert_eq!(rec.report.image_seq, 8, "recovery started from the image");
    assert_eq!(rec.report.last_seq, 10);
    assert_eq!(rec.report.tail_replayed, 2, "only the post-image tail applies");
    assert_eq!(
        rec.report.snapshot_entries, 0,
        "the snapshot log was truncated behind the image"
    );

    // Exact state: the image + tail equals a direct-apply oracle.
    let (r, o) = (rec.store.stats(), oracle(&all).stats());
    assert_eq!((r.nodes, r.edges), (o.nodes, o.edges), "image recovery equals the oracle");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn image_recovery_time_is_flat_in_history_length() {
    // Not a wall-clock assertion (CI boxes jitter); the structural
    // claim is that the replayed tail after recovery-from-image is
    // bounded by `snapshot_every`, no matter how long the history
    // grows — that is what makes recovery O(image + tail).
    let dir = tmp_dir("flat");
    let all = batches(12);
    for n in [5usize, 9, 12] {
        let primary = start(&dir, false, image_options());
        let from = primary.last_applied_seq() as usize;
        for (i, ops) in all.iter().enumerate().take(n).skip(from) {
            submit(&primary, i as u64 + 1, ops);
        }
        primary.shutdown();
        let rec = recover(&dir, &config(), SCALE, WalOptions::default()).expect("recovery");
        assert_eq!(rec.report.last_seq, n as u64);
        assert!(
            rec.report.tail_replayed <= 4,
            "history {n}: tail {} exceeds snapshot_every",
            rec.report.tail_replayed
        );
        assert_eq!(rec.report.image_seq, (n as u64 / 4) * 4, "history {n}: image tracks rotation");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_follower_bootstraps_from_the_image_offer() {
    let p_dir = tmp_dir("boot_p");
    let f_dir = tmp_dir("boot_f");
    let all = batches(10);

    let primary = start(&p_dir, false, image_options());
    let repl_addr = primary.listen_replication("127.0.0.1:0", repl_cfg(&p_dir)).expect("repl bind");
    for (i, ops) in all.iter().enumerate() {
        submit(&primary, i as u64 + 1, ops);
    }
    assert_eq!(
        image_info(&p_dir, SCALE, config().seed).unwrap().map(|h| h.seq),
        Some(8),
        "primary wrote its image before the follower connects"
    );

    // A cold follower (fresh directory, from_seq 0): the ship loop
    // must offer the image rather than replaying the whole history —
    // the snapshot log behind the image is gone, so it *couldn't*
    // replay from zero.
    let follower = start(&f_dir, true, WalOptions::default());
    let handle = follower.replicate_from(&repl_addr.to_string(), repl_cfg(&f_dir));
    assert!(handle.wait_caught_up(Duration::from_secs(10)), "catch-up: {:?}", handle.status());
    wait_applied(&follower, 10, Duration::from_secs(10));

    let status = handle.status();
    assert_eq!(status.image_bootstraps, 1, "bootstrapped from the image: {status:?}");
    assert_eq!(status.records_applied, 2, "only the 9..=10 tail applies first-hand: {status:?}");
    assert_eq!(status.apply_errors, 0);

    // Oracle equality across the wire.
    let (p, f) = (q5(&primary), q5(&follower));
    assert_eq!((p.rows, p.fingerprint), (f.rows, f.fingerprint), "follower equals primary");
    assert_eq!(f.applied_seq, 10);

    // The installed image is durable on the follower: a restart
    // recovers from it (plus its own appended tail), not from scratch.
    handle.stop();
    follower.shutdown();
    primary.shutdown();
    let rec = recover(&f_dir, &config(), SCALE, WalOptions::default()).expect("follower recovery");
    assert_eq!(rec.report.image_seq, 8, "follower restarts from the installed image");
    assert_eq!(rec.report.last_seq, 10);
    let (r, o) = (rec.store.stats(), oracle(&all).stats());
    assert_eq!((r.nodes, r.edges), (o.nodes, o.edges), "restarted follower equals the oracle");

    let _ = std::fs::remove_dir_all(&p_dir);
    let _ = std::fs::remove_dir_all(&f_dir);
}

#[test]
fn warm_follower_is_not_offered_the_image() {
    let p_dir = tmp_dir("warm_p");
    let f_dir = tmp_dir("warm_f");
    let all = batches(10);

    let primary = start(&p_dir, false, image_options());
    let repl_addr = primary.listen_replication("127.0.0.1:0", repl_cfg(&p_dir)).expect("repl bind");
    // The follower subscribes first and rides the live tail, so its
    // cursor is always at (or just behind) the primary's — when a
    // reconnect happens its from_seq is past the image and plain log
    // shipping must be used.
    let follower = start(&f_dir, true, WalOptions::default());
    let handle = follower.replicate_from(&repl_addr.to_string(), repl_cfg(&f_dir));
    for (i, ops) in all.iter().enumerate() {
        submit(&primary, i as u64 + 1, ops);
        wait_applied(&follower, i as u64 + 1, Duration::from_secs(10));
    }
    let status = handle.status();
    assert_eq!(status.image_bootstraps, 0, "live follower never needed the image: {status:?}");
    assert_eq!(status.records_applied, 10, "every record applied first-hand: {status:?}");

    let (p, f) = (q5(&primary), q5(&follower));
    assert_eq!((p.rows, p.fingerprint), (f.rows, f.fingerprint));

    handle.stop();
    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&p_dir);
    let _ = std::fs::remove_dir_all(&f_dir);
}
