//! Crash-recovery integration tests: the same three fault windows the
//! `service_load --chaos` harness SIGKILLs through, exercised in-process
//! with error-flavored faults (no child processes, so they run under
//! plain `cargo test`), plus the stalled-connection hardening.
//!
//! The invariant under test everywhere: an acknowledged batch survives
//! recovery exactly once, an unacknowledged batch is either absent
//! (never durable → resubmission applies it) or replayed (durable →
//! resubmission dedupes), and every failure is a typed error — no
//! hangs, no poisoned-lock panic cascades.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use snb_bi::BiParams;
use snb_datagen::stream::UpdateEvent;
use snb_datagen::GeneratorConfig;
use snb_server::{
    recover, ErrorKind, OkBody, Server, ServerConfig, ServiceParams, WalOptions, WriteBatch,
    WriteOps,
};
use snb_store::DeleteOp;

const SCALE: &str = "0.001";

/// The fault registry is process-global; tests that arm it serialize.
fn fault_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
}

fn config() -> GeneratorConfig {
    GeneratorConfig::for_scale_name(SCALE).unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("snb_chaosit_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sequenced batches carved from the real update stream (inserts in
/// stream order plus interleaved like-deletes).
fn batches(n: usize) -> Vec<WriteOps> {
    let (_, stream) = snb_store::bulk_store_and_stream(&config());
    let mut out = Vec::new();
    let mut likes = Vec::new();
    for chunk in stream.chunks(20).take(n) {
        for ev in chunk {
            if let UpdateEvent::AddLikePost(l) = &ev.event {
                likes.push(DeleteOp::Like(l.person.0, l.message.0));
            }
        }
        out.push(WriteOps::Updates(chunk.to_vec()));
        if !likes.is_empty() {
            out.push(WriteOps::Deletes(std::mem::take(&mut likes)));
        }
    }
    out
}

fn server_config() -> ServerConfig {
    ServerConfig { workers: 2, threads_per_worker: 1, ..ServerConfig::default() }
}

fn start(dir: &std::path::Path) -> Server {
    let recovered =
        recover(dir, &config(), SCALE, WalOptions::default()).expect("recovery succeeds");
    let (store, durability, _) = recovered.into_durability();
    Server::start_durable(store, server_config(), durability)
}

fn submit(server: &Server, seq: u64, ops: &WriteOps) -> Result<OkBody, (ErrorKind, String)> {
    let resp = server.client().call(ServiceParams::Write(WriteBatch { seq, ops: ops.clone() }), 0);
    match resp.body {
        Ok(ok) => Ok(ok),
        Err(e) => Err((e.kind, e.detail)),
    }
}

fn probe_read(server: &Server) -> Result<OkBody, (ErrorKind, String)> {
    let params = BiParams::Q5(snb_bi::bi05::Params { country: "China".into() });
    let resp = server.client().call(ServiceParams::Bi(params), 0);
    match resp.body {
        Ok(ok) => Ok(ok),
        Err(e) => Err((e.kind, e.detail)),
    }
}

#[test]
fn torn_append_is_refused_then_truncated_on_recovery() {
    let _g = fault_lock();
    snb_fault::disarm_all();
    let dir = tmp_dir("torn");
    let batches = batches(4);

    let server = start(&dir);
    for seq in 1..=2u64 {
        let ok = submit(&server, seq, &batches[seq as usize - 1]).expect("pre-fault ack");
        assert!(ok.rows > 0);
        assert_eq!(ok.fingerprint, seq);
    }

    // The third append tears after 8 bytes: not durable, not applied.
    snb_fault::arm_from_spec("wal.append.short_write=short:8@h1", 7).unwrap();
    let (kind, detail) = submit(&server, 3, &batches[2]).expect_err("torn append must fail");
    assert_eq!(kind, ErrorKind::Internal, "typed internal error, got {detail:?}");

    // The torn tail makes the log unusable until restart: later batches
    // are refused instead of being appended after garbage.
    let (kind, _) = submit(&server, 3, &batches[2]).expect_err("broken WAL refuses appends");
    assert_eq!(kind, ErrorKind::Internal);
    snb_fault::disarm_all();
    server.shutdown();

    // Recovery truncates the torn record and keeps the two good ones;
    // the resubmission then applies for the first time.
    let report = recover(&dir, &config(), SCALE, WalOptions::default()).unwrap().report;
    assert_eq!(report.last_seq, 2, "torn seq 3 must not replay");
    assert!(report.truncated_bytes > 0, "the torn tail must be cut");

    let server = start(&dir);
    let ok = submit(&server, 3, &batches[2]).expect("resubmission applies");
    assert!(ok.rows > 0, "seq 3 was never durable: this is a first apply, not a dedupe");
    let ok = submit(&server, 4, &batches[3]).expect("stream continues");
    assert_eq!(ok.fingerprint, 4);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_unacked_batch_replays_and_dedupes() {
    let _g = fault_lock();
    snb_fault::disarm_all();
    let dir = tmp_dir("durable_unacked");
    let batches = batches(3);

    let server = start(&dir);
    submit(&server, 1, &batches[0]).expect("first ack");

    // Seq 2's record reaches the disk, but the ack window is torn: the
    // client sees an error for a batch that IS durable.
    snb_fault::arm_from_spec("wal.append.post_append=err@h1", 7).unwrap();
    let (kind, detail) = submit(&server, 2, &batches[1]).expect_err("ack must be lost");
    assert_eq!(kind, ErrorKind::Internal);
    assert!(detail.contains("durable"), "detail names the window: {detail}");
    // A still-running process must not append seq 2 twice.
    let (kind, _) = submit(&server, 2, &batches[1]).expect_err("ambiguous log refuses appends");
    assert_eq!(kind, ErrorKind::Internal);
    snb_fault::disarm_all();
    server.shutdown();

    // Recovery replays the durable batch; the client's retry dedupes.
    let report = recover(&dir, &config(), SCALE, WalOptions::default()).unwrap().report;
    assert_eq!(report.last_seq, 2, "durable seq 2 must replay");

    let server = start(&dir);
    let ok = submit(&server, 2, &batches[1]).expect("retry is re-acknowledged");
    assert_eq!((ok.rows, ok.fingerprint), (0, 2), "dedupe: zero rows, fingerprint = last seq");
    let ok = submit(&server, 3, &batches[2]).expect("stream continues");
    assert!(ok.rows > 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_apply_panic_poisons_store_until_recovery() {
    let _g = fault_lock();
    snb_fault::disarm_all();
    let dir = tmp_dir("poison");
    let batches = batches(3);

    let server = start(&dir);
    submit(&server, 1, &batches[0]).expect("first ack");
    probe_read(&server).expect("healthy store answers reads");

    // Seq 2 panics mid-apply, after the WAL append: the store may hold
    // half a batch, so everything is refused with a typed error.
    snb_fault::arm_from_spec("writer.apply.panic=panic@h1", 7).unwrap();
    let (kind, _) = submit(&server, 2, &batches[1]).expect_err("apply panic must be caught");
    assert_eq!(kind, ErrorKind::StorePoisoned);
    snb_fault::disarm_all();

    let (kind, detail) = probe_read(&server).expect_err("degraded store refuses reads");
    assert_eq!(kind, ErrorKind::StorePoisoned, "typed refusal, got {detail:?}");
    let (kind, _) = submit(&server, 3, &batches[2]).expect_err("degraded store refuses writes");
    assert_eq!(kind, ErrorKind::StorePoisoned);
    let report = server.shutdown();
    assert!(report.poisoned_rejects >= 2, "refusals are counted");

    // The batch was durable before the panic; restart replays it (the
    // fault is gone — it modeled a transient crash, not bad data) and
    // the retry dedupes. The recovered store passes its invariants and
    // answers reads again.
    let report = recover(&dir, &config(), SCALE, WalOptions::default()).unwrap().report;
    assert_eq!(report.last_seq, 2, "WAL'd seq 2 replays cleanly");

    let server = start(&dir);
    let ok = submit(&server, 2, &batches[1]).expect("retry dedupes");
    assert_eq!((ok.rows, ok.fingerprint), (0, 2));
    let ok = submit(&server, 3, &batches[2]).expect("stream continues");
    assert!(ok.rows > 0);
    probe_read(&server).expect("recovered store answers reads");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_partition_wal_recovers_to_oracle_after_torn_append() {
    let _g = fault_lock();
    snb_fault::disarm_all();
    let dir = tmp_dir("multi_part");
    let batches = batches(8);
    let opts = WalOptions { partitions: 2, ..WalOptions::default() };
    let sc = ServerConfig { partitions: 2, ..server_config() };
    let start2 = |dir: &std::path::Path| -> Server {
        let recovered = recover(dir, &config(), SCALE, opts).expect("segmented recovery succeeds");
        let (store, durability, _) = recovered.into_durability();
        Server::start_durable(store, sc.clone(), durability)
    };

    let server = start2(&dir);
    for seq in 1..=6u64 {
        let ok = submit(&server, seq, &batches[seq as usize - 1]).expect("pre-fault ack");
        assert_eq!(ok.fingerprint, seq);
    }
    // Seq 7 tears mid-record in whichever segment owns it: not durable,
    // not applied, not acknowledged.
    snb_fault::arm_from_spec("wal.append.short_write=short:8@h1", 7).unwrap();
    let (kind, _) = submit(&server, 7, &batches[6]).expect_err("torn append must fail");
    assert_eq!(kind, ErrorKind::Internal);
    snb_fault::disarm_all();
    server.shutdown();

    // The log really spans two segments.
    assert!(dir.join("wal-0.log").exists(), "segment 0 exists");
    assert!(dir.join("wal-1.log").exists(), "segment 1 exists");

    // Recovery over the segmented log equals a direct-apply oracle of
    // exactly the acknowledged prefix: 0 lost acks, 0 duplicates.
    let rec = recover(&dir, &config(), SCALE, opts).unwrap();
    assert_eq!(rec.report.last_seq, 6, "exactly the acked prefix replays");
    assert!(rec.report.truncated_bytes > 0, "the torn record was cut");

    let cfg = config();
    let world = snb_datagen::dictionaries::StaticWorld::build(cfg.seed);
    let (mut oracle, _) = snb_store::bulk_store_and_stream(&cfg);
    for ops in &batches[..6] {
        match ops {
            WriteOps::Updates(events) => {
                for ev in events {
                    oracle.apply_event(ev, &world).unwrap();
                }
            }
            WriteOps::Deletes(dels) => {
                oracle.apply_deletes(dels).unwrap();
            }
        }
    }
    if !oracle.date_index_fresh() {
        oracle.rebuild_date_index();
    }
    let (r, o) = (rec.store.stats(), oracle.stats());
    assert_eq!((r.nodes, r.edges), (o.nodes, o.edges), "recovered store equals the oracle");

    // The lost batch resubmits as a first apply; the stream continues.
    let server = start2(&dir);
    let ok = submit(&server, 7, &batches[6]).expect("resubmission applies");
    assert!(ok.rows > 0, "seq 7 was never durable: first apply, not a dedupe");
    let ok = submit(&server, 8, &batches[7]).expect("stream continues");
    assert_eq!(ok.fingerprint, 8);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_concurrent_acks_are_durable() {
    let _g = fault_lock();
    snb_fault::disarm_all();
    let dir = tmp_dir("group_commit");
    let all = batches(8);
    let n = all.len() as u64;
    let opts =
        WalOptions { group_commit: true, fsync_every: 4, partitions: 2, ..WalOptions::default() };
    let recovered = recover(&dir, &config(), SCALE, opts).expect("fresh recovery");
    let (store, durability, _) = recovered.into_durability();
    let server =
        Server::start_durable(store, ServerConfig { partitions: 2, ..server_config() }, durability);

    // Four submitters own interleaved sequence numbers and retry on the
    // gap rejection until their predecessor lands — every ack they see
    // must be covered by a flush.
    let acked = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let client = server.client();
            let all = &all;
            let acked = Arc::clone(&acked);
            s.spawn(move || {
                for (i, ops) in all.iter().enumerate() {
                    if i % 4 != t {
                        continue;
                    }
                    let seq = i as u64 + 1;
                    loop {
                        let resp = client
                            .call(ServiceParams::Write(WriteBatch { seq, ops: ops.clone() }), 0);
                        match resp.body {
                            Ok(_) => {
                                acked.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) if e.detail.contains("sequence gap") => {
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected write error: {e:?}"),
                        }
                    }
                }
            });
        }
    });
    assert_eq!(acked.load(Ordering::Relaxed), n, "every batch acknowledged");
    let syncs = server.wal_syncs();
    assert!(syncs > 0, "acks require at least one covering flush");
    let report = server.shutdown();
    assert_eq!(report.batches_applied, n);

    // Every acknowledged batch survives recovery exactly once.
    let rec = recover(&dir, &config(), SCALE, opts).unwrap();
    assert_eq!(rec.report.last_seq, n);
    assert_eq!(rec.report.snapshot_entries + rec.report.wal_entries, n);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_connection_is_closed_with_typed_outcome() {
    // No faults armed: this is plain timeout hardening (a slowloris
    // client holding a half-frame open must not pin a connection
    // thread forever).
    use std::io::{Read, Write};

    let store = snb_store::store_for_config(&config());
    let mut server = Server::start(
        store,
        ServerConfig { conn_read_timeout: Some(Duration::from_millis(150)), ..server_config() },
    );
    let addr = server.listen("127.0.0.1:0").expect("bind loopback");

    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    conn.write_all(&[7, 0]).expect("half a length prefix");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 16];
    let n = conn.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "the server must close the stalled connection, not answer it");

    let log = server.log_handle();
    let report = server.shutdown();
    assert_eq!(report.conn_stalled, 1, "the stall is counted");
    assert!(
        log.log().snapshot().iter().any(|r| r.outcome == "conn_stalled"),
        "the stall lands in the access log with a typed outcome"
    );
}
