//! Regression tests for head-of-line blocking in the service tier.
//!
//! Before the lane split, one bounded FIFO admitted every workload, so
//! a burst of heavy BI reads parked hundreds of jobs in front of
//! single-entity IS lookups: short-read latency degraded to the full
//! drain time of the backlog, and under shed pressure short reads were
//! rejected exactly as often as the heavies that caused the pressure.
//! These tests pin the fix — short reads keep progressing (and are
//! never shed) while a BI flood holds a deep heavy-lane backlog — and
//! exercise the reactor transport with hundreds of concurrent
//! connections.

use std::time::{Duration, Instant};

use snb_datagen::GeneratorConfig;
use snb_interactive::IsParams;
use snb_server::proto::{self, Request};
use snb_server::{Server, ServerConfig, ServiceParams};
use snb_store::store_for_config;

fn tiny_store() -> snb_store::Store {
    store_for_config(&GeneratorConfig::for_scale_name("0.001").unwrap())
}

fn heavy_bi() -> ServiceParams {
    ServiceParams::Bi(snb_bi::BiParams::Q13(snb_bi::bi13::Params { country: "India".into() }))
}

fn short_is(key: u64) -> ServiceParams {
    ServiceParams::Is(IsParams::from_parts(1 + (key % 7) as u8, key).expect("valid IS query"))
}

/// The starvation regression: pipeline a deep BI flood over TCP, then
/// issue short reads while the heavy lane still holds a backlog. Every
/// short read must succeed quickly — none may shed, and none may wait
/// for the flood to drain.
#[test]
fn short_reads_progress_under_bi_flood() {
    const FLOOD: usize = 400;
    const SHORTS: usize = 30;

    let mut server = Server::start(
        tiny_store(),
        ServerConfig { workers: 1, queue_capacity: 512, ..ServerConfig::default() },
    );
    let addr = server.listen("127.0.0.1:0").expect("bind ephemeral port");
    let mut flood_conn = std::net::TcpStream::connect(addr).expect("connect");

    // Pipeline the whole flood before reading any response: the heavy
    // lane fills while the single worker drains it.
    for i in 0..FLOOD as u64 {
        let req = Request { id: i + 1, deadline_us: 0, min_seq: 0, params: heavy_bi() };
        proto::write_frame(&mut flood_conn, &proto::encode_request(&req)).expect("write frame");
    }

    // Wait until a real backlog is admitted (not just buffered in the
    // socket) so the shorts demonstrably overtake queued heavies.
    let arm_deadline = Instant::now() + Duration::from_secs(10);
    while server.queued() < 64 {
        assert!(Instant::now() < arm_deadline, "flood never built a heavy backlog");
        std::thread::sleep(Duration::from_millis(1));
    }

    let client = server.client();
    let mut short_latencies = Vec::with_capacity(SHORTS);
    for key in 0..SHORTS as u64 {
        let started = Instant::now();
        let resp = client.call(short_is(key), 0);
        short_latencies.push(started.elapsed());
        assert!(resp.body.is_ok(), "short read under flood failed: {resp:?}");
    }
    // The heavy backlog must still exist when the last short finishes:
    // the shorts went around the flood, not behind it.
    assert!(
        server.queued() > 0,
        "heavy lane drained before the shorts finished — the flood was too shallow \
         to exercise head-of-line blocking"
    );
    short_latencies.sort();
    let p99 = short_latencies[(SHORTS * 99) / 100];
    // Generous CI bound: before the lane split the same shorts waited
    // behind ~400 queued heavies (an unbounded multiple of one heavy
    // execution); with the weighted scheduler each waits for at most a
    // couple of in-flight heavies.
    assert!(p99 < Duration::from_secs(2), "short p99 {p99:?} under BI flood");

    let mid = server.report_now();
    assert_eq!(mid.shed_by_lane[0], 0, "no short read may shed during a BI flood");

    // Drain the flood responses; all were admitted (capacity 512), so
    // all must be answered ok.
    for _ in 0..FLOOD {
        let payload = proto::read_frame(&mut flood_conn).expect("read flood response");
        let resp = proto::decode_response(&payload).expect("decode flood response");
        assert!(resp.body.is_ok(), "flood response failed: {resp:?}");
    }
    drop(flood_conn);

    let report = server.shutdown();
    assert_eq!(report.shed, 0);
    assert_eq!(report.served_by_lane[0], SHORTS as u64, "every short served");
    assert_eq!(report.served_by_lane[1], FLOOD as u64, "every heavy served");
    assert_eq!(report.served, (SHORTS + FLOOD) as u64);
}

/// The reactor transport holds hundreds of concurrent connections on a
/// fixed thread count: every connection gets its request answered, and
/// the peak-connection gauge proves they were all open at once.
#[test]
fn hundreds_of_concurrent_connections_all_answered() {
    const CONNS: usize = 300;

    let mut server = Server::start(
        tiny_store(),
        ServerConfig { workers: 2, queue_capacity: 1024, ..ServerConfig::default() },
    );
    let addr = server.listen("127.0.0.1:0").expect("bind ephemeral port");

    // Open every connection first (all concurrently alive), then issue
    // one short read per connection, then collect every response.
    let mut conns: Vec<std::net::TcpStream> =
        (0..CONNS).map(|_| std::net::TcpStream::connect(addr).expect("connect")).collect();
    for (i, conn) in conns.iter_mut().enumerate() {
        let req =
            Request { id: i as u64 + 1, deadline_us: 0, min_seq: 0, params: short_is(i as u64) };
        proto::write_frame(conn, &proto::encode_request(&req)).expect("write frame");
    }
    for (i, conn) in conns.iter_mut().enumerate() {
        let payload = proto::read_frame(conn).expect("read response");
        let resp = proto::decode_response(&payload).expect("decode response");
        assert_eq!(resp.id, i as u64 + 1);
        assert!(resp.body.is_ok(), "conn #{i} failed: {resp:?}");
    }
    drop(conns);

    let report = server.shutdown();
    assert_eq!(report.served, CONNS as u64);
    assert_eq!(report.conn_accepted, CONNS as u64);
    assert!(
        report.conn_peak >= CONNS as u64,
        "peak {} — connections were not concurrently open",
        report.conn_peak
    );
    assert_eq!(report.shed, 0);
}
