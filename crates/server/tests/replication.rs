//! Replication integration tests, in-process (no child processes, so
//! they run under plain `cargo test`; the subprocess SIGKILL failover
//! lives in `service_load --replication`).
//!
//! Invariants under test: a follower converges to the primary's exact
//! store through the real durable write path; responses carry
//! `applied_seq` and the `min_seq` floor refuses with `stale_read`
//! until shipping catches up; client writes on a follower answer
//! `not_primary`; promotion flips the node writable from its applied
//! high-water mark; and delivery is at-least-once while application is
//! exactly-once — a restarted or rewound subscription re-ships records
//! that the seq-dedupe gate absorbs without double-applying.

use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use snb_bi::BiParams;
use snb_datagen::GeneratorConfig;
use snb_server::proto::{decode_repl, encode_repl, read_frame, write_frame};
use snb_server::{
    recover, replication, ErrorKind, ReplFrame, ReplicationConfig, Server, ServerConfig,
    ServiceParams, WalOptions, WriteBatch, WriteOps,
};

const SCALE: &str = "0.001";

fn config() -> GeneratorConfig {
    GeneratorConfig::for_scale_name(SCALE).unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("snb_replit_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Update-only sequenced batches carved from the real stream.
fn batches(n: usize) -> Vec<WriteOps> {
    let (_, stream) = snb_store::bulk_store_and_stream(&config());
    stream.chunks(10).take(n).map(|chunk| WriteOps::Updates(chunk.to_vec())).collect()
}

fn server_config(read_only: bool) -> ServerConfig {
    ServerConfig { workers: 2, threads_per_worker: 1, read_only, ..ServerConfig::default() }
}

fn start(dir: &std::path::Path, read_only: bool) -> Server {
    let recovered =
        recover(dir, &config(), SCALE, WalOptions::default()).expect("recovery succeeds");
    let (store, durability, _) = recovered.into_durability();
    Server::start_durable(store, server_config(read_only), durability)
}

fn repl_cfg(dir: &std::path::Path) -> ReplicationConfig {
    ReplicationConfig {
        wal_dir: dir.to_path_buf(),
        scale: SCALE.to_string(),
        seed: config().seed,
        partitions: 1,
    }
}

fn submit(server: &Server, seq: u64, ops: &WriteOps) -> u64 {
    let resp = server.client().call(ServiceParams::Write(WriteBatch { seq, ops: ops.clone() }), 0);
    resp.body.unwrap_or_else(|e| panic!("write seq {seq} refused: {e:?}")).fingerprint
}

fn q5(server: &Server) -> snb_server::OkBody {
    let params = BiParams::Q5(snb_bi::bi05::Params { country: "China".into() });
    server.client().call(ServiceParams::Bi(params), 0).body.expect("Q5 read")
}

fn wait_applied(server: &Server, seq: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while server.last_applied_seq() < seq {
        assert!(Instant::now() < deadline, "follower stuck at {}", server.last_applied_seq());
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn follower_converges_serves_bounded_staleness_and_promotes() {
    let p_dir = tmp_dir("prim");
    let f_dir = tmp_dir("foll");
    let all = batches(7);

    let primary = start(&p_dir, false);
    let repl_addr = primary.listen_replication("127.0.0.1:0", repl_cfg(&p_dir)).expect("repl bind");

    // Backlog: three batches land before the follower ever connects, so
    // catch-up (not live tail) must deliver them.
    for seq in 1..=3u64 {
        assert_eq!(submit(&primary, seq, &all[seq as usize - 1]), seq);
    }

    let follower = start(&f_dir, true);
    assert!(follower.is_read_only());
    let handle = follower.replicate_from(&repl_addr.to_string(), repl_cfg(&f_dir));
    assert!(handle.wait_caught_up(Duration::from_secs(10)), "catch-up: {:?}", handle.status());
    wait_applied(&follower, 3, Duration::from_secs(10));

    // Live tail: three more batches while subscribed.
    for seq in 4..=6u64 {
        assert_eq!(submit(&primary, seq, &all[seq as usize - 1]), seq);
    }
    wait_applied(&follower, 6, Duration::from_secs(10));
    let status = handle.status();
    assert_eq!(status.records_applied, 6, "all six applied first-hand: {status:?}");
    assert_eq!(status.apply_errors, 0);

    // Oracle equality plus the staleness stamp on both nodes.
    let (p, f) = (q5(&primary), q5(&follower));
    assert_eq!((p.rows, p.fingerprint), (f.rows, f.fingerprint), "follower equals primary");
    assert_eq!(p.applied_seq, 6);
    assert_eq!(f.applied_seq, 6);

    // `min_seq` above the applied frontier refuses typed + retryable.
    let params = BiParams::Q5(snb_bi::bi05::Params { country: "China".into() });
    let stale = follower.client().call_min_seq(ServiceParams::Bi(params), 0, 7);
    let err = stale.body.expect_err("min_seq 7 > applied 6 must refuse");
    assert_eq!(err.kind, ErrorKind::StaleRead);
    assert!(err.detail.contains("lag"), "detail names the lag: {}", err.detail);
    // At the frontier it serves.
    let params = BiParams::Q5(snb_bi::bi05::Params { country: "China".into() });
    let fresh = follower.client().call_min_seq(ServiceParams::Bi(params), 0, 6);
    assert!(fresh.body.is_ok());

    // Writes are refused with the redirect kind, not applied.
    let resp =
        follower.client().call(ServiceParams::Write(WriteBatch { seq: 7, ops: all[0].clone() }), 0);
    let err = resp.body.expect_err("follower must refuse client writes");
    assert_eq!(err.kind, ErrorKind::NotPrimary);
    let report = follower.report_now();
    assert_eq!(report.not_primary_rejects, 1);
    assert_eq!(report.stale_read_rejects, 1);

    // A Hello to a follower is denied (it is not a primary yet).
    let f_repl_addr =
        follower.listen_replication("127.0.0.1:0", repl_cfg(&f_dir)).expect("follower repl bind");
    let mut probe = TcpStream::connect(f_repl_addr).expect("connect follower repl");
    let hello = ReplFrame::Hello {
        scale: SCALE.into(),
        seed: config().seed,
        partitions: 1,
        from_seq: 0,
        epoch: 0,
    };
    write_frame(&mut probe, &encode_repl(&hello)).unwrap();
    match decode_repl(&read_frame(&mut probe).unwrap()).unwrap() {
        ReplFrame::Deny { detail, .. } => assert!(detail.contains("not a primary"), "{detail}"),
        other => panic!("expected Deny, got {other:?}"),
    }
    drop(probe);

    // Promotion over the wire: writable from seq 6, applier exits, and
    // the next write in sequence is accepted locally.
    let writable_from = replication::promote(&f_repl_addr.to_string()).expect("promote");
    assert_eq!(writable_from, 6);
    assert!(!follower.is_read_only());
    assert_eq!(submit(&follower, 7, &all[6]), 7);
    // Idempotent re-promotion.
    assert_eq!(replication::promote(&f_repl_addr.to_string()).expect("re-promote"), 7);

    handle.stop();
    primary.shutdown();
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&p_dir);
    let _ = std::fs::remove_dir_all(&f_dir);
}

/// Accepts subscription attempts until one delivers a `Hello` (dead
/// sockets from a stopped applier's reconnect backoff are drained and
/// dropped), returning the live stream and the follower's cursor.
fn accept_subscriber(listener: &TcpListener) -> (TcpStream, u64) {
    loop {
        let (mut stream, _) = listener.accept().expect("accept");
        stream.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let Ok(payload) = read_frame(&mut stream) else { continue };
        match decode_repl(&payload) {
            Ok(ReplFrame::Hello { from_seq, .. }) => return (stream, from_seq),
            _ => continue,
        }
    }
}

fn ship(stream: &mut TcpStream, seq: u64, ops: &WriteOps) {
    let frame = ReplFrame::Record { seq, partition: 0, ops: ops.clone(), epoch: 0 };
    write_frame(stream, &encode_repl(&frame)).expect("ship record");
}

#[test]
fn follower_restart_mid_catch_up_reapplies_idempotently() {
    let f_dir = tmp_dir("restart");
    let all = batches(6);

    // A scripted primary: the test owns the listener and speaks the
    // shipping protocol by hand, so the overlap window is exact.
    let listener = TcpListener::bind("127.0.0.1:0").expect("fake primary bind");
    let addr = listener.local_addr().unwrap().to_string();

    let follower = start(&f_dir, true);
    let handle = follower.replicate_from(&addr, repl_cfg(&f_dir));

    // Connection 1: fresh follower subscribes from 0; ship three
    // records, then die mid-catch-up (no CaughtUp marker).
    let (mut conn, from_seq) = accept_subscriber(&listener);
    assert_eq!(from_seq, 0, "fresh follower subscribes from zero");
    for seq in 1..=3u64 {
        ship(&mut conn, seq, &all[seq as usize - 1]);
    }
    wait_applied(&follower, 3, Duration::from_secs(10));
    drop(conn); // primary dies mid-ship

    // Follower restarts: its own WAL must hold exactly the applied
    // prefix, recovered through the real replay path.
    handle.stop();
    follower.shutdown();
    let report = recover(&f_dir, &config(), SCALE, WalOptions::default()).unwrap().report;
    assert_eq!(report.last_seq, 3, "follower WAL persisted the shipped prefix");
    assert_eq!(report.replayed(), 3);

    let follower = start(&f_dir, true);
    assert_eq!(follower.last_applied_seq(), 3);
    let handle = follower.replicate_from(&addr, repl_cfg(&f_dir));

    // Connection 2: the restarted follower resumes from its recovered
    // cursor. Re-ship an overlapping window (2..=6) — at-least-once
    // delivery — and the dedupe gate must absorb 2 and 3 silently.
    let (mut conn, from_seq) = accept_subscriber(&listener);
    assert_eq!(from_seq, 3, "restart resumes from the recovered seq, not zero");
    for seq in 2..=6u64 {
        ship(&mut conn, seq, &all[seq as usize - 1]);
    }
    write_frame(&mut conn, &encode_repl(&ReplFrame::CaughtUp { through_seq: 6 })).unwrap();
    assert!(handle.wait_caught_up(Duration::from_secs(10)), "status: {:?}", handle.status());
    wait_applied(&follower, 6, Duration::from_secs(10));

    let status = handle.status();
    assert_eq!(status.records_applied, 3, "only 4..=6 apply first-hand: {status:?}");
    assert_eq!(status.records_deduped, 2, "the 2..=3 overlap re-acks, never re-applies");
    assert_eq!(status.apply_errors, 0);
    assert_eq!(status.primary_seq, 6);
    assert_eq!(status.lag(), 0);

    handle.stop();
    follower.shutdown();

    // Exactly-once application: the follower's durable state equals a
    // direct-apply oracle of batches 1..=6 (a double-apply would
    // diverge node/edge counts).
    let cfg = config();
    let world = snb_datagen::dictionaries::StaticWorld::build(cfg.seed);
    let (mut oracle, _) = snb_store::bulk_store_and_stream(&cfg);
    for ops in &all {
        let WriteOps::Updates(events) = ops else { unreachable!() };
        for ev in events {
            oracle.apply_event(ev, &world).unwrap();
        }
    }
    if !oracle.date_index_fresh() {
        oracle.rebuild_date_index();
    }
    let rec = recover(&f_dir, &cfg, SCALE, WalOptions::default()).unwrap();
    assert_eq!(rec.report.last_seq, 6);
    let (f, o) = (rec.store.stats(), oracle.stats());
    assert_eq!((f.nodes, f.edges), (o.nodes, o.edges), "follower equals the oracle");

    let _ = std::fs::remove_dir_all(&f_dir);
}

#[test]
fn promoted_epoch_survives_restart() {
    let dir = tmp_dir("epoch");
    let all = batches(3);

    // A follower with two applied records, promoted over the wire: the
    // bumped fencing epoch must be fsynced into the WAL headers before
    // the node goes writable, so a restart recovers it.
    let node = start(&dir, true);
    let repl_addr = node.listen_replication("127.0.0.1:0", repl_cfg(&dir)).expect("repl bind");
    assert_eq!(node.epoch(), 0, "fresh node starts at epoch zero");

    let listener = TcpListener::bind("127.0.0.1:0").expect("fake primary bind");
    let fake_primary = listener.local_addr().unwrap().to_string();
    let handle = node.replicate_from(&fake_primary, repl_cfg(&dir));
    let (mut conn, _) = accept_subscriber(&listener);
    for seq in 1..=2u64 {
        ship(&mut conn, seq, &all[seq as usize - 1]);
    }
    wait_applied(&node, 2, Duration::from_secs(10));

    let promotion = replication::promote_with(&repl_addr.to_string(), 7, "", "", &[])
        .expect("promote with an epoch floor");
    assert_eq!(promotion.writable_from, 2);
    assert_eq!(promotion.epoch, 7, "the floor wins when above own-term + 1");
    assert_eq!(node.epoch(), 7);
    // Writable in the new term: the next write in sequence lands.
    assert_eq!(submit(&node, 3, &all[2]), 3);

    handle.stop();
    node.shutdown();

    // Restart: recovery reports the bumped epoch from the WAL headers
    // and the server resumes in the same term.
    let rec = recover(&dir, &config(), SCALE, WalOptions::default()).expect("recovery");
    assert_eq!(rec.report.epoch, 7, "bumped epoch recovered from the headers");
    assert_eq!(rec.report.last_seq, 3);
    let (store, durability, _) = rec.into_durability();
    let node = Server::start_durable(store, server_config(false), durability);
    assert_eq!(node.epoch(), 7, "restarted node resumes its term");
    assert!(!node.is_fenced());
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn promotion_announce_repoints_siblings_and_fences_the_old_primary() {
    let p_dir = tmp_dir("sb_p");
    let f1_dir = tmp_dir("sb_f1");
    let f2_dir = tmp_dir("sb_f2");
    let all = batches(5);

    let primary = start(&p_dir, false);
    let p_repl = primary.listen_replication("127.0.0.1:0", repl_cfg(&p_dir)).expect("p repl");
    let f1 = start(&f1_dir, true);
    let f1_repl = f1.listen_replication("127.0.0.1:0", repl_cfg(&f1_dir)).expect("f1 repl");
    let f2 = start(&f2_dir, true);
    // f2 needs its own listener to receive the Announce.
    let f2_repl = f2.listen_replication("127.0.0.1:0", repl_cfg(&f2_dir)).expect("f2 repl");

    let h1 = f1.replicate_from(&p_repl.to_string(), repl_cfg(&f1_dir));
    let h2 = f2.replicate_from(&p_repl.to_string(), repl_cfg(&f2_dir));
    for seq in 1..=3u64 {
        assert_eq!(submit(&primary, seq, &all[seq as usize - 1]), seq);
    }
    wait_applied(&f1, 3, Duration::from_secs(10));
    wait_applied(&f2, 3, Duration::from_secs(10));

    // Promote f1, telling it where it lives and who its siblings are —
    // including the still-running old primary, which must end up fenced.
    let siblings = vec![f2_repl.to_string(), p_repl.to_string()];
    let promotion = replication::promote_with(
        &f1_repl.to_string(),
        0,
        &f1_repl.to_string(),
        "127.0.0.1:7777",
        &siblings,
    )
    .expect("promote f1");
    assert_eq!(promotion.writable_from, 3);
    assert!(promotion.epoch >= 1);
    assert!(!f1.is_read_only());

    // The old primary learns of the newer term from the announce and
    // fences itself — no operator intervention.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !primary.is_fenced() {
        assert!(Instant::now() < deadline, "old primary never fenced");
        std::thread::sleep(Duration::from_millis(5));
    }
    let resp =
        primary.client().call(ServiceParams::Write(WriteBatch { seq: 4, ops: all[3].clone() }), 0);
    let err = resp.body.expect_err("fenced ex-primary must refuse writes");
    assert_eq!(err.kind, ErrorKind::Fenced);
    assert!(
        err.detail.contains("(primary=127.0.0.1:7777)"),
        "fenced refusal carries the redirect hint: {}",
        err.detail
    );
    assert_eq!(primary.report_now().fenced_rejects, 1);

    // f2 re-subscribes to f1 automatically and applies f1's new writes.
    assert_eq!(submit(&f1, 4, &all[3]), 4);
    wait_applied(&f2, 4, Duration::from_secs(10));
    let status = h2.status();
    assert!(status.resubscribed >= 1, "f2 re-pointed itself: {status:?}");
    assert!(!status.denied);
    let (a, b) = (q5(&f1), q5(&f2));
    assert_eq!((a.rows, a.fingerprint), (b.rows, b.fingerprint), "f2 equals the new primary");

    h1.stop();
    h2.stop();
    primary.shutdown();
    f1.shutdown();
    f2.shutdown();
    let _ = std::fs::remove_dir_all(&p_dir);
    let _ = std::fs::remove_dir_all(&f1_dir);
    let _ = std::fs::remove_dir_all(&f2_dir);
}
