//! Loom-free stress test of the service under concurrent writes: an
//! update-stream slice (inserts plus interleaved like-deletes) replays
//! through the server's write path while client threads hammer BI 2,
//! 12, and 18 — the date-window queries most sensitive to index
//! staleness. At every batch boundary the writes quiesce and each
//! query's service response must equal a direct single-threaded run
//! against the same (now quiescent) store: the service layer may add
//! queueing, but never nondeterminism.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use snb_bi::{BiParams, QuerySummary};
use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::UpdateEvent;
use snb_datagen::GeneratorConfig;
use snb_engine::QueryContext;
use snb_params::ParamGen;
use snb_server::{Server, ServerConfig, ServiceParams};
use snb_store::DeleteOp;

const BATCH: usize = 50;

#[test]
fn responses_match_quiesced_oracle_at_batch_boundaries() {
    let config = GeneratorConfig::for_scale_name("0.001").unwrap();
    let (store, stream) = snb_store::bulk_store_and_stream(&config);
    let world = StaticWorld::build(config.seed);

    // Fixed bindings for the three date-sensitive queries, derived from
    // the bulk store before the server takes ownership.
    let gen = ParamGen::new(&store, config.seed);
    let mut probes: Vec<BiParams> = Vec::new();
    for q in [2u8, 12, 18] {
        probes.extend(gen.bi_params(q, 1));
    }
    assert_eq!(probes.len(), 3);
    drop(gen);

    let server = Server::start(
        store,
        ServerConfig { workers: 2, queue_capacity: 128, ..ServerConfig::default() },
    );
    let writer = server.writer();

    // Chaos readers: hammer the probe queries through the service while
    // the writer mutates the store. Their results race with the writes,
    // so only well-formedness is asserted; the count proves overlap.
    let stop = Arc::new(AtomicBool::new(false));
    let chaos_ok = Arc::new(AtomicU64::new(0));
    let chaos: Vec<_> = (0..2)
        .map(|_| {
            let client = server.client();
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&chaos_ok);
            let probes = probes.clone();
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let resp = client.call(ServiceParams::Bi(probes[i % 3].clone()), 0);
                    assert!(resp.body.is_ok(), "chaos read failed: {:?}", resp.body);
                    ok.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();

    let client = server.client();
    let oracle_ctx = QueryContext::single_threaded();
    let mut boundaries = 0usize;
    let mut pending_likes: Vec<DeleteOp> = Vec::new();
    for batch in stream.chunks(BATCH).take(8) {
        for (i, event) in batch.iter().enumerate() {
            if let UpdateEvent::AddLikePost(like) = &event.event {
                if i % 2 == 0 {
                    pending_likes.push(DeleteOp::Like(like.person.0, like.message.0));
                }
            }
            writer.apply_update(event, &world).expect("apply update");
        }
        if !pending_likes.is_empty() {
            writer.apply_deletes(&pending_likes).expect("apply deletes");
            pending_likes.clear();
        }
        writer.validate_invariants().expect("invariants at batch boundary");

        // Writes quiesced (the writer is this thread): the service must
        // now agree exactly with a direct run on the latest published
        // version — pinned lock-free, identical for every later read
        // until the next publish.
        let expected: Vec<QuerySummary> = {
            let snap = server.snapshot();
            probes.iter().map(|p| snb_bi::run_with(&snap, &oracle_ctx, p)).collect()
        };
        for (p, want) in probes.iter().zip(&expected) {
            let resp = client.call(ServiceParams::Bi(p.clone()), 0);
            let ok = resp.body.expect("boundary probe should succeed");
            assert_eq!(
                (ok.rows as usize, ok.fingerprint),
                (want.rows, want.fingerprint),
                "service diverged from quiesced oracle for {p:?} at boundary {boundaries}"
            );
        }
        boundaries += 1;
    }
    assert!(boundaries >= 4, "stream too short to exercise batching: {boundaries}");

    stop.store(true, Ordering::Release);
    for h in chaos {
        h.join().expect("chaos reader");
    }
    let report = server.shutdown();
    assert!(report.updates_applied >= (boundaries * BATCH / 2) as u64);
    assert!(chaos_ok.load(Ordering::Relaxed) > 0, "chaos readers never overlapped the writes");
    assert_eq!(report.internal_errors, 0);
    assert_eq!(report.bad_requests, 0);
}
