//! A thin readiness-driven reactor over raw `epoll(7)` — std-only, no
//! external crates (the offline-build constraint rules out `mio`), so
//! the three syscalls are declared directly, the same way the binary
//! declares `signal(2)`.
//!
//! Why this exists: the PR 3 service was thread-per-connection over
//! blocking reads, so 1K mostly-idle connections cost 1K OS threads
//! (stacks, scheduler load, context switches). With a reactor an idle
//! connection costs one registered fd and ~a buffer: a single thread
//! `epoll_wait`s on every connection plus the listener, accepts and
//! drains readable sockets, and hands decoded requests to the
//! admission lanes. Worker counts stay fixed while connection counts
//! sweep to the thousands — the property `service_load --sweep`
//! measures.
//!
//! The wrapper is level-triggered on purpose: if a wakeup leaves bytes
//! unread (e.g. the per-wakeup fairness cap), the next `epoll_wait`
//! reports the fd again, so no readiness is ever lost to an edge.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// epoll_ctl ops.
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;

// Event masks.
const EPOLLIN: u32 = 0x001;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;

/// Kernel ABI for one epoll event. On x86-64 the kernel struct is
/// packed (no padding between the 32-bit mask and the 64-bit data);
/// other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// One readiness notification, translated out of the raw mask.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// The caller-chosen registration token.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The peer hung up or the fd errored — after draining any
    /// remaining bytes, the connection should be dropped.
    pub closed: bool,
}

/// An owned epoll instance.
pub(crate) struct Poller {
    epfd: RawFd,
    /// Reused kernel-side event buffer.
    scratch: Vec<EpollEvent>,
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd, scratch: vec![EpollEvent { events: 0, data: 0 }; 256] })
    }

    /// Registers `fd` for level-triggered read/hangup readiness under
    /// `token`.
    pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: EPOLLIN | EPOLLRDHUP, data: token };
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregisters `fd`. Errors are swallowed — the fd may already be
    /// closed, which deregisters implicitly.
    pub fn delete(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Blocks up to `timeout` for readiness; translated events are
    /// appended to `out` (which is cleared first). A zero-event return
    /// is a timeout, not an error; `EINTR` is reported as an empty set
    /// so callers treat signals like timeouts.
    pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = unsafe {
            epoll_wait(self.epfd, self.scratch.as_mut_ptr(), self.scratch.len() as i32, ms)
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for i in 0..n as usize {
            let raw = self.scratch[i];
            let mask = raw.events;
            out.push(Event {
                token: raw.data,
                readable: mask & EPOLLIN != 0,
                closed: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

// The epoll fd is only ever touched from the reactor thread, but the
// Poller is created on the thread that calls `listen` and moved into
// the reactor thread, which requires Send.
unsafe impl Send for Poller {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readiness_fires_on_data_and_not_before() {
        let (mut client, server) = loopback_pair();
        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7).unwrap();
        let mut events = Vec::new();

        // Nothing written yet: wait times out with no events.
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "spurious readiness: {events:?}");

        client.write_all(b"ping").unwrap();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].closed);
    }

    #[test]
    fn level_triggered_readiness_persists_until_drained() {
        let (mut client, mut server) = loopback_pair();
        server.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1).unwrap();
        client.write_all(b"abcdef").unwrap();

        let mut events = Vec::new();
        // Read only part of the payload: the fd must stay ready.
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        let mut two = [0u8; 2];
        server.read_exact(&mut two).unwrap();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1, "level-triggered: undrained fd must re-arm");

        // Fully drained: back to quiet.
        let mut rest = [0u8; 4];
        server.read_exact(&mut rest).unwrap();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_is_reported_as_closed() {
        let (client, server) = loopback_pair();
        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 3).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].closed, "peer hangup must surface as closed");
    }

    #[test]
    fn delete_stops_notifications() {
        let (mut client, server) = loopback_pair();
        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 9).unwrap();
        poller.delete(server.as_raw_fd());
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "deregistered fd must not notify");
    }

    #[test]
    fn many_registrations_single_wait() {
        let mut poller = Poller::new().unwrap();
        let mut pairs = Vec::new();
        for token in 0..300u64 {
            let (client, server) = loopback_pair();
            poller.add(server.as_raw_fd(), token).unwrap();
            pairs.push((client, server));
        }
        // Wake a scattered subset.
        for token in [5usize, 77, 131, 299] {
            pairs[token].0.write_all(b"!").unwrap();
        }
        let mut events = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while seen.len() < 4 && std::time::Instant::now() < deadline {
            poller.wait(Duration::from_millis(100), &mut events).unwrap();
            for e in &events {
                assert!(e.readable);
                seen.insert(e.token);
            }
        }
        assert_eq!(seen, [5u64, 77, 131, 299].into_iter().collect());
    }
}
