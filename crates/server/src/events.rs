//! Binary codec for update-stream events and delete batches — the
//! payload format shared by the wire protocol's `Write` workload and the
//! write-ahead log.
//!
//! The encoding reuses the proto primitives (little-endian integers,
//! `u16`-length strings) and is an exact inverse pair: every field of
//! every `Raw*` record round-trips, which `events::tests` pins down over
//! a real generated stream. Exactness matters more than compactness here
//! — WAL replay must rebuild *the same* store the original apply
//! produced, byte for byte of query results.

use snb_core::datetime::DateTime;
use snb_core::model::{
    ForumId, ForumKind, Gender, MessageId, MessageKind, OrganisationId, PersonId, PlaceId, TagId,
};
use snb_datagen::graph::{RawForum, RawKnows, RawLike, RawMembership, RawMessage, RawPerson};
use snb_datagen::stream::{TimedEvent, UpdateEvent};
use snb_store::DeleteOp;

use crate::proto::{
    put_i32, put_i64, put_str, put_strs, put_u16, put_u32, put_u64, put_u8, DecodeError, Reader,
    WriteOps,
};

// ---------------------------------------------------------------------
// Small composite helpers.
// ---------------------------------------------------------------------

/// Interns `s` in the global store dictionary and returns the leaked
/// `&'static str` — decoded wire values whose domain is a bounded
/// dictionary (person names) borrow the interner's copy.
fn intern_static(s: &str) -> &'static str {
    let it = snb_store::interner();
    it.resolve(it.intern(s))
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(buf, 0),
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
    }
}

fn opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, DecodeError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.u64()?),
    })
}

fn put_opt_str(buf: &mut Vec<u8>, v: &Option<String>) {
    match v {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
    }
}

fn opt_str(r: &mut Reader<'_>) -> Result<Option<String>, DecodeError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.string()?),
    })
}

fn put_tag_ids(buf: &mut Vec<u8>, tags: &[TagId]) {
    put_u16(buf, tags.len() as u16);
    for t in tags {
        put_u64(buf, t.0);
    }
}

fn tag_ids(r: &mut Reader<'_>) -> Result<Vec<TagId>, DecodeError> {
    let n = r.u16()? as usize;
    (0..n).map(|_| Ok(TagId(r.u64()?))).collect()
}

// ---------------------------------------------------------------------
// Per-record codecs.
// ---------------------------------------------------------------------

fn encode_person(buf: &mut Vec<u8>, p: &RawPerson) {
    put_u64(buf, p.id.0);
    put_str(buf, &p.first_name);
    put_str(buf, &p.last_name);
    put_u8(
        buf,
        match p.gender {
            Gender::Male => 0,
            Gender::Female => 1,
        },
    );
    put_i32(buf, p.birthday.0);
    put_i64(buf, p.creation_date.0);
    put_str(buf, &p.location_ip);
    put_u8(buf, p.browser);
    put_u64(buf, p.city.0);
    put_u64(buf, p.country as u64);
    put_u16(buf, p.languages.len() as u16);
    buf.extend_from_slice(&p.languages);
    put_strs(buf, &p.emails);
    put_tag_ids(buf, &p.interests);
    match p.study_at {
        None => put_u8(buf, 0),
        Some((org, year)) => {
            put_u8(buf, 1);
            put_u64(buf, org.0);
            put_i32(buf, year);
        }
    }
    put_u16(buf, p.work_at.len() as u16);
    for &(org, year) in &p.work_at {
        put_u64(buf, org.0);
        put_i32(buf, year);
    }
}

fn decode_person(r: &mut Reader<'_>) -> Result<RawPerson, DecodeError> {
    Ok(RawPerson {
        id: PersonId(r.u64()?),
        // Names come from the generator's static pools, so routing the
        // decode through the interner (whose dictionary they already
        // populate) hands back `&'static str` without a per-event leak.
        first_name: intern_static(&r.string()?),
        last_name: intern_static(&r.string()?),
        gender: match r.u8()? {
            0 => Gender::Male,
            1 => Gender::Female,
            other => return Err(r.err(format!("bad gender tag {other}"))),
        },
        birthday: snb_core::Date(r.i32()?),
        creation_date: DateTime(r.i64()?),
        location_ip: r.string()?,
        browser: r.u8()?,
        city: PlaceId(r.u64()?),
        country: r.u64()? as usize,
        languages: {
            let n = r.u16()? as usize;
            r.take(n)?.to_vec()
        },
        emails: r.strings()?,
        interests: tag_ids(r)?,
        study_at: match r.u8()? {
            0 => None,
            _ => Some((OrganisationId(r.u64()?), r.i32()?)),
        },
        work_at: {
            let n = r.u16()? as usize;
            (0..n).map(|_| Ok((OrganisationId(r.u64()?), r.i32()?))).collect::<Result<_, _>>()?
        },
    })
}

fn encode_knows(buf: &mut Vec<u8>, k: &RawKnows) {
    put_u64(buf, k.a.0);
    put_u64(buf, k.b.0);
    put_i64(buf, k.creation_date.0);
    put_u8(buf, k.dimension);
}

fn decode_knows(r: &mut Reader<'_>) -> Result<RawKnows, DecodeError> {
    Ok(RawKnows {
        a: PersonId(r.u64()?),
        b: PersonId(r.u64()?),
        creation_date: DateTime(r.i64()?),
        dimension: r.u8()?,
    })
}

fn encode_forum(buf: &mut Vec<u8>, f: &RawForum) {
    put_u64(buf, f.id.0);
    put_u8(
        buf,
        match f.kind {
            ForumKind::Wall => 0,
            ForumKind::Album => 1,
            ForumKind::Group => 2,
        },
    );
    put_str(buf, &f.title);
    put_i64(buf, f.creation_date.0);
    put_u64(buf, f.moderator.0);
    put_tag_ids(buf, &f.tags);
}

fn decode_forum(r: &mut Reader<'_>) -> Result<RawForum, DecodeError> {
    Ok(RawForum {
        id: ForumId(r.u64()?),
        kind: match r.u8()? {
            0 => ForumKind::Wall,
            1 => ForumKind::Album,
            2 => ForumKind::Group,
            other => return Err(r.err(format!("bad forum kind {other}"))),
        },
        title: r.string()?,
        creation_date: DateTime(r.i64()?),
        moderator: PersonId(r.u64()?),
        tags: tag_ids(r)?,
    })
}

fn encode_membership(buf: &mut Vec<u8>, m: &RawMembership) {
    put_u64(buf, m.forum.0);
    put_u64(buf, m.person.0);
    put_i64(buf, m.join_date.0);
}

fn decode_membership(r: &mut Reader<'_>) -> Result<RawMembership, DecodeError> {
    Ok(RawMembership {
        forum: ForumId(r.u64()?),
        person: PersonId(r.u64()?),
        join_date: DateTime(r.i64()?),
    })
}

fn encode_message(buf: &mut Vec<u8>, m: &RawMessage) {
    put_u64(buf, m.id.0);
    put_u8(
        buf,
        match m.kind {
            MessageKind::Post => 0,
            MessageKind::Comment => 1,
        },
    );
    put_i64(buf, m.creation_date.0);
    put_u64(buf, m.creator.0);
    put_u64(buf, m.country.0);
    put_str(buf, &m.location_ip);
    put_u8(buf, m.browser);
    put_str(buf, &m.content);
    put_u32(buf, m.length);
    put_opt_str(buf, &m.image_file);
    match m.language {
        None => put_u8(buf, 0),
        Some(l) => {
            put_u8(buf, 1);
            put_u8(buf, l);
        }
    }
    put_opt_u64(buf, m.forum.map(|f| f.0));
    put_opt_u64(buf, m.reply_of.map(|p| p.0));
    put_u64(buf, m.root_post.0);
    put_tag_ids(buf, &m.tags);
}

fn decode_message(r: &mut Reader<'_>) -> Result<RawMessage, DecodeError> {
    Ok(RawMessage {
        id: MessageId(r.u64()?),
        kind: match r.u8()? {
            0 => MessageKind::Post,
            1 => MessageKind::Comment,
            other => return Err(r.err(format!("bad message kind {other}"))),
        },
        creation_date: DateTime(r.i64()?),
        creator: PersonId(r.u64()?),
        country: PlaceId(r.u64()?),
        location_ip: r.string()?,
        browser: r.u8()?,
        content: r.string()?,
        length: r.u32()?,
        image_file: opt_str(r)?,
        language: match r.u8()? {
            0 => None,
            _ => Some(r.u8()?),
        },
        forum: opt_u64(r)?.map(ForumId),
        reply_of: opt_u64(r)?.map(MessageId),
        root_post: MessageId(r.u64()?),
        tags: tag_ids(r)?,
    })
}

fn encode_like(buf: &mut Vec<u8>, l: &RawLike) {
    put_u64(buf, l.person.0);
    put_u64(buf, l.message.0);
    put_i64(buf, l.creation_date.0);
}

fn decode_like(r: &mut Reader<'_>) -> Result<RawLike, DecodeError> {
    Ok(RawLike {
        person: PersonId(r.u64()?),
        message: MessageId(r.u64()?),
        creation_date: DateTime(r.i64()?),
    })
}

// ---------------------------------------------------------------------
// Event and delete-op codecs.
// ---------------------------------------------------------------------

/// Serialises one timed event: `t`, `t_d`, the spec operation id, and
/// the per-record payload.
pub fn encode_event(buf: &mut Vec<u8>, ev: &TimedEvent) {
    put_i64(buf, ev.timestamp.0);
    put_i64(buf, ev.dependent.0);
    put_u8(buf, ev.event.operation_id());
    match &ev.event {
        UpdateEvent::AddPerson(p) => encode_person(buf, p),
        UpdateEvent::AddLikePost(l) | UpdateEvent::AddLikeComment(l) => encode_like(buf, l),
        UpdateEvent::AddForum(f) => encode_forum(buf, f),
        UpdateEvent::AddMembership(m) => encode_membership(buf, m),
        UpdateEvent::AddPost(m) | UpdateEvent::AddComment(m) => encode_message(buf, m),
        UpdateEvent::AddKnows(k) => encode_knows(buf, k),
    }
}

/// Parses one timed event.
pub(crate) fn decode_event(r: &mut Reader<'_>) -> Result<TimedEvent, DecodeError> {
    let timestamp = DateTime(r.i64()?);
    let dependent = DateTime(r.i64()?);
    let event = match r.u8()? {
        1 => UpdateEvent::AddPerson(decode_person(r)?),
        2 => UpdateEvent::AddLikePost(decode_like(r)?),
        3 => UpdateEvent::AddLikeComment(decode_like(r)?),
        4 => UpdateEvent::AddForum(decode_forum(r)?),
        5 => UpdateEvent::AddMembership(decode_membership(r)?),
        6 => UpdateEvent::AddPost(decode_message(r)?),
        7 => UpdateEvent::AddComment(decode_message(r)?),
        8 => UpdateEvent::AddKnows(decode_knows(r)?),
        other => return Err(r.err(format!("unknown operation id {other}"))),
    };
    Ok(TimedEvent { timestamp, dependent, event })
}

/// Serialises one delete op (type tag + entity/edge keys).
pub fn encode_delete(buf: &mut Vec<u8>, op: &DeleteOp) {
    match *op {
        DeleteOp::Person(id) => {
            put_u8(buf, 1);
            put_u64(buf, id);
        }
        DeleteOp::Like(person, message) => {
            put_u8(buf, 2);
            put_u64(buf, person);
            put_u64(buf, message);
        }
        DeleteOp::Forum(id) => {
            put_u8(buf, 3);
            put_u64(buf, id);
        }
        DeleteOp::Membership(person, forum) => {
            put_u8(buf, 4);
            put_u64(buf, person);
            put_u64(buf, forum);
        }
        DeleteOp::Message(id) => {
            put_u8(buf, 5);
            put_u64(buf, id);
        }
        DeleteOp::Knows(a, b) => {
            put_u8(buf, 6);
            put_u64(buf, a);
            put_u64(buf, b);
        }
    }
}

/// Parses one delete op.
pub(crate) fn decode_delete(r: &mut Reader<'_>) -> Result<DeleteOp, DecodeError> {
    Ok(match r.u8()? {
        1 => DeleteOp::Person(r.u64()?),
        2 => DeleteOp::Like(r.u64()?, r.u64()?),
        3 => DeleteOp::Forum(r.u64()?),
        4 => DeleteOp::Membership(r.u64()?, r.u64()?),
        5 => DeleteOp::Message(r.u64()?),
        6 => DeleteOp::Knows(r.u64()?, r.u64()?),
        other => return Err(r.err(format!("unknown delete tag {other}"))),
    })
}

/// Serialises a write-batch payload (count + per-op records). The op
/// family is carried out-of-band (wire query tag / WAL record kind).
pub fn encode_write_ops(buf: &mut Vec<u8>, ops: &WriteOps) {
    match ops {
        WriteOps::Updates(events) => {
            put_u32(buf, events.len() as u32);
            for ev in events {
                encode_event(buf, ev);
            }
        }
        WriteOps::Deletes(dels) => {
            put_u32(buf, dels.len() as u32);
            for op in dels {
                encode_delete(buf, op);
            }
        }
    }
}

/// The shard-routing key of a write batch: the primary raw id of its
/// first operation (the entity being created, or the first endpoint of
/// the edge being touched). Raw ids are globally stable and known
/// before the store assigns a dense id, so the server can pick a WAL
/// segment purely from the wire payload. An empty batch routes to key
/// `0` — its apply is a no-op, so any segment is correct.
pub fn route_key(ops: &WriteOps) -> u64 {
    match ops {
        WriteOps::Updates(events) => match events.first().map(|ev| &ev.event) {
            Some(UpdateEvent::AddPerson(p)) => p.id.0,
            Some(UpdateEvent::AddLikePost(l)) | Some(UpdateEvent::AddLikeComment(l)) => l.person.0,
            Some(UpdateEvent::AddForum(f)) => f.id.0,
            Some(UpdateEvent::AddMembership(m)) => m.person.0,
            Some(UpdateEvent::AddPost(m)) | Some(UpdateEvent::AddComment(m)) => m.id.0,
            Some(UpdateEvent::AddKnows(k)) => k.a.0,
            None => 0,
        },
        WriteOps::Deletes(dels) => match dels.first() {
            Some(DeleteOp::Person(id))
            | Some(DeleteOp::Forum(id))
            | Some(DeleteOp::Message(id)) => *id,
            Some(DeleteOp::Like(person, _)) | Some(DeleteOp::Membership(person, _)) => *person,
            Some(DeleteOp::Knows(a, _)) => *a,
            None => 0,
        },
    }
}

/// Parses a write-batch payload for the given family tag (1 = updates,
/// 2 = deletes).
pub(crate) fn decode_write_ops(r: &mut Reader<'_>, tag: u8) -> Result<WriteOps, DecodeError> {
    let n = r.u32()? as usize;
    match tag {
        1 => Ok(WriteOps::Updates((0..n).map(|_| decode_event(r)).collect::<Result<_, _>>()?)),
        2 => Ok(WriteOps::Deletes((0..n).map(|_| decode_delete(r)).collect::<Result<_, _>>()?)),
        other => Err(r.err(format!("unknown write family tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;

    /// Round-trips every event of a real generated stream — all eight
    /// IU flavours with every optional field population the generator
    /// produces — through the codec and compares Debug forms (the raw
    /// records don't implement PartialEq).
    #[test]
    fn generated_stream_roundtrips_exactly() {
        let config = GeneratorConfig::for_scale_name("0.001").unwrap();
        let (_, stream) = snb_store::bulk_store_and_stream(&config);
        assert!(stream.len() > 100, "stream too short to cover the codec");
        let mut seen_ops = std::collections::HashSet::new();
        for ev in &stream {
            seen_ops.insert(ev.event.operation_id());
            let mut buf = Vec::new();
            encode_event(&mut buf, ev);
            let mut r = Reader::new(&buf);
            let back = decode_event(&mut r).expect("decode generated event");
            r.finish().expect("no trailing bytes");
            assert_eq!(format!("{back:?}"), format!("{ev:?}"));
        }
        assert!(seen_ops.len() >= 6, "stream covers too few IU ops: {seen_ops:?}");
    }

    #[test]
    fn delete_ops_roundtrip() {
        let ops = [
            DeleteOp::Person(7),
            DeleteOp::Like(1, 2),
            DeleteOp::Forum(3),
            DeleteOp::Membership(5, 6),
            DeleteOp::Message(8),
            DeleteOp::Knows(9, 10),
        ];
        let mut buf = Vec::new();
        encode_write_ops(&mut buf, &WriteOps::Deletes(ops.to_vec()));
        let mut r = Reader::new(&buf);
        let back = decode_write_ops(&mut r, 2).unwrap();
        r.finish().unwrap();
        match back {
            WriteOps::Deletes(d) => assert_eq!(d, ops),
            other => panic!("wrong family: {other:?}"),
        }
    }

    #[test]
    fn truncated_event_is_a_typed_error() {
        let config = GeneratorConfig::for_scale_name("0.001").unwrap();
        let (_, stream) = snb_store::bulk_store_and_stream(&config);
        let mut buf = Vec::new();
        encode_event(&mut buf, &stream[0]);
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_event(&mut r).is_err(), "cut at {cut} must fail to decode");
        }
    }
}
