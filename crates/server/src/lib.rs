//! `snb-server`: a concurrent query-service layer for the SNB workloads.
//!
//! The BI suite's power and throughput tests drive the engine from
//! inside one process; this crate puts the same 25 BI reads (plus the
//! 14 interactive complex reads) behind a service boundary, which is
//! where the paper's throughput batches actually live in a deployed
//! system. The pieces:
//!
//! - [`proto`] — a length-prefixed binary wire protocol (version byte,
//!   correlation ids, typed error taxonomy) with a hand-rolled codec
//!   for every BI and IC parameter binding;
//! - [`queue`] — bounded per-lane admission queues (short reads, heavy
//!   BI, writes) whose overload policy is *shed, don't buffer*, drained
//!   by a weighted scheduler that keeps short reads progressing under a
//!   BI flood;
//! - [`server`] — the service core: lane-classified admission, deadline
//!   checks at dequeue and at completion, worker pool over
//!   [`snb_engine::QueryContext`], a readiness-driven epoll reactor for
//!   TCP (thread-per-connection off Linux) plus the in-process
//!   transport, graceful drain-then-shutdown, and a concurrent-write
//!   path for update-stream replay;
//! - [`log`] — the structured access log (query id, binding hash,
//!   queue/exec split, outcome, optional per-request
//!   [`snb_engine::QueryProfile`]).
//!
//! Determinism note: the in-process transport runs requests through
//! the exact admission path TCP uses, so a test can assert that
//! service results equal an in-process power run bit-for-bit.

#![warn(missing_docs)]

pub mod events;
pub mod image;
pub mod log;
pub mod proto;
pub mod queue;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod replication;
pub mod retry;
pub mod server;
pub mod wal;

pub use image::{image_info, load_image, write_image, ImageHeader, IMAGE_FILE};
pub use log::{AccessLog, AccessRecord};
pub use proto::{
    ErrorBody, ErrorKind, Lane, OkBody, ReplFrame, Request, RequestHeader, Response, ServiceParams,
    WriteBatch, WriteOps,
};
pub use queue::{Admitted, LaneQueues, PushError, ShedPolicy};
pub use replication::{FollowerHandle, FollowerStatus, Promotion, ReplicationConfig};
pub use retry::RetryPolicy;
pub use server::{
    Durability, InProcClient, LaneSettings, LanesConfig, LogHandle, Server, ServerConfig,
    ServiceReport, StoreWriter,
};
pub use wal::{
    recover, Recovered, RecoveryReport, SegmentedWal, ShippedRecord, Wal, WalOptions, WalTailer,
};

#[cfg(test)]
mod tests {
    use super::*;
    use snb_bi::BiParams;
    use snb_core::Date;
    use snb_datagen::GeneratorConfig;
    use snb_engine::QueryContext;
    use snb_store::store_for_config;
    use std::io::Write;
    use std::time::Duration;

    fn tiny_store() -> snb_store::Store {
        store_for_config(&GeneratorConfig::for_scale_name("0.001").unwrap())
    }

    fn sample_params() -> Vec<BiParams> {
        use snb_bi::{bi01, bi05, bi08, bi13, bi18};
        vec![
            BiParams::Q1(bi01::Params { date: Date::from_ymd(2011, 6, 1) }),
            BiParams::Q5(bi05::Params { country: "China".into() }),
            BiParams::Q8(bi08::Params { tag: "Augustine_of_Hippo".into() }),
            BiParams::Q13(bi13::Params { country: "India".into() }),
            BiParams::Q18(bi18::Params {
                date: Date::from_ymd(2011, 1, 1),
                length_threshold: 20,
                languages: vec!["uz".into()],
            }),
        ]
    }

    fn q13_india() -> BiParams {
        BiParams::Q13(snb_bi::bi13::Params { country: "India".into() })
    }

    fn q5_china() -> BiParams {
        BiParams::Q5(snb_bi::bi05::Params { country: "China".into() })
    }

    #[test]
    fn inproc_results_match_power_run() {
        let store = tiny_store();
        let ctx = QueryContext::single_threaded();
        let expected: Vec<_> =
            sample_params().iter().map(|p| snb_bi::run_with(&store, &ctx, p)).collect();

        let server = Server::start(
            store,
            ServerConfig { workers: 2, queue_capacity: 32, ..ServerConfig::default() },
        );
        let client = server.client();
        for (p, want) in sample_params().into_iter().zip(expected) {
            let resp = client.call(ServiceParams::Bi(p), 0);
            let ok = resp.body.expect("request should succeed");
            assert_eq!(ok.rows as usize, want.rows);
            assert_eq!(ok.fingerprint, want.fingerprint);
        }
        let report = server.shutdown();
        assert_eq!(report.served, 5);
        assert_eq!(report.shed, 0);
        assert_eq!(report.log_records, 5);
    }

    #[test]
    fn overload_sheds_deterministically() {
        // No workers: nothing drains the queue, so pushes past capacity
        // must shed — deterministically.
        let server = Server::start(
            tiny_store(),
            ServerConfig {
                workers: 0,
                queue_capacity: 3,
                default_deadline: None,
                ..ServerConfig::default()
            },
        );
        let (tx, rx) = std::sync::mpsc::channel();
        let mut pending = Vec::new();
        for i in 0..5u64 {
            let tx = tx.clone();
            let c = server.client();
            // Calls block until responded, so run each in a thread; the
            // two rejects answer immediately, the three admitted ones
            // answer at shutdown drain.
            pending.push(std::thread::spawn(move || {
                let resp = c.call(ServiceParams::Bi(q13_india()), 0);
                tx.send((i, resp)).unwrap();
            }));
            // Wait until this call was either queued or shed before
            // issuing the next one, so admission order is exactly the
            // issue order and the outcome split is deterministic.
            while server.queued() as u64 + server.report_now().shed < i + 1 {
                std::thread::yield_now();
            }
        }
        drop(tx);
        let report = server.shutdown();
        for h in pending {
            h.join().unwrap();
        }
        let mut ok = 0;
        let mut overloaded = 0;
        for (_, resp) in rx.iter() {
            match resp.body {
                Ok(_) => ok += 1,
                Err(e) => {
                    assert_eq!(e.kind, ErrorKind::Overloaded);
                    overloaded += 1;
                }
            }
        }
        assert_eq!((ok, overloaded), (3, 2));
        assert_eq!(report.served, 3);
        assert_eq!(report.shed, 2);
        assert_eq!(report.log_records, 5);
    }

    #[test]
    fn expired_deadline_is_typed_not_hung() {
        // No workers: the job sits queued past its 1ms deadline and is
        // answered DeadlineExceeded at the shutdown drain's dequeue.
        let server = Server::start(
            tiny_store(),
            ServerConfig { workers: 0, queue_capacity: 4, ..ServerConfig::default() },
        );
        let c = server.client();
        let h = std::thread::spawn(move || c.call(ServiceParams::Bi(q5_china()), 1_000));
        std::thread::sleep(Duration::from_millis(30));
        let report = server.shutdown();
        let resp = h.join().unwrap();
        let err = resp.body.expect_err("deadline should have expired");
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        assert!(err.queue_us >= 1_000, "queue wait {}us should exceed deadline", err.queue_us);
        assert_eq!(report.deadline_missed, 1);
        assert_eq!(report.served, 0);
    }

    #[test]
    fn shutdown_rejects_new_but_drains_admitted() {
        let server = Server::start(
            tiny_store(),
            ServerConfig { workers: 0, queue_capacity: 8, ..ServerConfig::default() },
        );
        let c = server.client();
        let h = std::thread::spawn(move || c.call(ServiceParams::Bi(q13_india()), 0));
        std::thread::sleep(Duration::from_millis(20));
        let late_client = server.client();
        let report = server.shutdown();
        // Admitted-before-shutdown work completed.
        let resp = h.join().unwrap();
        assert!(resp.body.is_ok());
        assert_eq!(report.served, 1);
        // A call after shutdown is a typed rejection, not a hang.
        let resp = late_client.call(ServiceParams::Bi(q13_india()), 0);
        assert_eq!(resp.body.expect_err("post-shutdown call").kind, ErrorKind::ShuttingDown);
    }

    #[test]
    fn profiling_attaches_per_request_profile() {
        let server = Server::start(
            tiny_store(),
            ServerConfig {
                workers: 1,
                queue_capacity: 8,
                profiling: true,
                ..ServerConfig::default()
            },
        );
        let client = server.client();
        let resp = client.call(
            ServiceParams::Bi(BiParams::Q2(snb_bi::bi02::Params {
                start_date: Date::from_ymd(2010, 1, 1),
                end_date: Date::from_ymd(2012, 12, 1),
                country1: "India".into(),
                country2: "China".into(),
                min_count: 1,
            })),
            0,
        );
        let ok = resp.body.expect("profiled request should succeed");
        let profile = ok.profile.expect("profiling on => profile present");
        assert!(profile.rows_scanned > 0, "BI 2 scans messages: {profile:?}");
        let log = server.access_log().snapshot();
        assert_eq!(log.len(), 1);
        assert!(log[0].profile.is_some());
        server.shutdown();
    }

    #[test]
    fn tcp_roundtrip_with_pipelining_and_bad_frame() {
        let store = tiny_store();
        let ctx = QueryContext::single_threaded();
        let expected: Vec<_> =
            sample_params().iter().map(|p| snb_bi::run_with(&store, &ctx, p)).collect();

        let mut server = Server::start(
            store,
            ServerConfig { workers: 2, queue_capacity: 32, ..ServerConfig::default() },
        );
        let addr = server.listen("127.0.0.1:0").expect("bind ephemeral port");
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");

        // Pipeline every request before reading any response.
        for (i, p) in sample_params().into_iter().enumerate() {
            let req = Request {
                id: i as u64 + 1,
                deadline_us: 0,
                min_seq: 0,
                params: ServiceParams::Bi(p),
            };
            let payload = proto::encode_request(&req);
            proto::write_frame(&mut conn, &payload).expect("write frame");
        }
        let mut got = std::collections::HashMap::new();
        while got.len() < 5 {
            let payload = proto::read_frame(&mut conn).expect("read frame");
            let resp = proto::decode_response(&payload).expect("decode response");
            got.insert(resp.id, resp.body.expect("tcp request should succeed"));
        }
        for (i, want) in expected.iter().enumerate() {
            let ok = &got[&(i as u64 + 1)];
            assert_eq!(ok.rows as usize, want.rows, "query #{i} rows over TCP");
            assert_eq!(ok.fingerprint, want.fingerprint, "query #{i} fingerprint over TCP");
        }

        // An undecodable frame gets a typed BadRequest, and the
        // connection stays usable afterwards.
        proto::write_frame(&mut conn, &[0xFF, 0xFF, 0xFF]).expect("write garbage");
        let payload = proto::read_frame(&mut conn).expect("read error response");
        let resp = proto::decode_response(&payload).expect("decode error response");
        assert_eq!(resp.body.expect_err("garbage frame").kind, ErrorKind::BadRequest);

        drop(conn);
        let report = server.shutdown();
        assert_eq!(report.served, 5);
        assert_eq!(report.bad_requests, 1);
    }

    #[test]
    fn tcp_shutdown_drains_inflight_then_exits() {
        let mut server = Server::start(
            tiny_store(),
            ServerConfig { workers: 1, queue_capacity: 16, ..ServerConfig::default() },
        );
        let addr = server.listen("127.0.0.1:0").expect("bind");
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        for i in 0..4u64 {
            let req = Request {
                id: i + 1,
                deadline_us: 0,
                min_seq: 0,
                params: ServiceParams::Bi(q13_india()),
            };
            proto::write_frame(&mut conn, &proto::encode_request(&req)).expect("write");
        }
        conn.flush().unwrap();
        // Give the reader a moment to admit, then shut down; all four
        // must still be answered before the socket closes.
        std::thread::sleep(Duration::from_millis(50));
        let handle = std::thread::spawn(move || server.shutdown());
        let mut answered = 0;
        while answered < 4 {
            let payload = proto::read_frame(&mut conn).expect("drain response");
            let resp = proto::decode_response(&payload).expect("decode");
            assert!(resp.body.is_ok());
            answered += 1;
        }
        let report = handle.join().unwrap();
        assert_eq!(report.served, 4);
    }

    #[test]
    fn writer_applies_updates_under_readers() {
        let config = GeneratorConfig::for_scale_name("0.001").unwrap();
        let (store, stream) = snb_store::bulk_store_and_stream(&config);
        let world = snb_datagen::dictionaries::StaticWorld::build(config.seed);
        let server = Server::start(
            store,
            ServerConfig { workers: 2, queue_capacity: 64, ..ServerConfig::default() },
        );
        let writer = server.writer();
        let client = server.client();
        let events: Vec<_> = stream.into_iter().take(200).collect();
        let mut applied = 0u64;
        for (i, ev) in events.iter().enumerate() {
            writer.apply_update(ev, &world).expect("apply update");
            applied += 1;
            if i % 40 == 0 {
                let resp = client.call(ServiceParams::Bi(q13_india()), 0);
                assert!(resp.body.is_ok());
            }
        }
        writer.validate_invariants().expect("invariants hold under interleaved writes");
        let report = server.shutdown();
        assert_eq!(report.updates_applied, applied);
    }
}
