//! Structured per-request access log.
//!
//! Every request that reaches the server produces exactly one record —
//! including the ones that never execute (sheds, deadline misses,
//! shutdown rejections, undecodable frames) — so the log is a complete
//! account of offered load, not just of served load. Records carry the
//! query identity, the binding hash (joinable against the parameter
//! files), the queue-wait / execution split, the outcome from the
//! service error taxonomy, and (when the server runs with profiling
//! on) the per-request operator profile from
//! [`snb_engine::QueryProfile`] — the same counters `--profile` power
//! runs report, now per served request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use snb_engine::QueryProfile;

/// One access-log record.
#[derive(Clone, Debug)]
pub struct AccessRecord {
    /// Monotone sequence number (admission order within the server).
    pub seq: u64,
    /// Workload tag: `"BI"`, `"IC"`, `"IS"` or `"Write"` (empty for
    /// undecodable frames).
    pub workload: &'static str,
    /// Query number within the workload (0 for undecodable frames).
    pub query: u8,
    /// FNV-1a hash of the parameter binding.
    pub binding_hash: u64,
    /// Admission lane the request was classified into (`"short"`,
    /// `"heavy"` or `"write"`; empty for undecodable frames and
    /// connection-level records, which never reach a lane).
    pub lane: &'static str,
    /// Time spent in the admission queue, microseconds.
    pub queue_us: u64,
    /// Pure execution time, microseconds (0 when not executed).
    pub exec_us: u64,
    /// Outcome name: `"ok"` or an [`ErrorKind`](crate::proto::ErrorKind)
    /// name.
    pub outcome: &'static str,
    /// Result rows (0 when not executed).
    pub rows: u64,
    /// Result fingerprint (0 for IC reads and non-executions).
    pub fingerprint: u64,
    /// The published store version the request read (for executed reads,
    /// the snapshot pinned at admission; otherwise the version current
    /// when the record was cut).
    pub store_version: u64,
    /// Age of the pinned snapshot when execution started, microseconds
    /// (0 when not executed) — how far behind the publish frontier this
    /// read was allowed to run.
    pub snapshot_age_us: u64,
    /// Operator counters for this request, when profiling was on.
    pub profile: Option<QueryProfile>,
}

impl AccessRecord {
    /// Renders the record as one JSON object (hand-rolled; every field
    /// is numeric or a fixed identifier, so no escaping is needed).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\": {}, \"workload\": \"{}\", \"query\": {}, \"binding_hash\": {}, \
             \"lane\": \"{}\", \"queue_us\": {}, \"exec_us\": {}, \"outcome\": \"{}\", \
             \"rows\": {}, \"fingerprint\": {}, \"store_version\": {}, \"snapshot_age_us\": {}",
            self.seq,
            self.workload,
            self.query,
            self.binding_hash,
            self.lane,
            self.queue_us,
            self.exec_us,
            self.outcome,
            self.rows,
            self.fingerprint,
            self.store_version,
            self.snapshot_age_us,
        );
        if let Some(p) = &self.profile {
            s.push_str(&format!(
                ", \"rows_scanned\": {}, \"index_hits\": {}, \"index_fallbacks\": {}, \
                 \"topk_offered\": {}, \"topk_pruned\": {}, \"edges_traversed\": {}",
                p.rows_scanned,
                p.index_hits,
                p.index_fallbacks,
                p.topk_offered,
                p.topk_pruned,
                p.edges_traversed,
            ));
        }
        s.push('}');
        s
    }
}

/// Append-only in-memory access log shared by transports and workers.
#[derive(Default)]
pub struct AccessLog {
    seq: AtomicU64,
    records: Mutex<Vec<AccessRecord>>,
}

impl AccessLog {
    /// An empty log.
    pub fn new() -> Self {
        AccessLog::default()
    }

    /// Claims the next sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends one record.
    pub fn push(&self, record: AccessRecord) {
        self.records.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(record);
    }

    /// Records the startup-recovery summary as the log's preamble:
    /// `outcome: "recovered"`, `rows` = records replayed through the
    /// apply path, `exec_us` = recovery wall-clock, `fingerprint` = the
    /// recovered sequence high-water mark, `store_version` = the store
    /// image's sequence (0 when recovery rebuilt from scratch), and
    /// `queue_us` = the image decode time within the recovery
    /// wall-clock. Replication catch-up time is measured against this
    /// baseline, so it lives in the same log the requests do.
    pub fn push_recovery_preamble(
        &self,
        replayed: u64,
        recovery_us: u64,
        last_seq: u64,
        image_seq: u64,
        image_us: u64,
    ) {
        self.push(AccessRecord {
            seq: self.next_seq(),
            workload: "",
            query: 0,
            binding_hash: 0,
            lane: "",
            queue_us: image_us,
            exec_us: recovery_us,
            outcome: "recovered",
            rows: replayed,
            fingerprint: last_seq,
            store_version: image_seq,
            snapshot_age_us: 0,
            profile: None,
        });
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records in admission order.
    pub fn snapshot(&self) -> Vec<AccessRecord> {
        let mut v: Vec<AccessRecord> =
            self.records.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        v.sort_by_key(|r| r.seq);
        v
    }

    /// Renders the whole log as JSON Lines.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.snapshot() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the log as JSON Lines to `path`.
    pub fn flush_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, outcome: &'static str) -> AccessRecord {
        AccessRecord {
            seq,
            workload: "BI",
            query: 4,
            binding_hash: 0x1234,
            lane: "heavy",
            queue_us: 10,
            exec_us: 250,
            outcome,
            rows: 20,
            fingerprint: 99,
            store_version: 7,
            snapshot_age_us: 42,
            profile: None,
        }
    }

    #[test]
    fn records_render_and_sort_by_seq() {
        let log = AccessLog::new();
        assert!(log.is_empty());
        let s0 = log.next_seq();
        let s1 = log.next_seq();
        assert_eq!((s0, s1), (0, 1));
        log.push(record(s1, "ok"));
        log.push(record(s0, "overloaded"));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[0].outcome, "overloaded");
        let jsonl = log.render_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().next().unwrap().contains("\"outcome\": \"overloaded\""));
        assert!(jsonl.lines().next().unwrap().contains("\"lane\": \"heavy\""));
        assert!(jsonl.lines().next().unwrap().contains("\"store_version\": 7"));
        assert!(jsonl.lines().next().unwrap().contains("\"snapshot_age_us\": 42"));
    }

    #[test]
    fn recovery_preamble_is_a_normal_record() {
        let log = AccessLog::new();
        log.push_recovery_preamble(42, 1_500, 37, 30, 800);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].outcome, "recovered");
        assert_eq!(snap[0].rows, 42, "rows carries the replayed-record count");
        assert_eq!(snap[0].exec_us, 1_500, "exec_us carries the recovery wall-clock");
        assert_eq!(snap[0].fingerprint, 37, "fingerprint carries the recovered seq");
        assert_eq!(snap[0].store_version, 30, "store_version carries the image seq");
        assert_eq!(snap[0].queue_us, 800, "queue_us carries the image decode time");
        assert!(log.render_jsonl().contains("\"outcome\": \"recovered\""));
    }

    #[test]
    fn profiled_record_includes_counters() {
        let mut r = record(0, "ok");
        r.profile = Some(QueryProfile { rows_scanned: 77, index_hits: 3, ..Default::default() });
        let json = r.to_json();
        assert!(json.contains("\"rows_scanned\": 77"));
        assert!(json.contains("\"index_hits\": 3"));
        assert!(json.ends_with('}'));
    }
}
