//! Client-side resilience: capped exponential backoff with full jitter.
//!
//! The policy follows the standard full-jitter scheme: attempt `k`
//! sleeps `uniform(0, min(cap, base·2^k))`, drawn from a seeded
//! splitmix64 stream so a benchmark run's retry schedule is
//! reproducible. Retryable outcomes are the transient taxonomy entries —
//! `overloaded` (admission shed; pressure passes), `shutting_down` /
//! lost-connection (the chaos harness restarts the server), and
//! `stale_read` (a follower behind the requested `min_seq`; replication
//! catches up). Permanent outcomes (`bad_request`, `internal`,
//! `store_poisoned`) are returned immediately: retrying them without
//! operator action is wasted load. `not_primary` and `fenced` are
//! **terminal-with-redirect**: resending a write to a read-only
//! follower (or a fenced ex-primary) can never succeed no matter how
//! long the client waits — the correct reaction is to re-route to the
//! primary, so the retry loop must not burn its budget on them. The
//! refusal's detail may carry the current primary's address as a
//! `(primary=HOST:PORT)` suffix; [`redirect_target`] extracts it so a
//! networked client can reconnect and resubmit the same batch seq
//! (dedupe-protected) without operator help. The deadline kinds —
//! `deadline_exceeded` (never executed) and `deadline_overrun`
//! (executed but finished late) — are terminal too: the client's time
//! budget is spent, so resubmitting the same deadline only burns
//! capacity on an answer that will again arrive too late.

use std::time::Duration;

use crate::proto::{ErrorKind, Response, ServiceParams};
use crate::server::InProcClient;

/// Capped exponential backoff + full jitter.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total tries (first attempt included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff base; attempt `k`'s ceiling is `base * 2^k`.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            seed: 0x5eed_cafe,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stateful jitter stream over one policy.
#[derive(Clone, Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Starts a fresh stream (attempt counter at 0).
    pub fn new(policy: RetryPolicy) -> Backoff {
        Backoff { rng: policy.seed, policy, attempt: 0 }
    }

    /// Whether another attempt is allowed.
    pub fn attempts_left(&self) -> bool {
        self.attempt + 1 < self.policy.max_attempts
    }

    /// Attempts consumed so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The next sleep: full jitter under the capped exponential
    /// ceiling. Advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(30);
        let ceiling = self
            .policy
            .cap
            .min(self.policy.base.saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX)));
        self.attempt += 1;
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(splitmix64(&mut self.rng) % nanos)
    }
}

/// Whether this error kind is worth retrying from a client.
/// `not_primary` and `fenced` are deliberately absent: they redirect
/// (re-route the write to the primary), they never heal in place.
pub fn retryable(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Overloaded | ErrorKind::ShuttingDown | ErrorKind::StaleRead)
}

/// Extracts the redirect target from a `not_primary`/`fenced` refusal
/// detail. Servers that know the current primary append
/// `(primary=HOST:PORT)` to the detail; a networked client reconnects
/// there and resubmits the same batch seq (the seq-dedupe gate absorbs
/// a duplicate if the original was actually applied).
pub fn redirect_target(detail: &str) -> Option<&str> {
    let start = detail.rfind("(primary=")? + "(primary=".len();
    let rest = &detail[start..];
    let end = rest.find(')')?;
    let addr = &rest[..end];
    if addr.is_empty() {
        None
    } else {
        Some(addr)
    }
}

impl InProcClient {
    /// Like [`InProcClient::call`], but retries transient rejections
    /// (`overloaded`, `shutting_down`) with capped exponential backoff
    /// and full jitter. Returns the last response when attempts run
    /// out.
    pub fn call_with_retries(
        &self,
        params: ServiceParams,
        deadline_us: u64,
        policy: RetryPolicy,
    ) -> Response {
        let mut backoff = Backoff::new(policy);
        loop {
            let resp = self.call(params.clone(), deadline_us);
            match &resp.body {
                Err(e) if retryable(e.kind) && backoff.attempts_left() => {
                    std::thread::sleep(backoff.next_delay());
                }
                _ => return resp,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_capped_jittered_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(4),
            cap: Duration::from_millis(64),
            seed: 9,
        };
        let run = |policy| {
            let mut b = Backoff::new(policy);
            (0..9).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        let a = run(policy);
        let b = run(policy);
        assert_eq!(a, b, "same seed, same schedule");
        for (k, d) in a.iter().enumerate() {
            let ceiling = policy.cap.min(policy.base * 2u32.pow(k as u32));
            assert!(*d < ceiling, "attempt {k}: {d:?} under ceiling {ceiling:?}");
        }
        // Jitter: the schedule is not a constant sequence.
        assert!(a.iter().any(|d| *d != a[0]), "no jitter at all: {a:?}");
        // Later ceilings allow longer sleeps than the first could.
        assert!(
            a.iter().any(|d| *d >= policy.base),
            "every delay under base — ceiling never grew: {a:?}"
        );
    }

    #[test]
    fn attempts_budget_is_respected() {
        let mut b = Backoff::new(RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
        assert!(b.attempts_left());
        b.next_delay();
        assert!(b.attempts_left());
        b.next_delay();
        assert!(!b.attempts_left(), "3 attempts = 2 retries");
    }

    #[test]
    fn taxonomy_split_between_transient_and_permanent() {
        assert!(retryable(ErrorKind::Overloaded));
        assert!(retryable(ErrorKind::ShuttingDown));
        // A follower behind the requested `min_seq` heals as shipping
        // catches up — transient.
        assert!(retryable(ErrorKind::StaleRead));
        assert!(!retryable(ErrorKind::BadRequest));
        assert!(!retryable(ErrorKind::Internal));
        assert!(!retryable(ErrorKind::StorePoisoned));
        // Terminal-with-redirect: a write refused by a read-only
        // follower will be refused forever; the client must re-route to
        // the primary, not burn retry budget here. Same for a fenced
        // ex-primary — its term is over, no retry revives it.
        assert!(!retryable(ErrorKind::NotPrimary));
        assert!(!retryable(ErrorKind::Fenced));
        // Both deadline kinds are terminal: the budget is spent whether
        // the query never ran (`deadline_exceeded`) or ran and finished
        // late (`deadline_overrun`).
        assert!(!retryable(ErrorKind::DeadlineExceeded));
        assert!(!retryable(ErrorKind::DeadlineOverrun));
    }

    #[test]
    fn redirect_target_parses_the_primary_suffix() {
        assert_eq!(
            redirect_target(
                "read-only follower; route writes to the primary (primary=10.0.0.7:9099)"
            ),
            Some("10.0.0.7:9099")
        );
        assert_eq!(
            redirect_target("fenced at epoch 2 by epoch 3 (primary=127.0.0.1:4000)"),
            Some("127.0.0.1:4000")
        );
        // The *last* suffix wins if a detail nests one in free text.
        assert_eq!(redirect_target("(primary=stale:1) updated (primary=fresh:2)"), Some("fresh:2"));
        assert_eq!(redirect_target("read-only follower"), None, "no hint, no redirect");
        assert_eq!(redirect_target("oops (primary=)"), None, "empty hint is no hint");
        assert_eq!(redirect_target("oops (primary=unterminated"), None);
    }

    #[test]
    fn overloaded_is_retried_until_attempts_run_out() {
        use crate::server::{LaneSettings, LanesConfig, Server, ServerConfig};
        use snb_datagen::GeneratorConfig;
        use snb_store::store_for_config;

        // No workers and a one-slot heavy lane: the first BI request
        // parks in the queue and every later one sheds `overloaded`.
        let server = Server::start(
            store_for_config(&GeneratorConfig::for_scale_name("0.001").unwrap()),
            ServerConfig {
                workers: 0,
                queue_capacity: 1,
                default_deadline: None,
                ..ServerConfig::default()
            },
        );
        let blocker = server.client();
        let parked = std::thread::spawn(move || {
            blocker.call(
                ServiceParams::Bi(snb_bi::BiParams::Q13(snb_bi::bi13::Params {
                    country: "India".into(),
                })),
                0,
            )
        });
        while server.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let client = server.client();
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(50),
            cap: Duration::from_micros(200),
            ..RetryPolicy::default()
        };
        let resp = client.call_with_retries(
            ServiceParams::Bi(snb_bi::BiParams::Q13(snb_bi::bi13::Params {
                country: "India".into(),
            })),
            0,
            policy,
        );
        let err = resp.body.expect_err("queue stays full; retries must exhaust");
        assert_eq!(err.kind, ErrorKind::Overloaded);
        // All 3 attempts reached the server and were shed — the retry
        // loop really re-submitted, it didn't give up after one try.
        assert_eq!(server.report_now().shed, 3);
        // Lane config plumbs through the same path; sanity-check the
        // config helpers used above resolved to the inherited capacity.
        let cfg = ServerConfig {
            queue_capacity: 1,
            lanes: LanesConfig { heavy: LaneSettings::default(), ..LanesConfig::default() },
            ..ServerConfig::default()
        };
        assert_eq!(cfg.lane_capacity(crate::proto::Lane::Heavy), 1);
        let report = server.shutdown();
        let parked = parked.join().expect("parked caller");
        assert!(parked.body.is_ok(), "queued job drains at shutdown: {parked:?}");
        assert_eq!(report.served, 1);
    }
}
