//! Store-image snapshot files: bounded recovery and follower bootstrap.
//!
//! The WAL's compaction "snapshot" (`snapshot.log`) is *log* compaction:
//! replaying it still costs time proportional to history. A **store
//! image** (`store.img`) is the other durability artifact: the full
//! [`Store`] serialised through [`snb_store::image`]'s checksummed
//! codec at a known sequence number. Recovery that finds a valid image
//! decodes it and replays only the WAL tail written after `seq` — cost
//! bounded by live-data size plus tail length, flat in history. The
//! same file is what a cold follower is offered over the replication
//! socket ([`crate::proto::ReplFrame::ImageOffer`]), so bootstrap also
//! skips history replay.
//!
//! ## File format
//!
//! ```text
//! [8B magic "SNBIMG1\n"][u16 scale_len][scale][u64 seed][u64 epoch]
//! [u64 seq][u32 partitions][u64 body_len][u64 fnv64(body)]
//! [u64 fnv64(header bytes above)][body = snb_store::image payload]
//! ```
//!
//! Scale and seed bind the image to its dataset exactly like the WAL
//! headers do; `seq` is the write sequence the image captures; `epoch`
//! the fencing term it was written under; `partitions` the WAL/shard
//! layout of the directory (the image itself is a single file — the
//! partition count is recorded so a mismatched directory is refused,
//! not silently re-sharded).
//!
//! ## Crash safety
//!
//! Images are written temp + fsync + rename, so `store.img` is always
//! either the previous complete image or the new complete image. Any
//! header/body checksum mismatch or truncation is a **hard error**: a
//! directory with a corrupt image refuses to recover rather than
//! silently falling back to full replay and masking the corruption. A
//! leftover `store.img.tmp` (crash mid-write) is ignored and
//! overwritten by the next write.
//!
//! Fault point: `image.write.torn` (partial temp write, no rename).

use std::fs::File;
use std::io::Write;
use std::path::Path;

use snb_core::{SnbError, SnbResult};
use snb_store::{decode_store, encode_store, Store};

use crate::wal::fnv64;

/// Magic prefix of `store.img`.
pub const IMAGE_MAGIC: &[u8; 8] = b"SNBIMG1\n";
/// The store-image file name inside a WAL directory.
pub const IMAGE_FILE: &str = "store.img";
const IMAGE_TMP: &str = "store.img.tmp";

/// The image header: everything recovery and the replication offer need
/// without decoding the body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageHeader {
    /// Fencing epoch the image was written under.
    pub epoch: u64,
    /// Write sequence number the image captures (recovery replays the
    /// WAL strictly after this).
    pub seq: u64,
    /// WAL/shard layout of the directory the image belongs to.
    pub partitions: usize,
    /// Body (codec payload) length in bytes.
    pub body_len: u64,
    /// FNV-1a of the body.
    pub body_fnv: u64,
}

fn image_err(path: &Path, detail: impl Into<String>) -> SnbError {
    SnbError::Parse { context: path.display().to_string(), detail: detail.into() }
}

fn encode_header(scale: &str, seed: u64, h: &ImageHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + scale.len());
    out.extend_from_slice(IMAGE_MAGIC);
    out.extend_from_slice(&(scale.len() as u16).to_le_bytes());
    out.extend_from_slice(scale.as_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&h.epoch.to_le_bytes());
    out.extend_from_slice(&h.seq.to_le_bytes());
    out.extend_from_slice(&(h.partitions as u32).to_le_bytes());
    out.extend_from_slice(&h.body_len.to_le_bytes());
    out.extend_from_slice(&h.body_fnv.to_le_bytes());
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses and verifies the header, returning `(body_offset, header)`.
/// Every mismatch — magic, scale, seed, checksum, truncation — is a
/// hard error.
fn decode_header(bytes: &[u8], scale: &str, seed: u64, path: &Path) -> SnbResult<(usize, ImageHeader)> {
    let need = |n: usize, at: usize| -> SnbResult<()> {
        if at + n > bytes.len() {
            Err(image_err(path, "truncated image header"))
        } else {
            Ok(())
        }
    };
    need(10, 0)?;
    if &bytes[..8] != IMAGE_MAGIC {
        return Err(image_err(path, "bad magic (not a store image)"));
    }
    let scale_len = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes")) as usize;
    let mut at = 10;
    need(scale_len, at)?;
    let got_scale = std::str::from_utf8(&bytes[at..at + scale_len])
        .map_err(|_| image_err(path, "scale name is not UTF-8"))?;
    if got_scale != scale {
        return Err(image_err(path, format!("scale mismatch: image {got_scale:?}, store {scale:?}")));
    }
    at += scale_len;
    need(8 * 5 + 4 + 8, at)?;
    let u64_at = |at: &mut usize| {
        let v = u64::from_le_bytes(bytes[*at..*at + 8].try_into().expect("8 bytes"));
        *at += 8;
        v
    };
    let got_seed = u64_at(&mut at);
    let epoch = u64_at(&mut at);
    let seq = u64_at(&mut at);
    let partitions = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
    at += 4;
    let body_len = u64_at(&mut at);
    let body_fnv = u64_at(&mut at);
    let stored_sum = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    if fnv64(&bytes[..at]) != stored_sum {
        return Err(image_err(path, "header checksum mismatch"));
    }
    at += 8;
    if got_seed != seed {
        return Err(image_err(path, format!("seed mismatch: image {got_seed}, store {seed}")));
    }
    Ok((at, ImageHeader { epoch, seq, partitions, body_len, body_fnv }))
}

/// Atomically writes `store.img` under `dir` capturing `store` at
/// (`seq`, `epoch`). Returns the file size in bytes. Crash-safe: the
/// image lands via temp + fsync + rename, so a SIGKILL at any point
/// leaves either the previous image or the new one, never a torn file.
pub fn write_image(
    dir: &Path,
    scale: &str,
    seed: u64,
    epoch: u64,
    seq: u64,
    partitions: usize,
    store: &Store,
) -> SnbResult<u64> {
    let body = encode_store(store);
    let header = encode_header(
        scale,
        seed,
        &ImageHeader {
            epoch,
            seq,
            partitions,
            body_len: body.len() as u64,
            body_fnv: fnv64(&body),
        },
    );
    let tmp_path = dir.join(IMAGE_TMP);
    let final_path = dir.join(IMAGE_FILE);
    let mut tmp = File::create(&tmp_path)?;
    if let Some(fault) = snb_fault::check("image.write.torn") {
        // Simulate a crash mid-write: part of the temp file hits disk,
        // the rename never runs. `store.img` (previous image or absent)
        // is untouched — recovery must fall back to it plus the WAL.
        let n = fault.short_write.unwrap_or(header.len() + body.len() / 2);
        let mut torn = header.clone();
        torn.extend_from_slice(&body);
        torn.truncate(n.min(torn.len()));
        tmp.write_all(&torn)?;
        let _ = tmp.sync_data();
        fault.trip("image.write.torn");
        return Err(SnbError::Io(std::io::Error::other(
            "injected torn image write (temp file abandoned, previous image intact)",
        )));
    }
    tmp.write_all(&header)?;
    tmp.write_all(&body)?;
    tmp.sync_data()?;
    drop(tmp);
    std::fs::rename(&tmp_path, &final_path)?;
    Ok((header.len() + body.len()) as u64)
}

/// Reads only the header of `dir`'s image. `Ok(None)` when no image
/// exists; a present-but-corrupt header is a hard error.
pub fn image_info(dir: &Path, scale: &str, seed: u64) -> SnbResult<Option<ImageHeader>> {
    let path = dir.join(IMAGE_FILE);
    if !path.exists() {
        return Ok(None);
    }
    // Headers are tiny; reading the whole file header-first would cost
    // the body too, so read a bounded prefix.
    let mut buf = vec![0u8; 128 + scale.len()];
    let mut f = File::open(&path)?;
    let n = read_up_to(&mut f, &mut buf)?;
    buf.truncate(n);
    decode_header(&buf, scale, seed, &path).map(|(_, h)| Some(h))
}

fn read_up_to(f: &mut File, buf: &mut [u8]) -> SnbResult<usize> {
    use std::io::Read;
    let mut filled = 0;
    while filled < buf.len() {
        let n = f.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// Reads the raw bytes of `dir`'s image file (the replication shipping
/// path sends these verbatim). Hard error if absent.
pub fn read_image_bytes(dir: &Path) -> SnbResult<Vec<u8>> {
    Ok(std::fs::read(dir.join(IMAGE_FILE))?)
}

/// Parses and world-checks just the header of an in-memory image blob.
/// The shipping path uses this to stamp the offer from the very bytes
/// it is about to send — the on-disk file can be superseded (atomic
/// rename) between a stat and a read, so the bytes are the truth.
pub fn peek_header(bytes: &[u8], scale: &str, seed: u64) -> SnbResult<ImageHeader> {
    decode_header(bytes, scale, seed, Path::new("<shipped image>")).map(|(_, h)| h)
}

/// Verifies and decodes a complete image byte buffer (a local file or a
/// shipped bootstrap blob) into a store plus its header.
pub fn decode_image(bytes: &[u8], scale: &str, seed: u64, path: &Path) -> SnbResult<(Store, ImageHeader)> {
    let (off, header) = decode_header(bytes, scale, seed, path)?;
    let body = &bytes[off..];
    if body.len() as u64 != header.body_len {
        return Err(image_err(
            path,
            format!("body length {} != header {}", body.len(), header.body_len),
        ));
    }
    if fnv64(body) != header.body_fnv {
        return Err(image_err(path, "body checksum mismatch"));
    }
    let store = decode_store(body)?;
    Ok((store, header))
}

/// Loads and decodes `dir`'s image. `Ok(None)` when absent; any
/// corruption is a hard error — recovery refuses to guess.
pub fn load_image(dir: &Path, scale: &str, seed: u64) -> SnbResult<Option<(Store, ImageHeader)>> {
    let path = dir.join(IMAGE_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let bytes = std::fs::read(&path)?;
    decode_image(&bytes, scale, seed, &path).map(Some)
}

/// Persists a shipped image blob into `dir` (atomic, like
/// [`write_image`]) after verifying it decodes — the follower bootstrap
/// landing step. Returns the decoded store and header.
pub fn install_image_bytes(
    dir: &Path,
    scale: &str,
    seed: u64,
    bytes: &[u8],
) -> SnbResult<(Store, ImageHeader)> {
    let final_path = dir.join(IMAGE_FILE);
    let (store, header) = decode_image(bytes, scale, seed, &final_path)?;
    std::fs::create_dir_all(dir)?;
    let tmp_path = dir.join(IMAGE_TMP);
    let mut tmp = File::create(&tmp_path)?;
    tmp.write_all(bytes)?;
    tmp.sync_data()?;
    drop(tmp);
    std::fs::rename(&tmp_path, &final_path)?;
    Ok((store, header))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("snb-image-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_store() -> Store {
        let mut c = GeneratorConfig::for_scale_name("0.001").expect("scale");
        c.persons = 50;
        snb_store::store_for_config(&c)
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let store = small_store();
        let bytes = write_image(&dir, "0.001", 7, 3, 42, 2, &store).unwrap();
        assert!(bytes > 0);
        let info = image_info(&dir, "0.001", 7).unwrap().expect("image present");
        assert_eq!(info.seq, 42);
        assert_eq!(info.epoch, 3);
        assert_eq!(info.partitions, 2);
        let (loaded, header) = load_image(&dir, "0.001", 7).unwrap().expect("image present");
        assert_eq!(header, info);
        assert_eq!(encode_store(&loaded), encode_store(&store));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_image_is_none_not_error() {
        let dir = tmp_dir("absent");
        assert!(image_info(&dir, "0.001", 7).unwrap().is_none());
        assert!(load_image(&dir, "0.001", 7).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_and_seed_mismatch_are_refused() {
        let dir = tmp_dir("mismatch");
        write_image(&dir, "0.001", 7, 0, 1, 1, &small_store()).unwrap();
        assert!(load_image(&dir, "0.003", 7).is_err(), "scale mismatch must refuse");
        assert!(load_image(&dir, "0.001", 8).is_err(), "seed mismatch must refuse");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_image_is_a_hard_error() {
        // Mirrors the WAL torn-tail suite: flipped bytes anywhere in the
        // file (header, checksums, body) must refuse to load, and
        // truncation at any boundary must refuse to load.
        let dir = tmp_dir("corrupt");
        write_image(&dir, "0.001", 7, 0, 9, 1, &small_store()).unwrap();
        let path = dir.join(IMAGE_FILE);
        let good = std::fs::read(&path).unwrap();
        for pos in (0..good.len()).step_by(good.len() / 61 + 1) {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                load_image(&dir, "0.001", 7).is_err(),
                "flipped byte at {pos}/{} must be refused",
                good.len()
            );
        }
        for cut in [0, 7, 40, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(load_image(&dir, "0.001", 7).is_err(), "truncation at {cut} must be refused");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_leaves_previous_image_intact() {
        let dir = tmp_dir("torn");
        let store = small_store();
        write_image(&dir, "0.001", 7, 0, 5, 1, &store).unwrap();
        snb_fault::arm(
            "image.write.torn",
            snb_fault::Fault { short_write: Some(100), ..Default::default() },
            snb_fault::Trigger::OnHit(1),
            0,
        );
        let err = write_image(&dir, "0.001", 7, 0, 6, 1, &store);
        snb_fault::disarm_all();
        assert!(err.is_err(), "torn write must surface an error");
        // The previous image still loads at its original seq; the torn
        // temp file is inert.
        let (_, header) = load_image(&dir, "0.001", 7).unwrap().expect("previous image");
        assert_eq!(header.seq, 5, "previous image must be untouched");
        // And the next un-faulted write supersedes it atomically.
        write_image(&dir, "0.001", 7, 0, 6, 1, &store).unwrap();
        let (_, header) = load_image(&dir, "0.001", 7).unwrap().expect("new image");
        assert_eq!(header.seq, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_bytes_verifies_before_landing() {
        let dir = tmp_dir("install-src");
        let dst = tmp_dir("install-dst");
        let store = small_store();
        write_image(&dir, "0.001", 7, 2, 11, 1, &store).unwrap();
        let bytes = read_image_bytes(&dir).unwrap();
        let (installed, header) = install_image_bytes(&dst, "0.001", 7, &bytes).unwrap();
        assert_eq!(header.seq, 11);
        assert_eq!(encode_store(&installed), encode_store(&store));
        assert!(dst.join(IMAGE_FILE).exists(), "blob must be persisted");
        // A corrupted blob never lands on disk.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        let before = std::fs::read(dst.join(IMAGE_FILE)).unwrap();
        assert!(install_image_bytes(&dst, "0.001", 7, &bad).is_err());
        assert_eq!(std::fs::read(dst.join(IMAGE_FILE)).unwrap(), before, "corrupt blob must not land");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dst);
    }
}
