//! Bounded admission queue with explicit overload shedding.
//!
//! The service's backpressure policy is *reject, don't buffer*: the
//! queue has a hard capacity, and a push against a full queue fails
//! immediately with [`PushError::Full`] so the transport can answer
//! `Overloaded` while the client's timeout budget is still intact.
//! Unbounded buffering would instead convert overload into unbounded
//! latency (and eventually memory exhaustion) — the failure mode the
//! BI throughput test is designed to expose.
//!
//! Shutdown semantics implement the drain phase of graceful shutdown:
//! [`AdmissionQueue::close`] refuses new work but lets consumers pop
//! everything already admitted; [`AdmissionQueue::pop`] returns `None`
//! only once the queue is both closed and empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused, carrying the rejected item back to the
/// caller so it can respond to the client.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity — the request is shed.
    Full(T),
    /// The queue was closed for shutdown — no new work is admitted.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: transports push, workers pop.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to admit an item without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed and
    /// drained; `None` means "no more work will ever arrive".
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`]; pops drain the remaining items and then
    /// return `None`. Wakes every blocked consumer.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_exactly_past_capacity() {
        let q = AdmissionQueue::new(3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        match q.try_push(4) {
            Err(PushError::Full(v)) => assert_eq!(v, 4),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 3);
        // A pop frees one slot exactly.
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(5).is_ok());
        match q.try_push(6) {
            Err(PushError::Full(_)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = AdmissionQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed(v)) => assert_eq!(v, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(AdmissionQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(AdmissionQueue::<usize>::new(64));
        let total = 4_000usize;
        let consumed: Vec<std::thread::JoinHandle<usize>> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed_sum = 0usize;
        for i in 0..total {
            loop {
                match q.try_push(i) {
                    Ok(()) => {
                        pushed_sum += i;
                        break;
                    }
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let got: usize = consumed.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(got, pushed_sum);
    }
}
