//! Priority-lane admission with explicit overload shedding.
//!
//! The service's backpressure policy is *reject, don't buffer*: every
//! lane has a hard capacity, and a push against a full lane fails
//! immediately so the transport can answer `Overloaded` while the
//! client's timeout budget is still intact. Unbounded buffering would
//! instead convert overload into unbounded latency (and eventually
//! memory exhaustion) — the failure mode the BI throughput test is
//! designed to expose.
//!
//! PR 7 splits the single FIFO into three lanes ([`Lane::Short`] for
//! IS/IC reads, [`Lane::Heavy`] for BI analytics, [`Lane::Write`] for
//! durable batches) precisely because one FIFO has head-of-line
//! blocking: a burst of multi-millisecond BI jobs queued ahead of a
//! microsecond point lookup makes the lookup pay the burst's full
//! drain time. With lanes, short reads never sit behind heavy ones —
//! [`LaneQueues::pop_read`] drains the two read lanes under a weighted
//! scheduler (`short_weight` short pops for every heavy pop when both
//! are non-empty, work-conserving when either is empty), and write
//! batches get dedicated consumers via [`LaneQueues::pop_write`] so a
//! WAL fsync never stalls a read worker.
//!
//! Each lane also chooses a shed policy: [`ShedPolicy::Reject`] (refuse
//! the newcomer — right for reads, where the caller retries with
//! backoff) or [`ShedPolicy::DropOldest`] (evict the stalest queued
//! item to admit the newcomer — right when the newest request is the
//! most likely to still meet its deadline).
//!
//! Shutdown semantics implement the drain phase of graceful shutdown:
//! [`LaneQueues::close`] refuses new work but lets consumers pop
//! everything already admitted; the pops return `None` only once the
//! queues are both closed and empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::proto::Lane;

/// What a lane does when a push arrives and the lane is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the newcomer; queued work is untouched. The default for
    /// every lane — predictable for retrying clients.
    Reject,
    /// Evict the oldest queued item to admit the newcomer. The evicted
    /// item is handed back so the caller can answer it `Overloaded`;
    /// nothing is silently dropped.
    DropOldest,
}

/// Why a push was refused, carrying the rejected item back to the
/// caller so it can respond to the client.
#[derive(Debug)]
pub enum PushError<T> {
    /// The lane was at capacity — the request is shed.
    Full(T),
    /// The queues were closed for shutdown — no new work is admitted.
    Closed(T),
}

/// A successful push, possibly carrying an evicted victim (DropOldest
/// lanes only) that the caller must answer `Overloaded`.
#[derive(Debug)]
pub enum Admitted<T> {
    /// The item was queued; nothing was displaced.
    Queued,
    /// The item was queued and the lane's oldest entry was evicted to
    /// make room — the caller owns responding to the victim.
    QueuedEvicting(T),
}

struct LanesState<T> {
    lanes: [VecDeque<T>; 3],
    closed: bool,
    /// Monotone pop counter driving the weighted read scheduler.
    tick: u64,
}

/// Three bounded MPMC lanes behind one lock: transports push, read
/// workers drain short+heavy under the weighted scheduler, write
/// workers drain the write lane.
pub struct LaneQueues<T> {
    state: Mutex<LanesState<T>>,
    /// Wakes read workers (short or heavy arrivals).
    read_ready: Condvar,
    /// Wakes write workers (write arrivals).
    write_ready: Condvar,
    caps: [usize; 3],
    sheds: [ShedPolicy; 3],
    /// Short pops per heavy pop when both read lanes are non-empty.
    short_weight: u64,
}

impl<T> LaneQueues<T> {
    /// Queues with per-lane capacities (minimum 1 each), per-lane shed
    /// policies, and a short:heavy drain ratio of `short_weight`:1
    /// (minimum 1).
    pub fn new(caps: [usize; 3], sheds: [ShedPolicy; 3], short_weight: u64) -> Self {
        LaneQueues {
            state: Mutex::new(LanesState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
                tick: 0,
            }),
            read_ready: Condvar::new(),
            write_ready: Condvar::new(),
            caps: caps.map(|c| c.max(1)),
            sheds,
            short_weight: short_weight.max(1),
        }
    }

    /// The admission capacity of one lane.
    pub fn capacity(&self, lane: Lane) -> usize {
        self.caps[lane.index()]
    }

    /// The shed policy of one lane.
    pub fn shed_policy(&self, lane: Lane) -> ShedPolicy {
        self.sheds[lane.index()]
    }

    /// Items currently queued across all lanes.
    pub fn len(&self) -> usize {
        let st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.lanes.iter().map(VecDeque::len).sum()
    }

    /// Whether every lane is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-lane queue depths, indexed by [`Lane::index`] — one lock
    /// acquisition, so the three values are a consistent snapshot (the
    /// property shed `detail` strings rely on).
    pub fn depths(&self) -> [usize; 3] {
        let st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        [st.lanes[0].len(), st.lanes[1].len(), st.lanes[2].len()]
    }

    /// Attempts to admit an item to its lane without blocking. On a
    /// full `DropOldest` lane the oldest queued item is evicted and
    /// returned inside [`Admitted::QueuedEvicting`].
    pub fn try_push(&self, lane: Lane, item: T) -> Result<Admitted<T>, PushError<T>> {
        let i = lane.index();
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.closed {
            return Err(PushError::Closed(item));
        }
        let mut evicted = None;
        if st.lanes[i].len() >= self.caps[i] {
            match self.sheds[i] {
                ShedPolicy::Reject => return Err(PushError::Full(item)),
                ShedPolicy::DropOldest => evicted = st.lanes[i].pop_front(),
            }
        }
        st.lanes[i].push_back(item);
        drop(st);
        match lane {
            Lane::Short | Lane::Heavy => self.read_ready.notify_one(),
            Lane::Write => self.write_ready.notify_one(),
        }
        Ok(match evicted {
            None => Admitted::Queued,
            Some(v) => Admitted::QueuedEvicting(v),
        })
    }

    /// Blocks until a read-lane item is available or the queues are
    /// closed and the read lanes drained; `None` means "no more read
    /// work will ever arrive". When both read lanes hold work the
    /// weighted scheduler takes `short_weight` short items per heavy
    /// item; when only one lane holds work it is drained directly
    /// (work-conserving — the ratio shapes contention, it never idles
    /// a worker).
    pub fn pop_read(&self) -> Option<(Lane, T)> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            let short_empty = st.lanes[Lane::Short.index()].is_empty();
            let heavy_empty = st.lanes[Lane::Heavy.index()].is_empty();
            let lane = match (short_empty, heavy_empty) {
                (false, true) => Some(Lane::Short),
                (true, false) => Some(Lane::Heavy),
                (false, false) => {
                    // Of every short_weight+1 contended pops, short_weight
                    // go to the short lane: heavy progress is guaranteed
                    // (no total starvation) but short reads never wait
                    // behind more than one heavy dispatch.
                    if st.tick % (self.short_weight + 1) < self.short_weight {
                        Some(Lane::Short)
                    } else {
                        Some(Lane::Heavy)
                    }
                }
                (true, true) => None,
            };
            if let Some(lane) = lane {
                st.tick += 1;
                let item = st.lanes[lane.index()].pop_front().expect("checked non-empty");
                return Some((lane, item));
            }
            if st.closed {
                return None;
            }
            st = self.read_ready.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until a write-lane item is available or the queues are
    /// closed and the write lane drained; `None` means "no more write
    /// work will ever arrive".
    pub fn pop_write(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(item) = st.lanes[Lane::Write.index()].pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.write_ready.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes every lane: subsequent pushes fail with
    /// [`PushError::Closed`]; pops drain the remaining items and then
    /// return `None`. Wakes every blocked consumer.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.closed = true;
        drop(st);
        self.read_ready.notify_all();
        self.write_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn reads_only(caps: [usize; 3], weight: u64) -> LaneQueues<u32> {
        LaneQueues::new(caps, [ShedPolicy::Reject; 3], weight)
    }

    #[test]
    fn sheds_exactly_past_lane_capacity() {
        let q = reads_only([8, 3, 8], 4);
        for v in 1..=3 {
            assert!(matches!(q.try_push(Lane::Heavy, v), Ok(Admitted::Queued)));
        }
        match q.try_push(Lane::Heavy, 4) {
            Err(PushError::Full(v)) => assert_eq!(v, 4),
            other => panic!("expected Full, got {other:?}"),
        }
        // Lane capacities are independent: heavy full, short still open.
        assert!(matches!(q.try_push(Lane::Short, 99), Ok(Admitted::Queued)));
        assert_eq!(q.depths(), [1, 3, 0]);
        // A pop frees one slot exactly.
        assert_eq!(q.pop_read().map(|(l, v)| (l.name(), v)), Some(("short", 99)));
        assert_eq!(q.pop_read().map(|(l, v)| (l.name(), v)), Some(("heavy", 1)));
        assert!(q.try_push(Lane::Heavy, 5).is_ok());
        assert!(matches!(q.try_push(Lane::Heavy, 6), Err(PushError::Full(_))));
    }

    #[test]
    fn drop_oldest_evicts_head_not_newcomer() {
        let q = LaneQueues::new(
            [2, 2, 2],
            [ShedPolicy::Reject, ShedPolicy::Reject, ShedPolicy::DropOldest],
            4,
        );
        assert!(matches!(q.try_push(Lane::Write, 1), Ok(Admitted::Queued)));
        assert!(matches!(q.try_push(Lane::Write, 2), Ok(Admitted::Queued)));
        match q.try_push(Lane::Write, 3) {
            Ok(Admitted::QueuedEvicting(v)) => assert_eq!(v, 1, "oldest evicted"),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(q.pop_write(), Some(2));
        assert_eq!(q.pop_write(), Some(3));
    }

    #[test]
    fn weighted_pop_interleaves_but_never_starves_heavy() {
        // 10 in each read lane, weight 4: the contended drain order must
        // give heavy one pop per 4 short pops, then drain the remainder.
        let q = reads_only([64, 64, 64], 4);
        for v in 0..10 {
            q.try_push(Lane::Short, v).unwrap();
            q.try_push(Lane::Heavy, 100 + v).unwrap();
        }
        let mut order = Vec::new();
        while let Some((lane, _)) = {
            if q.is_empty() {
                None
            } else {
                q.pop_read()
            }
        } {
            order.push(lane);
        }
        assert_eq!(order.len(), 20);
        // First 12 pops: ticks 0..12 → pattern SSSSH SSSSH SS (heavy at
        // ticks 4 and 9). Short drains at tick 12; the rest is heavy.
        let heavy_in_first_12 = order[..12].iter().filter(|l| **l == Lane::Heavy).count();
        assert_eq!(heavy_in_first_12, 2, "order: {order:?}");
        assert!(order[12..].iter().all(|l| *l == Lane::Heavy), "order: {order:?}");
    }

    #[test]
    fn pop_read_is_work_conserving_when_one_lane_empty() {
        let q = reads_only([8, 8, 8], 4);
        for v in 0..5 {
            q.try_push(Lane::Heavy, v).unwrap();
        }
        // No short work: every pop must yield heavy without waiting.
        for v in 0..5 {
            assert_eq!(q.pop_read(), Some((Lane::Heavy, v)));
        }
    }

    #[test]
    fn close_drains_all_lanes_then_ends() {
        let q = reads_only([8, 8, 8], 4);
        q.try_push(Lane::Short, 1).unwrap();
        q.try_push(Lane::Heavy, 2).unwrap();
        q.try_push(Lane::Write, 3).unwrap();
        q.close();
        match q.try_push(Lane::Short, 4) {
            Err(PushError::Closed(v)) => assert_eq!(v, 4),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop_read(), Some((Lane::Short, 1)));
        assert_eq!(q.pop_read(), Some((Lane::Heavy, 2)));
        assert_eq!(q.pop_read(), None);
        assert_eq!(q.pop_write(), Some(3));
        assert_eq!(q.pop_write(), None);
        assert_eq!(q.pop_read(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers_on_both_paths() {
        let q = Arc::new(reads_only([1, 1, 1], 4));
        let qr = Arc::clone(&q);
        let qw = Arc::clone(&q);
        let hr = std::thread::spawn(move || qr.pop_read());
        let hw = std::thread::spawn(move || qw.pop_write());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(hr.join().unwrap(), None);
        assert_eq!(hw.join().unwrap(), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(reads_only([32, 32, 32], 4));
        let total = 4_000u32;
        let readers: Vec<std::thread::JoinHandle<u64>> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some((_, v)) = q.pop_read() {
                        sum += v as u64;
                    }
                    sum
                })
            })
            .collect();
        let writer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(v) = q.pop_write() {
                    sum += v as u64;
                }
                sum
            })
        };
        let mut pushed_sum = 0u64;
        for i in 0..total {
            let lane = match i % 3 {
                0 => Lane::Short,
                1 => Lane::Heavy,
                _ => Lane::Write,
            };
            loop {
                match q.try_push(lane, i) {
                    Ok(Admitted::Queued) => {
                        pushed_sum += i as u64;
                        break;
                    }
                    Ok(Admitted::QueuedEvicting(_)) => unreachable!("Reject lanes never evict"),
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let got: u64 =
            readers.into_iter().map(|h| h.join().unwrap()).sum::<u64>() + writer.join().unwrap();
        assert_eq!(got, pushed_sum);
    }
}
